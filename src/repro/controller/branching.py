"""Execution branching via distributed snapshots (Sections III-C, IV-C).

The snapshot of a distributed system comprises the local state of every node
plus the messages in transit.  The paper's procedure, reproduced here
verbatim in :meth:`DistributedSnapshotter.save`:

1. freeze the network emulator (its virtual clock stops; it keeps accepting
   packets from VMs but delivers nothing),
2. pause all the VMs (no more packets are generated),
3. snapshot each VM (page-sharing aware, Section IV-C),
4. snapshot the network emulator (its event queue and in-flight objects).

Restoring happens in the reverse order; the clock the components share
guarantees they agree on time afterwards.  Every operation is charged at the
durations of the VM timing model plus an NS3-snapshot cost model, and the
total feeds the search algorithms' time accounting (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import SnapshotError
from repro.controller.supervisor import (OP_SNAPSHOT_RESTORE,
                                         OP_SNAPSHOT_SAVE, FaultPlan)
from repro.runtime.world import World
from repro.telemetry.tracer import NULL_SPAN, Tracer
from repro.vm.snapshots import ClusterSnapshot


@dataclass(frozen=True)
class NetemTimingModel:
    """Durations for the NS3 snapshot operations the paper implemented."""

    freeze_time: float = 0.001
    resume_time: float = 0.001
    save_base: float = 0.020          # iterate + serialize the event queue
    save_per_event: float = 0.0001
    load_base: float = 0.020
    load_per_event: float = 0.0001

    def save_time(self, in_flight_events: int) -> float:
        return self.save_base + in_flight_events * self.save_per_event

    def load_time(self, in_flight_events: int) -> float:
        return self.load_base + in_flight_events * self.load_per_event


@dataclass
class WorldSnapshot:
    """A complete branching point: component states plus VM page images."""

    taken_at: float
    components: dict
    cluster_snapshot: ClusterSnapshot
    in_flight_events: int
    save_cost: float
    restore_cost: float


class DistributedSnapshotter:
    """Whole-system save/restore with the paper's ordering and costs."""

    def __init__(self, world: World, shared_pages: bool = True,
                 max_bandwidth: bool = True,
                 netem_timing: Optional[NetemTimingModel] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 tracer: Optional[Tracer] = None) -> None:
        if not world.booted:
            raise SnapshotError("world must be booted before snapshotting")
        self.world = world
        self.shared_pages = shared_pages
        self.max_bandwidth = max_bandwidth
        self.netem_timing = netem_timing or NetemTimingModel()
        self.fault_plan = fault_plan
        self.tracer = tracer

    def _span(self, name: str, **args):
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer.span(name, **args)
        return NULL_SPAN

    # ------------------------------------------------------------------ save

    def save(self, delta_base: Optional[ClusterSnapshot] = None
             ) -> WorldSnapshot:
        """Take a distributed snapshot.

        With ``delta_base`` the VM images store only pages changed since
        that base snapshot — much cheaper when many injection-point
        snapshots are taken after one warm snapshot.
        """
        world = self.world
        mode = ("delta" if delta_base is not None
                else "shared" if self.shared_pages else "plain")
        with self._span("snapshot.save", mode=mode) as span:
            # Injected faults fire before any component is touched, so a
            # failed save leaves the world exactly as it was — retryable by
            # design.
            if self.fault_plan is not None:
                self.fault_plan.check(OP_SNAPSHOT_SAVE)
            # 1. freeze the emulator: virtual time stops, nothing reaches a
            #    VM.
            world.emulator.freeze()
            # 2. pause every VM: no new packets are generated.
            pause_cost = world.cluster.pause_all()
            # 3. snapshot the VMs (apps serialized into guest pages,
            #    KSM-shared).
            if delta_base is not None:
                vm_result = world.cluster.save_delta_snapshot(
                    delta_base, max_bandwidth=self.max_bandwidth)
            else:
                vm_result = world.cluster.save_snapshot(
                    shared=self.shared_pages,
                    max_bandwidth=self.max_bandwidth)
            # 4. snapshot the emulator and host-side bookkeeping.
            components = world.save_component_states()
            in_flight = len(components["netem"]["in_flight"])
            netem_save = self.netem_timing.save_time(in_flight)

            # Resume execution from the saved point.
            resume_cost = world.cluster.resume_all()
            world.emulator.resume_emulation()

            save_cost = (self.netem_timing.freeze_time + pause_cost
                         + vm_result.snapshot.save_time + netem_save
                         + resume_cost + self.netem_timing.resume_time)
            restore_cost = (vm_result.snapshot.load_time
                            + self.netem_timing.load_time(in_flight)
                            + world.cluster.timing.resume_time(
                                len(world.cluster))
                            + self.netem_timing.resume_time)
            span.set(stored_bytes=vm_result.snapshot.stored_bytes(),
                     save_cost=save_cost, restore_cost=restore_cost,
                     **vm_result.snapshot.page_counts())
            ins = world.instruments
            if ins.enabled:
                ins.count(f"snapshot.saves_{mode}")
                ins.observe("snapshot.save_cost", save_cost)
            return WorldSnapshot(
                taken_at=world.kernel.now,
                components=components,
                cluster_snapshot=vm_result.snapshot,
                in_flight_events=in_flight,
                save_cost=save_cost,
                restore_cost=restore_cost,
            )

    # --------------------------------------------------------------- restore

    def restore(self, snapshot: WorldSnapshot) -> float:
        """Rewind the world to ``snapshot``; returns the modelled cost."""
        world = self.world
        with self._span("snapshot.restore",
                        mode=snapshot.cluster_snapshot.mode
                        if isinstance(snapshot.cluster_snapshot,
                                      ClusterSnapshot) else "delta",
                        restore_cost=snapshot.restore_cost,
                        taken_at=snapshot.taken_at):
            if self.fault_plan is not None:
                self.fault_plan.check(OP_SNAPSHOT_RESTORE)
            # Reverse order of the save: emulator (and host clock) state
            # first, then the VMs, then resume VMs, then resume the emulator.
            world.load_component_states(snapshot.components)
            world.cluster.restore_snapshot(snapshot.cluster_snapshot)
            world.cluster.resume_all()
            if world.emulator.frozen:
                world.emulator.resume_emulation()
            return snapshot.restore_cost
