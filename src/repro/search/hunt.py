"""The full hunt: repeat weighted-greedy passes until no attacks remain.

Section III-B: "the user will repeat the attack finding process again after
finding the strongest attack — until the method does not find any more
attacks."  :func:`hunt` automates that loop: each pass excludes every
scenario already found, and the hunt stops when a pass finds nothing new
(or the pass budget runs out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.attacks.space import ActionSpaceConfig
from repro.controller.costs import CostLedger
from repro.controller.harness import TestbedFactory
from repro.controller.monitor import AttackThreshold
from repro.search.results import AttackFinding, SearchReport
from repro.search.weighted import ClusterWeights, WeightedGreedySearch


@dataclass
class HuntResult:
    """Everything a multi-pass hunt produced."""

    passes: List[SearchReport] = field(default_factory=list)
    findings: List[AttackFinding] = field(default_factory=list)
    total_ledger: CostLedger = field(default_factory=CostLedger)

    @property
    def total_time(self) -> float:
        return self.total_ledger.total()

    def attack_names(self) -> List[str]:
        return [f.name for f in self.findings]

    def describe(self) -> str:
        lines = [f"hunt: {len(self.findings)} attacks over "
                 f"{len(self.passes)} passes, "
                 f"platform time {self.total_time:.1f}s"]
        for i, report in enumerate(self.passes, start=1):
            names = ", ".join(report.attack_names()) or "(nothing new)"
            lines.append(f"  pass {i}: {names}")
        return "\n".join(lines)


def hunt(factory: TestbedFactory, seed: int = 0,
         message_types: Optional[Sequence[str]] = None,
         threshold: Optional[AttackThreshold] = None,
         space_config: Optional[ActionSpaceConfig] = None,
         max_passes: int = 5,
         max_wait: Optional[float] = None,
         exclude: Optional[Set[tuple]] = None) -> HuntResult:
    """Run weighted-greedy passes until a pass finds nothing new.

    The cluster weights persist across passes, so what pass 1 learned about
    effective action categories speeds up pass 2.
    """
    result = HuntResult()
    excluded: Set[tuple] = set(exclude or ())
    weights = ClusterWeights()

    for __ in range(max_passes):
        search = WeightedGreedySearch(factory, seed=seed,
                                      threshold=threshold,
                                      space_config=space_config,
                                      max_wait=max_wait, weights=weights)
        report = search.run(message_types=message_types, exclude=excluded)
        result.passes.append(report)
        result.total_ledger.merge(report.ledger)
        if not report.findings:
            break
        for finding in report.findings:
            excluded.add(finding.scenario.to_record())
            result.findings.append(finding)
    return result
