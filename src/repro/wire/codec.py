"""Binary codec for schema-described messages.

Wire layout of an encoded message::

    u16 type_id | field 0 | field 1 | ...   (all little-endian)

Scalars use their struct encoding; ``bytes[N]`` is raw; ``varbytes<T>`` is a
T-encoded length followed by that many raw bytes.  The codec is the runtime
half of the message-format compiler: the malicious proxy uses it to identify
message types on the wire, read field values, and re-encode mutated messages.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.common.errors import CodecError
from repro.wire.schema import (KIND_BYTES, KIND_SCALAR, MessageSpec,
                               ProtocolSchema)
from repro.wire.types import U16

_TYPE_TAG = U16


@dataclass
class Message:
    """A decoded (or to-be-encoded) application message."""

    type_name: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        return self.fields[name]

    def __setitem__(self, name: str, value: Any) -> None:
        self.fields[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def copy(self) -> "Message":
        return Message(self.type_name, dict(self.fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"{self.type_name}({inner})"


class ProtocolCodec:
    """Encodes and decodes every message type of one protocol schema."""

    def __init__(self, schema: ProtocolSchema) -> None:
        self.schema = schema

    # ---------------------------------------------------------------- encode

    def encode(self, message: Message) -> bytes:
        spec = self.schema.message_named(message.type_name)
        parts = [_TYPE_TAG.pack(spec.type_id)]
        for f in spec.fields:
            if f.name not in message.fields:
                raise CodecError(
                    f"{spec.name}: missing field {f.name!r}")
            value = message.fields[f.name]
            parts.append(self._encode_field(spec, f, value))
        return b"".join(parts)

    def _encode_field(self, spec: MessageSpec, f, value: Any) -> bytes:
        try:
            if f.kind == KIND_SCALAR:
                return f.scalar.pack(value)
            if f.kind == KIND_BYTES:
                if not isinstance(value, (bytes, bytearray)):
                    raise CodecError(
                        f"{spec.name}.{f.name}: expected bytes, got {type(value).__name__}")
                if len(value) != f.fixed_len:
                    raise CodecError(
                        f"{spec.name}.{f.name}: expected {f.fixed_len} bytes, "
                        f"got {len(value)}")
                return bytes(value)
            # varbytes
            if not isinstance(value, (bytes, bytearray)):
                raise CodecError(
                    f"{spec.name}.{f.name}: expected bytes, got {type(value).__name__}")
            if len(value) > f.len_type.max_value:
                raise CodecError(
                    f"{spec.name}.{f.name}: {len(value)} bytes exceeds "
                    f"{f.len_type.name} length prefix")
            return f.len_type.pack(len(value)) + bytes(value)
        except struct.error as exc:  # defensive; pack() already wraps
            raise CodecError(f"{spec.name}.{f.name}: {exc}") from exc

    # ---------------------------------------------------------------- decode

    def peek_type(self, data: bytes) -> Optional[MessageSpec]:
        """Identify the message type of an encoded buffer, if known."""
        if len(data) < _TYPE_TAG.size:
            return None
        type_id = _TYPE_TAG.unpack(data, 0)
        if not self.schema.has_message_id(type_id):
            return None
        return self.schema.message_by_id(type_id)

    def decode(self, data: bytes) -> Message:
        spec = self.peek_type(data)
        if spec is None:
            raise CodecError("unknown or truncated message type tag")
        offset = _TYPE_TAG.size
        values: Dict[str, Any] = {}
        for f in spec.fields:
            value, offset = self._decode_field(spec, f, data, offset)
            values[f.name] = value
        if offset != len(data):
            raise CodecError(
                f"{spec.name}: {len(data) - offset} trailing bytes")
        return Message(spec.name, values)

    def _decode_field(self, spec: MessageSpec, f, data: bytes, offset: int):
        if f.kind == KIND_SCALAR:
            if offset + f.scalar.size > len(data):
                raise CodecError(f"{spec.name}.{f.name}: truncated")
            return f.scalar.unpack(data, offset), offset + f.scalar.size
        if f.kind == KIND_BYTES:
            end = offset + f.fixed_len
            if end > len(data):
                raise CodecError(f"{spec.name}.{f.name}: truncated")
            return data[offset:end], end
        # varbytes
        if offset + f.len_type.size > len(data):
            raise CodecError(f"{spec.name}.{f.name}: truncated length")
        length = f.len_type.unpack(data, offset)
        offset += f.len_type.size
        end = offset + length
        if end > len(data):
            raise CodecError(f"{spec.name}.{f.name}: truncated body")
        return data[offset:end], end

    # -------------------------------------------------------------- mutation

    def mutate(self, data: bytes, field_name: str, new_value: Any) -> bytes:
        """Return ``data`` re-encoded with one scalar field replaced.

        This is the proxy's lying primitive: decode, substitute, re-encode.
        The new value is wrapped into the field's representable range the way
        a C assignment would (modular for integers), because the attacker
        writes raw bytes, not checked values.
        """
        message = self.decode(data)
        spec = self.schema.message_named(message.type_name)
        f = spec.field_named(field_name)
        if f.kind != KIND_SCALAR:
            raise CodecError(
                f"{spec.name}.{field_name}: only scalar fields can be mutated")
        message.fields[field_name] = f.scalar.wrap(new_value)
        return self.encode(message)

    def encoded_size(self, message: Message) -> int:
        return len(self.encode(message))
