"""Parser for the message-format description language.

The paper: "We developed a small compiler that reads a message format
description and generates C++ code compatible with a large set of binary wire
protocols."  This module is the front end of that compiler.  The grammar:

.. code-block:: text

    # comments run to end of line
    protocol pbft

    message PrePrepare = 1 {
        view:    u32
        seq:     i32
        ndet:    u16            # number of non-deterministic choices
        digest:  bytes[32]
        payload: varbytes<u32>
    }

    message Commit = 5 { view: u32  seq: i32  replica: u16 }

Scalar types: bool, i8/u8/i16/u16/i32/u32/i64/u64, f32, f64.
``bytes[N]`` is a fixed-length byte string; ``varbytes<T>`` is a byte string
preceded by its length encoded as scalar type T.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional

from repro.common.errors import SchemaParseError
from repro.wire.schema import MessageSpec, ProtocolSchema, make_field

_TOKEN_RE = re.compile(
    r"""
    (?P<ident>[A-Za-z_][A-Za-z0-9_]*(\[[0-9]+\]|<[A-Za-z0-9_]+>)?)
  | (?P<number>-?[0-9]+)
  | (?P<punct>[{}=:])
    """,
    re.VERBOSE,
)

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class Token(NamedTuple):
    kind: str   # "ident" | "number" | "punct"
    text: str
    line: int


def _tokenize(text: str) -> Iterator[Token]:
    for lineno, line in enumerate(text.splitlines(), start=1):
        code = line.split("#", 1)[0]
        pos = 0
        while pos < len(code):
            if code[pos].isspace():
                pos += 1
                continue
            m = _TOKEN_RE.match(code, pos)
            if not m:
                raise SchemaParseError(
                    f"unexpected character {code[pos]!r}", lineno)
            kind = m.lastgroup or "punct"
            # lastgroup may point at an inner group; normalize
            if m.group("ident") is not None:
                kind, text_ = "ident", m.group("ident")
            elif m.group("number") is not None:
                kind, text_ = "number", m.group("number")
            else:
                kind, text_ = "punct", m.group("punct")
            yield Token(kind, text_, lineno)
            pos = m.end()


class _TokenStream:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            last_line = self._tokens[-1].line if self._tokens else 0
            raise SchemaParseError("unexpected end of input", last_line)
        self._pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise SchemaParseError(
                f"expected {want!r}, found {tok.text!r}", tok.line)
        return tok

    def at_end(self) -> bool:
        return self.peek() is None


def parse_schema(text: str) -> ProtocolSchema:
    """Parse DSL ``text`` into a :class:`ProtocolSchema`."""
    stream = _TokenStream(list(_tokenize(text)))
    name = "protocol"
    messages: List[MessageSpec] = []

    first = stream.peek()
    if first is not None and first.kind == "ident" and first.text == "protocol":
        stream.next()
        name_tok = stream.expect("ident")
        name = name_tok.text

    while not stream.at_end():
        messages.append(_parse_message(stream))

    if not messages:
        raise SchemaParseError("schema defines no messages")
    return ProtocolSchema(name, tuple(messages))


def _parse_message(stream: _TokenStream) -> MessageSpec:
    kw = stream.expect("ident")
    if kw.text != "message":
        raise SchemaParseError(
            f"expected 'message', found {kw.text!r}", kw.line)
    name_tok = stream.expect("ident")
    if not _IDENT_RE.match(name_tok.text):
        raise SchemaParseError(
            f"bad message name {name_tok.text!r}", name_tok.line)
    stream.expect("punct", "=")
    id_tok = stream.expect("number")
    type_id = int(id_tok.text)
    if type_id < 0:
        raise SchemaParseError(
            f"message id must be non-negative, got {type_id}", id_tok.line)
    stream.expect("punct", "{")

    fields = []
    field_names = set()
    while True:
        tok = stream.next()
        if tok.kind == "punct" and tok.text == "}":
            break
        if tok.kind != "ident" or not _IDENT_RE.match(tok.text):
            raise SchemaParseError(
                f"expected field name, found {tok.text!r}", tok.line)
        if tok.text in field_names:
            raise SchemaParseError(
                f"duplicate field {tok.text!r} in message {name_tok.text}",
                tok.line)
        field_names.add(tok.text)
        stream.expect("punct", ":")
        type_tok = stream.expect("ident")
        try:
            fields.append(make_field(tok.text, type_tok.text))
        except Exception as exc:
            raise SchemaParseError(str(exc), type_tok.line) from exc

    return MessageSpec(name_tok.text, type_id, tuple(fields))


def format_schema(schema: ProtocolSchema) -> str:
    """Render a schema back into DSL text (round-trips through the parser)."""
    lines = [f"protocol {schema.name}", ""]
    for m in schema.messages:
        lines.append(f"message {m.name} = {m.type_id} {{")
        width = max((len(f.name) for f in m.fields), default=0)
        for f in m.fields:
            lines.append(f"    {f.name + ':':<{width + 1}} {f.type_label()}")
        lines.append("}")
        lines.append("")
    return "\n".join(lines)
