"""Tests for the malicious proxy."""


from repro.attacks.actions import DelayAction, DropAction, DuplicateAction
from repro.attacks.proxy import INJECTION_POINT, MaliciousProxy
from repro.common.ids import replica
from repro.common.rng import RandomStream
from repro.netem.emulator import NetworkEmulator
from repro.netem.topology import LanTopology
from repro.sim.kernel import SimKernel
from repro.wire.codec import Message, ProtocolCodec
from repro.wire.schema import ProtocolSchema, make_message

SCHEMA = ProtocolSchema("px", (
    make_message("A", 1, [("x", "u32")]),
    make_message("B", 2, [("y", "u32")]),
))
CODEC = ProtocolCodec(SCHEMA)
GOOD, BAD, OTHER = replica(0), replica(1), replica(2)


def build(malicious=(BAD,)):
    kernel = SimKernel()
    emulator = NetworkEmulator(kernel, LanTopology())
    inboxes = {}
    for node in (GOOD, BAD, OTHER):
        emulator.register_host(node)
        inbox = []
        inboxes[node] = inbox
        emulator.set_receiver(node,
                              lambda env, i=inbox: i.append(env.payload))
    proxy = MaliciousProxy(emulator, CODEC, malicious,
                           RandomStream(0, "proxy"))
    return kernel, emulator, proxy, inboxes


def payload(mtype="A", value=1):
    field = "x" if mtype == "A" else "y"
    return CODEC.encode(Message(mtype, {field: value}))


class TestScoping:
    def test_benign_traffic_untouched(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.set_policy("A", DropAction(1.0))
        emulator.transmit(GOOD, OTHER, "udp", payload())
        kernel.run_until(0.1)
        assert len(inboxes[OTHER]) == 1
        assert proxy.intercepted == 0

    def test_malicious_traffic_intercepted(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.set_policy("A", DropAction(1.0))
        emulator.transmit(BAD, OTHER, "udp", payload())
        kernel.run_until(0.1)
        assert inboxes[OTHER] == []
        assert proxy.intercepted == 1

    def test_unknown_message_passes(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.set_policy("A", DropAction(1.0))
        emulator.transmit(BAD, OTHER, "udp", b"\x63\x00junk")
        kernel.run_until(0.1)
        assert len(inboxes[OTHER]) == 1

    def test_policy_is_per_type(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.set_policy("A", DropAction(1.0))
        emulator.transmit(BAD, OTHER, "udp", payload("B"))
        kernel.run_until(0.1)
        assert len(inboxes[OTHER]) == 1


class TestPolicies:
    def test_duplicate_policy(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.set_policy("A", DuplicateAction(3))
        emulator.transmit(BAD, OTHER, "udp", payload())
        kernel.run_until(0.1)
        assert len(inboxes[OTHER]) == 3
        assert proxy.first_injection_time is not None

    def test_clear_policy(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.set_policy("A", DropAction(1.0))
        proxy.clear_policy()
        emulator.transmit(BAD, OTHER, "udp", payload())
        kernel.run_until(0.1)
        assert len(inboxes[OTHER]) == 1

    def test_background_policy_survives_clear(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.set_background_policy("A", DropAction(1.0))
        proxy.clear_policy()
        emulator.transmit(BAD, OTHER, "udp", payload())
        kernel.run_until(0.1)
        assert inboxes[OTHER] == []

    def test_search_policy_shadows_background(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.set_background_policy("A", DropAction(1.0))
        proxy.set_policy("A", DuplicateAction(2))
        emulator.transmit(BAD, OTHER, "udp", payload())
        kernel.run_until(0.1)
        assert len(inboxes[OTHER]) == 2

    def test_reset_counters(self):
        kernel, emulator, proxy, __ = build()
        proxy.set_policy("A", DelayAction(0.1))
        emulator.transmit(BAD, OTHER, "udp", payload())
        proxy.reset_counters()
        assert proxy.intercepted == 0
        assert proxy.first_injection_time is None


class TestArming:
    def test_armed_type_interrupts_and_holds(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.arm("A")
        emulator.transmit(BAD, OTHER, "udp", payload())
        intr = kernel.run_until(0.1)
        assert intr is not None and intr.reason == INJECTION_POINT
        assert intr.payload["message_type"] == "A"
        assert intr.payload["src"] == BAD
        assert proxy.has_held()
        assert inboxes[OTHER] == []
        assert proxy.armed_type is None  # disarmed after trigger

    def test_armed_ignores_other_types(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.arm("A")
        emulator.transmit(BAD, OTHER, "udp", payload("B"))
        assert kernel.run_until(0.1) is None
        assert len(inboxes[OTHER]) == 1

    def test_arm_after_threshold(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.arm("A", after=0.5)
        emulator.transmit(BAD, OTHER, "udp", payload())
        assert kernel.run_until(0.2) is None
        kernel.schedule(0.5, lambda: emulator.transmit(
            BAD, OTHER, "udp", payload()))
        intr = kernel.run_until(1.0)
        assert intr is not None

    def test_release_baseline(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.arm("A")
        emulator.transmit(BAD, OTHER, "udp", payload())
        kernel.run_until(0.1)
        proxy.release_held(None)
        kernel.run_until(0.2)
        assert len(inboxes[OTHER]) == 1

    def test_release_with_action(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.arm("A")
        emulator.transmit(BAD, OTHER, "udp", payload())
        kernel.run_until(0.1)
        proxy.release_held(DuplicateAction(4))
        kernel.run_until(0.2)
        assert len(inboxes[OTHER]) == 4

    def test_release_with_drop(self):
        kernel, emulator, proxy, inboxes = build()
        proxy.arm("A")
        emulator.transmit(BAD, OTHER, "udp", payload())
        kernel.run_until(0.1)
        proxy.release_held(DropAction(1.0))
        kernel.run_until(0.2)
        assert inboxes[OTHER] == []
        assert not proxy.has_held()
