"""Simulation kernel: the single virtual clock and event queue."""

from repro.sim.events import (PRIORITY_CONTROL, PRIORITY_CPU,
                              PRIORITY_NETWORK, PRIORITY_TIMER, Event,
                              EventHandle)
from repro.sim.kernel import Interrupt, SimKernel

__all__ = [
    "PRIORITY_CONTROL", "PRIORITY_CPU", "PRIORITY_NETWORK", "PRIORITY_TIMER",
    "Event", "EventHandle", "Interrupt", "SimKernel",
]
