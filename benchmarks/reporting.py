"""Shared reporting for the reproduction benchmarks.

Every benchmark prints a paper-vs-measured table and appends it to
``benchmarks/results.txt`` so a full ``pytest benchmarks/ --benchmark-only``
run leaves a reviewable artifact regardless of output capturing.
"""

from __future__ import annotations

import os
from typing import List, Sequence

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def report(title: str, headers: Sequence[str],
           rows: Sequence[Sequence[object]]) -> str:
    text = format_table(title, headers, rows)
    print("\n" + text)
    with open(RESULTS_PATH, "a") as fh:
        fh.write(text + "\n\n")
    return text


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeating them only
    multiplies wall-clock for identical results.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
