"""Cluster-level VM management.

The controller deals with a whole set of VMs at once (pause all, snapshot
all, restore all), following the paper's distributed-snapshot ordering.
:class:`VmCluster` bundles the guests, the KSM daemon, the snapshot manager,
and the timing model behind that collective interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import SnapshotError
from repro.vm.ksm import KsmDaemon
from repro.vm.machine import VirtualMachine
from repro.vm.memory import OsImage
from repro.vm.snapshots import (ClusterSnapshot, DeltaClusterSnapshot,
                                SnapshotManager)
from repro.vm.timing import VmTimingModel


@dataclass
class ClusterSaveResult:
    """What the controller needs back from a cluster save."""

    snapshot: ClusterSnapshot
    pause_time: float
    sync_bytes: int

    @property
    def total_time(self) -> float:
        return self.pause_time + self.snapshot.save_time


class VmCluster:
    """All guest VMs of one experiment."""

    def __init__(self, names: Sequence[str], image: Optional[OsImage] = None,
                 timing: Optional[VmTimingModel] = None,
                 ksm_enabled: bool = True) -> None:
        self.image = image or OsImage()
        self.timing = timing or VmTimingModel()
        self.vms: Dict[str, VirtualMachine] = {
            name: VirtualMachine(name, self.image) for name in names}
        self.ksm = KsmDaemon() if ksm_enabled else None
        if self.ksm is not None:
            for vm in self.vms.values():
                self.ksm.register(vm.memory)
        self.snapshot_manager = SnapshotManager(self.ksm, self.timing)

    # --------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self.vms)

    def vm(self, name: str) -> VirtualMachine:
        try:
            return self.vms[name]
        except KeyError:
            raise SnapshotError(f"no VM named {name!r}") from None

    def machines(self) -> List[VirtualMachine]:
        return list(self.vms.values())

    # ------------------------------------------------------------ lifecycle

    def boot_all(self) -> float:
        for vm in self.vms.values():
            vm.boot()
        return self.timing.boot_time(len(self.vms))

    def pause_all(self) -> float:
        for vm in self.vms.values():
            vm.pause()
        return self.timing.pause_time(len(self.vms))

    def resume_all(self) -> float:
        for vm in self.vms.values():
            vm.resume()
        return self.timing.resume_time(len(self.vms))

    @property
    def all_paused(self) -> bool:
        return all(vm.paused for vm in self.vms.values())

    # -------------------------------------------------------------- snapshot

    def save_snapshot(self, shared: bool = True, max_bandwidth: bool = True,
                      ksm_scan: bool = True) -> ClusterSaveResult:
        """Pause-sync-scan-save, per the paper's snapshot procedure."""
        pause_time = 0.0
        if not self.all_paused:
            pause_time = self.pause_all()
        sync_bytes = sum(vm.sync_app_pages() for vm in self.vms.values())
        if shared and self.ksm is not None and ksm_scan:
            self.ksm.scan()
        snapshot = self.snapshot_manager.save(
            [vm.memory for vm in self.vms.values()],
            shared=shared and self.ksm is not None,
            max_bandwidth=max_bandwidth)
        return ClusterSaveResult(snapshot, pause_time, sync_bytes)

    def save_delta_snapshot(self, base: ClusterSnapshot,
                            max_bandwidth: bool = True) -> ClusterSaveResult:
        """Pause-sync-save only the pages changed since ``base``."""
        pause_time = 0.0
        if not self.all_paused:
            pause_time = self.pause_all()
        sync_bytes = sum(vm.sync_app_pages() for vm in self.vms.values())
        snapshot = self.snapshot_manager.save_delta(
            [vm.memory for vm in self.vms.values()], base,
            max_bandwidth=max_bandwidth)
        return ClusterSaveResult(snapshot, pause_time, sync_bytes)

    def restore_snapshot(self, snapshot) -> float:
        """Load pages and rebuild hosted apps; VMs stay paused.

        Accepts either a full :class:`ClusterSnapshot` or a
        :class:`DeltaClusterSnapshot` (restored as base plus overlay).
        """
        if not self.all_paused:
            self.pause_all()
        memories = [vm.memory for vm in self.vms.values()]
        if isinstance(snapshot, DeltaClusterSnapshot):
            self.snapshot_manager.load_delta(snapshot, memories)
        else:
            self.snapshot_manager.load(snapshot, memories)
        for vm in self.vms.values():
            vm.restore_app()
        return snapshot.load_time
