"""Steward client: talks to the leader site."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.common.ids import NodeId, replica
from repro.systems.common.client import BaseClient
from repro.wire.codec import Message


class StewardClient(BaseClient):
    """Sends to the global leader; retries to the whole leader site."""

    def make_request(self, timestamp: int) -> Message:
        payload = f"update:{self.index}:{timestamp}".encode()
        return Message("Request", {
            "client": self.index, "timestamp": timestamp, "payload": payload,
            "sig": self.auth.sign(self.index, timestamp, payload),
        })

    def initial_targets(self) -> List[NodeId]:
        return [replica(0)]

    def retry_targets(self) -> List[NodeId]:
        return [replica(i) for i in self.config.site_members(0)]

    def classify_reply(self, src: NodeId,
                       message: Message) -> Optional[Tuple[int, Any]]:
        if message.type_name != "Reply" or message["client"] != self.index:
            return None
        return (message["timestamp"], bytes(message["result"]))
