"""Event primitives for the simulation kernel.

Events are ordered by ``(time, priority, seq)``.  The sequence number makes
ordering total and deterministic: two events scheduled for the same instant
always fire in scheduling order, which is a prerequisite for reproducible
branching (the controller compares executions branched from one snapshot, so
tie-breaking must never depend on hash order or identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Tuple


@dataclass
class Event:
    """A scheduled callback.

    Cancellation is handled by flagging rather than heap removal (removal
    from the middle of a heap is O(n)); the kernel skips cancelled events
    when they surface.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., None]
    args: Tuple[Any, ...] = ()
    cancelled: bool = False

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)


class EventHandle:
    """Caller-facing handle allowing cancellation of a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> None:
        self._event.cancelled = True


# Priorities: lower runs first at equal timestamps.  Network deliveries run
# before application timers so a message that arrives "now" is visible to a
# timer handler also firing "now", mirroring how an OS delivers pending I/O
# before a timer signal for the same tick.
PRIORITY_NETWORK = 0
PRIORITY_CPU = 1
PRIORITY_TIMER = 2
PRIORITY_CONTROL = 3
