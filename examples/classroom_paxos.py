#!/usr/bin/env python3
"""Using Turret as a classroom testing platform (Section V-D).

The paper used Turret in a graduate distributed-systems course: students
submitted unmodified binaries for three projects — Paxos, the Byzantine
Generals Problem, and Total Order Multicast — and the platform probed their
robustness without anyone writing malicious test-case code.

This example plays instructor over all three bundled (deliberately
student-grade) assignments: it runs the weighted-greedy search against each
submission's most load-bearing message types and turns the findings into a
grade.

Run:  python examples/classroom_paxos.py
"""

from repro.attacks.space import ActionSpaceConfig
from repro.controller.monitor import AttackThreshold
from repro.search import WeightedGreedySearch
from repro.systems.byzgen import byzgen_testbed
from repro.systems.paxos import paxos_testbed
from repro.systems.tom import tom_testbed

ASSIGNMENTS = [
    ("multi-paxos", "leader = replica0",
     paxos_testbed(malicious_index=0, warmup=2.0, window=4.0),
     ["Accept", "Learn", "Heartbeat"],
     "Consider detecting a leader that stops making progress even while "
     "its heartbeats keep arriving."),
    ("byzantine-generals", "commander = general0",
     byzgen_testbed(malicious_index=0, warmup=2.0, window=3.0),
     ["Order", "Relay"],
     "A round whose order never arrives is silently abandoned; add "
     "retransmission or a default decision."),
    ("total-order-multicast", "sequencer = member0",
     tom_testbed(malicious_index=0, warmup=2.0, window=3.0),
     ["Sequence", "Publish"],
     "A gap in the global sequence blocks delivery forever; ask the "
     "sequencer to re-send missing sequence records."),
]


def grade(name, role, factory, types, hint) -> int:
    print(f"\n=== Grading submission: {name} ({role}) ===")
    space = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(1.0,),
                              duplicate_counts=(50,), include_divert=True,
                              include_lying=False)
    search = WeightedGreedySearch(
        factory, seed=42, threshold=AttackThreshold(delta=0.25),
        space_config=space, max_wait=8.0)
    report = search.run(message_types=types)
    print(report.describe())
    mark = max(0, 5 - len(report.findings))
    print(f"Robustness grade: {mark}/5")
    if report.findings:
        print(f"Feedback: {hint}")
    return len(report.findings)


def main() -> None:
    total = sum(grade(*assignment) for assignment in ASSIGNMENTS)
    print(f"\n{'=' * 60}\nTotal robustness findings across the three "
          f"assignments: {total}")


if __name__ == "__main__":
    main()
