"""Table II — performance of save/load of VM snapshots.

Paper rows (5–15 VMs): plain KVM snapshots at max migration bandwidth vs
the page-sharing-aware snapshots, reporting save time, load time, total
size, and the save-time reduction (34.5%–40.3%).  Also Section V-A's
default-bandwidth data point: saving 5 VMs took 15.24 s at KVM's default
cap vs 5.76 s at maximum bandwidth.

The workload matches the paper's: "an application that sends a
monotonically increasing sequence to a server, with its hostname, every
second."
"""

import pytest

from repro.common.units import MIB
from repro.vm.ksm import KsmDaemon
from repro.vm.manager import VmCluster
from repro.vm.snapshots import SnapshotManager

from reporting import report, run_once


class SequenceSenderApp:
    """The paper's measurement app: hostname plus a counter."""

    def __init__(self, hostname):
        self.hostname = hostname
        self.sequence = 0
        self.sent = []

    def tick(self):
        self.sequence += 1
        self.sent.append(f"{self.hostname}:{self.sequence}")

    def snapshot_state(self):
        return {"hostname": self.hostname, "sequence": self.sequence,
                "sent": list(self.sent)}

    def restore_state(self, state):
        self.hostname = state["hostname"]
        self.sequence = state["sequence"]
        self.sent = list(state["sent"])


def run_cluster(n_vms):
    cluster = VmCluster([f"vm{i}" for i in range(n_vms)])
    cluster.boot_all()
    for vm in cluster.machines():
        vm.app = SequenceSenderApp(vm.name)
        for __ in range(30):  # thirty seconds of workload
            vm.app.tick()
    plain = cluster.save_snapshot(shared=False)
    cluster.resume_all()
    shared = cluster.save_snapshot(shared=True)
    __, time_red = SnapshotManager.compare(plain.snapshot, shared.snapshot)
    return plain.snapshot, shared.snapshot, time_red


def sweep():
    out = {}
    for n_vms in (5, 10, 15):
        out[n_vms] = run_cluster(n_vms)
    return out


@pytest.mark.benchmark(group="table2")
def test_table2_snapshot_save_load(benchmark):
    results = run_once(benchmark, sweep)
    paper = {5: ("5.76", "0.038", "532", "34.5"),
             10: ("—", "—", "~1060", "~37"),
             15: ("14.63", "0.057", "~1590", "40.3")}
    rows = []
    for n_vms, (plain, shared, time_red) in results.items():
        p = paper[n_vms]
        rows.append([
            n_vms,
            f"{plain.save_time:.2f}", f"{plain.load_time:.3f}",
            f"{plain.stored_bytes() / MIB:.0f}",
            f"{shared.save_time:.2f}",
            f"{shared.stored_bytes() / MIB:.0f}",
            f"{time_red:.1f}%",
            f"paper: save {p[0]}s load {p[1]}s size {p[2]}MB red {p[3]}%",
        ])
    telemetry = {
        f"vms_{n}": {"plain": plain.page_counts(),
                     "shared": shared.page_counts()}
        for n, (plain, shared, __) in results.items()}
    report("TABLE II: VM snapshot save/load, plain vs shared pages",
           ["VMs", "save(s)", "load(s)", "size(MB)", "shared save(s)",
            "shared size(MB)", "% reduced", "paper"],
           rows, telemetry=telemetry)

    plain5, shared5, red5 = results[5]
    __, __, red15 = results[15]
    # shape assertions against the paper
    assert 4.5 < plain5.save_time < 7.0          # paper 5.76 s
    assert plain5.load_time == pytest.approx(0.038, abs=0.012)
    assert 450 * MIB < plain5.stored_bytes() < 620 * MIB  # paper 532 MB
    assert 30.0 < red5 < 40.0                     # paper 34.5%
    assert 35.0 < red15 < 46.0                    # paper 40.3%
    assert red15 > red5                           # saving grows with VMs


@pytest.mark.benchmark(group="table2")
def test_table2_default_bandwidth(benchmark):
    def run():
        cluster = VmCluster([f"vm{i}" for i in range(5)])
        cluster.boot_all()
        for vm in cluster.machines():
            vm.app = SequenceSenderApp(vm.name)
        fast = cluster.save_snapshot(shared=False, max_bandwidth=True)
        cluster.resume_all()
        slow = cluster.save_snapshot(shared=False, max_bandwidth=False)
        return fast.snapshot, slow.snapshot

    fast, slow = run_once(benchmark, run)
    report("SEC V-A: migration bandwidth effect on saving 5 VMs",
           ["bandwidth", "save(s)", "paper"],
           [["maximum", f"{fast.save_time:.2f}", "5.76 s"],
            ["KVM default", f"{slow.save_time:.2f}", "15.24 s"]])
    assert 4.5 < fast.save_time < 7.0
    assert 13.0 < slow.save_time < 18.0
    assert slow.save_time > 2.3 * fast.save_time


@pytest.mark.benchmark(group="table2")
def test_table2_restore_fidelity(benchmark):
    """Restores are not just fast — they are exact."""

    def run():
        cluster = VmCluster([f"vm{i}" for i in range(5)])
        cluster.boot_all()
        for vm in cluster.machines():
            vm.app = SequenceSenderApp(vm.name)
            vm.app.tick()
        digests = [vm.state_digest() for vm in cluster.machines()]
        snap = cluster.save_snapshot(shared=True)
        cluster.resume_all()
        for vm in cluster.machines():
            vm.app.tick()
            vm.app.tick()
        cluster.restore_snapshot(snap.snapshot)
        return digests, [vm.state_digest() for vm in cluster.machines()]

    before, after = run_once(benchmark, run)
    assert before == after
