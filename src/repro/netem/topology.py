"""Network topologies.

A topology answers, for an ordered pair of hosts, the propagation delay and
bandwidth of the path between them.  The paper's evaluation uses "a LAN
setting with 1 ms delay between each node"; Steward-style wide-area
experiments group hosts into sites with a larger inter-site delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import NetworkError
from repro.common.ids import NodeId
from repro.common.units import mbit_per_sec, millis


@dataclass(frozen=True)
class PathSpec:
    delay: float         # one-way propagation delay, seconds
    bandwidth: float     # bytes/second


class Topology:
    """Base topology: uniform delay/bandwidth with optional overrides."""

    def __init__(self, delay: float = millis(1),
                 bandwidth: float = mbit_per_sec(100)) -> None:
        if delay < 0:
            raise NetworkError("delay must be non-negative")
        if bandwidth <= 0:
            raise NetworkError("bandwidth must be positive")
        self.default = PathSpec(delay, bandwidth)
        self._overrides: Dict[Tuple[NodeId, NodeId], PathSpec] = {}

    def set_path(self, src: NodeId, dst: NodeId, delay: float,
                 bandwidth: Optional[float] = None) -> None:
        spec = PathSpec(delay, bandwidth or self.default.bandwidth)
        self._overrides[(src, dst)] = spec

    def path(self, src: NodeId, dst: NodeId) -> PathSpec:
        if src == dst:
            return PathSpec(0.0, self.default.bandwidth)
        return self._overrides.get((src, dst), self.default)


class LanTopology(Topology):
    """The paper's evaluation network: 1 ms between every pair of hosts."""

    def __init__(self, delay: float = millis(1),
                 bandwidth: float = mbit_per_sec(100)) -> None:
        super().__init__(delay, bandwidth)


class SiteTopology(Topology):
    """Hosts grouped into sites: fast intra-site, slow inter-site paths.

    Used for Steward-style wide-area deployments where each site is a LAN
    and sites are linked by WAN paths.
    """

    def __init__(self, site_of: Dict[NodeId, int],
                 intra_delay: float = millis(1),
                 inter_delay: float = millis(50),
                 bandwidth: float = mbit_per_sec(100),
                 wan_bandwidth: float = mbit_per_sec(10)) -> None:
        super().__init__(intra_delay, bandwidth)
        self.site_of = dict(site_of)
        self.inter = PathSpec(inter_delay, wan_bandwidth)

    def path(self, src: NodeId, dst: NodeId) -> PathSpec:
        if src == dst:
            return PathSpec(0.0, self.default.bandwidth)
        src_site = self.site_of.get(src)
        dst_site = self.site_of.get(dst)
        if src_site is None or dst_site is None:
            raise NetworkError(f"host {src} or {dst} not assigned to a site")
        if src_site == dst_site:
            return self.default
        return self.inter
