"""Unit helpers.

All platform time is in float seconds of virtual time; sizes are in bytes;
rates are in bytes per second or packets per second.  These helpers exist to
keep call sites readable (``delay=millis(1)``) and conversions centralized.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

PAGE_SIZE = 4096  # bytes, matching x86 pages and the KVM snapshot granularity


def millis(ms: float) -> float:
    """Milliseconds to seconds."""
    return ms / 1000.0


def micros(us: float) -> float:
    """Microseconds to seconds."""
    return us / 1_000_000.0


def seconds_to_millis(s: float) -> float:
    return s * 1000.0


def mbit_per_sec(mbps: float) -> float:
    """Megabits per second to bytes per second."""
    return mbps * 1_000_000 / 8.0


def pages_for(nbytes: int) -> int:
    """Number of 4 KiB pages needed to hold ``nbytes``."""
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
