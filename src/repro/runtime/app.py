"""Application base class for systems under test.

A target system participant subclasses :class:`Application` and implements
the message-event model of Section II-A: it reacts to delivered messages and
timer expirations, sends messages through its node runtime, and never shares
memory with other participants.

Contract for execution branching: ``snapshot_state``/``restore_state`` must
round-trip the *entire* protocol state through plain picklable data.  Every
target system's tests include a branch-determinism check that fails if a
field is forgotten.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.common.ids import NodeId
from repro.wire.codec import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.node import Node


class Application:
    """Base class for the per-node logic of a system under test."""

    def __init__(self) -> None:
        self.node: "Node" = None  # injected by Node.attach

    # ---------------------------------------------------------------- hooks

    def on_start(self) -> None:
        """Called once when the node boots."""

    def on_message(self, src: NodeId, message: Message) -> None:
        """Called when a message has been delivered and processed by the CPU."""

    def on_timer(self, name: str) -> None:
        """Called when the named timer expires."""

    def on_ingress(self, src: NodeId, size: int) -> bool:
        """Admission control before any CPU is spent on a message.

        Robust systems (Aardvark) isolate per-sender resources; returning
        False drops the message for a token cost instead of letting it
        consume full processing.  Default: accept everything.
        """
        return True

    # ------------------------------------------------------------ utilities

    @property
    def node_id(self) -> NodeId:
        return self.node.node_id

    def now(self) -> float:
        return self.node.now()

    def send(self, dst: NodeId, message: Message) -> None:
        self.node.send(dst, message)

    def broadcast(self, message: Message, include_self: bool = False) -> None:
        self.node.broadcast(message, include_self=include_self)

    def set_timer(self, name: str, delay: float, periodic: bool = False) -> None:
        self.node.set_timer(name, delay, periodic)

    def cancel_timer(self, name: str) -> None:
        self.node.cancel_timer(name)

    # -------------------------------------------------------------- snapshot

    def snapshot_state(self) -> Dict[str, Any]:
        """Return the full protocol state as plain picklable data."""
        raise NotImplementedError

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Rebuild protocol state from :meth:`snapshot_state` output."""
        raise NotImplementedError
