"""Tests for World assembly and the cost ledger."""

import pytest

from repro.common.errors import ConfigError
from repro.common.ids import client, replica
from repro.controller.costs import (BOOT, EXECUTION, SNAPSHOT_RESTORE,
                                    SNAPSHOT_SAVE, CostLedger)
from repro.runtime.app import Application
from repro.runtime.world import World
from repro.wire.codec import ProtocolCodec
from repro.wire.schema import ProtocolSchema, make_message

SCHEMA = ProtocolSchema("w", (make_message("Ping", 1, [("n", "u32")]),))
CODEC = ProtocolCodec(SCHEMA)


class NullApp(Application):
    def snapshot_state(self):
        return {}

    def restore_state(self, state):
        pass


class TestWorld:
    def test_boot_creates_vms(self):
        world = World(CODEC)
        world.add_node(replica(0), NullApp())
        world.add_node(client(0), NullApp())
        boot_time = world.boot()
        assert boot_time > 0
        assert world.booted
        assert len(world.cluster) == 2
        assert world.cluster.vm("replica0").running

    def test_duplicate_node_rejected(self):
        world = World(CODEC)
        world.add_node(replica(0), NullApp())
        with pytest.raises(ConfigError):
            world.add_node(replica(0), NullApp())

    def test_no_nodes_after_boot(self):
        world = World(CODEC)
        world.add_node(replica(0), NullApp())
        world.boot()
        with pytest.raises(ConfigError):
            world.add_node(replica(1), NullApp())
        with pytest.raises(ConfigError):
            world.boot()

    def test_peer_groups(self):
        world = World(CODEC)
        ids = [replica(i) for i in range(3)]
        for node_id in ids:
            world.add_node(node_id, NullApp())
        world.set_peer_groups(ids)
        assert world.node(replica(1)).peers == ids

    def test_apps_started_on_boot(self):
        started = []

        class StartApp(NullApp):
            def on_start(self):
                started.append(self.node_id)

        world = World(CODEC)
        world.add_node(replica(0), StartApp())
        world.add_node(replica(1), StartApp())
        world.boot()
        assert started == [replica(0), replica(1)]

    def test_crashed_nodes_listing(self):
        from repro.common.errors import SegmentationFault

        class CrashyApp(NullApp):
            def on_start(self):
                if self.node_id.index == 1:
                    raise SegmentationFault("boom")

        world = World(CODEC)
        world.add_node(replica(0), CrashyApp())
        world.add_node(replica(1), CrashyApp())
        world.boot()
        assert world.crashed_nodes() == [replica(1)]

    def test_component_state_roundtrip(self):
        world = World(CODEC)
        world.add_node(replica(0), NullApp())
        world.boot()
        world.run_for(1.0)
        state = world.save_component_states()
        world.run_for(2.0)
        world.load_component_states(state)
        assert world.kernel.now == 1.0


class TestCostLedger:
    def test_accumulates(self):
        ledger = CostLedger()
        ledger.charge(BOOT, 8.0)
        ledger.charge(EXECUTION, 2.0)
        ledger.charge(EXECUTION, 3.0)
        assert ledger.get(EXECUTION) == 5.0
        assert ledger.total() == 13.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge(BOOT, -1.0)

    def test_snapshot_total(self):
        ledger = CostLedger()
        ledger.charge(SNAPSHOT_SAVE, 4.0)
        ledger.charge(SNAPSHOT_RESTORE, 1.0)
        assert ledger.snapshot_total() == 5.0

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.charge(BOOT, 1.0)
        b.charge(BOOT, 2.0)
        b.charge(EXECUTION, 1.0)
        a.merge(b)
        assert a.get(BOOT) == 3.0
        assert a.get(EXECUTION) == 1.0

    def test_describe(self):
        ledger = CostLedger()
        ledger.charge(BOOT, 1.25)
        text = ledger.describe()
        assert "boot=1.2s" in text or "boot=1.3s" in text
