"""Aardvark replica — robust BFT (Clement et al., NSDI 2009).

Aardvark is PBFT hardened against Byzantine performance degradation.  The
properties this reproduction models, on top of the PBFT protocol logic it
inherits:

* **Flooding protection / resource isolation** — each replica meters the
  traffic of every peer (Aardvark dedicates a NIC per peer); a sender whose
  rate exceeds its quota has its excess messages discarded at admission for
  a token cost, so duplication floods cannot consume the victim's CPU.
* **Bounded catch-up service** — a Status whose sender appears implausibly
  far behind is treated as faulty and ignored instead of triggering a
  retransmission storm; the paper observed exactly this muting ("Aardvark's
  flooding protection can mute the attack when the delay becomes too big").

Remaining intentional flaws (the three lying attacks Turret found): the
``PrePrepare.big_reqs`` / ``PrePrepare.ndet_choices`` counts ("the number of
large requests or non-deterministic choices") and ``Status.nmsgs`` are still
trusted before validation — robustness work focused on scheduling, not on
input sanitization.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.common.ids import NodeId
from repro.systems.common.auth import Authenticator
from repro.systems.common.config import BftConfig
from repro.systems.pbft.replica import PbftReplica
from repro.wire.codec import Message


class AardvarkReplica(PbftReplica):
    """PBFT logic plus Aardvark's robustness mechanisms."""

    #: length of one metering interval (seconds).  Short intervals mean a
    #: burst exhausts only its own slice of time and cannot starve the
    #: sender's legitimate traffic in later slices — approximating
    #: Aardvark's fair per-peer scheduling.
    quota_interval = 0.01
    #: messages accepted per peer per interval before the excess is dropped
    quota_messages = 8
    #: a status gap beyond this is implausible: classify the sender faulty
    catchup_mute_gap = 200

    def __init__(self, index: int, config: BftConfig,
                 auth: Optional[Authenticator] = None) -> None:
        super().__init__(index, config, auth)
        self._quota_window_start = 0.0
        self._quota_counts: Dict[int, int] = {}
        self.ingress_dropped = 0
        self.muted_statuses = 0

    # ---------------------------------------------------- flooding protection

    def on_ingress(self, src: NodeId, size: int) -> bool:
        if src.role != "replica":
            return True  # client traffic is verified/regulated separately
        now = self.now()
        if now - self._quota_window_start >= self.quota_interval:
            self._quota_window_start = now
            self._quota_counts = {}
        count = self._quota_counts.get(src.index, 0) + 1
        self._quota_counts[src.index] = count
        if count > self.quota_messages:
            self.ingress_dropped += 1
            return False
        return True

    # ------------------------------------------------- bounded catch-up path

    def _on_status(self, src: NodeId, msg: Message) -> None:
        # The flaw Aardvark retains: the piggybacked count is trusted.
        self.unchecked_alloc(msg["nmsgs"], "piggybacked messages")
        gap = self.last_exec - msg["last_exec"]
        if gap > self.catchup_mute_gap:
            # Implausibly stale: a correct replica cannot be this far behind
            # while the system is making progress.  Classify as faulty and
            # spend nothing on it.
            self.muted_statuses += 1
            return
        super()._on_status(src, msg)

    # ------------------------------------------------------------- snapshot

    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state.update({
            "quota_window_start": self._quota_window_start,
            "quota_counts": dict(self._quota_counts),
            "ingress_dropped": self.ingress_dropped,
            "muted_statuses": self.muted_statuses,
        })
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        super().restore_state(state)
        self._quota_window_start = state["quota_window_start"]
        self._quota_counts = dict(state["quota_counts"])
        self.ingress_dropped = state["ingress_dropped"]
        self.muted_statuses = state["muted_statuses"]
