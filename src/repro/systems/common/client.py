"""Closed-loop BFT client.

The paper's evaluation uses one client that does not pipeline requests: it
issues an update, waits for f+1 matching replies, records the completed
update (the platform's performance metric), and immediately issues the next
one.  If replies do not arrive before the retry timer, the request is
retransmitted to *all* replicas — which is also what lets backups learn of a
request a faulty primary is sitting on and start their recovery timers.

Concrete systems subclass and provide the request/reply message formats.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import NodeId, replica
from repro.metrics.collector import UPDATE_DONE
from repro.runtime.app import Application
from repro.systems.common.auth import Authenticator
from repro.systems.common.config import BftConfig
from repro.wire.codec import Message

RETRY_TIMER = "client-retry"


class BaseClient(Application):
    """Closed-loop client issuing one update at a time."""

    def __init__(self, index: int, config: BftConfig,
                 auth: Optional[Authenticator] = None) -> None:
        super().__init__()
        self.index = index
        self.config = config
        self.auth = auth or Authenticator("shared-system-key")
        self.timestamp = 0
        self.sent_at = 0.0
        self.retries = 0
        self.completed = 0
        # reply bookkeeping: result key -> set of replica indices
        self._reply_votes: Dict[Any, List[int]] = {}

    # ------------------------------------------------- hooks for subclasses

    def make_request(self, timestamp: int) -> Message:
        """Build this system's request message."""
        raise NotImplementedError

    def initial_targets(self) -> List[NodeId]:
        """Where the first transmission of a request goes (often the primary)."""
        return [replica(0)]

    def retry_targets(self) -> List[NodeId]:
        """Where retransmissions go (usually every replica)."""
        return [replica(i) for i in range(self.config.n)]

    def classify_reply(self, src: NodeId,
                       message: Message) -> Optional[Tuple[int, Any]]:
        """Return (timestamp, result key) if ``message`` is a reply, else None."""
        raise NotImplementedError

    def reply_quorum(self) -> int:
        return self.config.reply_quorum

    # --------------------------------------------------------------- driver

    def on_start(self) -> None:
        self._issue_next()

    def _issue_next(self) -> None:
        self.timestamp += 1
        self.sent_at = self.now()
        self._reply_votes.clear()
        request = self.make_request(self.timestamp)
        for target in self.initial_targets():
            self.send(target, request)
        self.set_timer(RETRY_TIMER, self.config.client_retry)

    def on_timer(self, name: str) -> None:
        if name != RETRY_TIMER:
            return
        self.retries += 1
        request = self.make_request(self.timestamp)
        for target in self.retry_targets():
            self.send(target, request)
        self.set_timer(RETRY_TIMER, self.config.client_retry)

    def on_message(self, src: NodeId, message: Message) -> None:
        classified = self.classify_reply(src, message)
        if classified is None:
            return
        timestamp, result_key = classified
        if timestamp != self.timestamp:
            return  # stale reply for an already-completed update
        votes = self._reply_votes.setdefault(result_key, [])
        if src.index in votes:
            return
        votes.append(src.index)
        if len(votes) >= self.reply_quorum():
            self.cancel_timer(RETRY_TIMER)
            self.completed += 1
            latency = self.now() - self.sent_at
            self.node.emit_metric(UPDATE_DONE, latency)
            self._issue_next()

    # -------------------------------------------------------------- snapshot

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "timestamp": self.timestamp,
            "sent_at": self.sent_at,
            "retries": self.retries,
            "completed": self.completed,
            "reply_votes": {k: list(v) for k, v in self._reply_votes.items()},
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.index = state["index"]
        self.timestamp = state["timestamp"]
        self.sent_at = state["sent_at"]
        self.retries = state["retries"]
        self.completed = state["completed"]
        self._reply_votes = {k: list(v)
                             for k, v in state["reply_votes"].items()}
