"""Registry of the bundled target systems.

Maps system names to their schema, testbed factory builder, and the
malicious roles the factory accepts — the lookup surface used by the CLI
and by generic tooling that iterates "every system we ship".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.controller.harness import TestbedFactory
from repro.wire.schema import ProtocolSchema


@dataclass(frozen=True)
class SystemEntry:
    """One registered target system."""

    name: str
    description: str
    schema: ProtocolSchema
    schema_text: str
    roles: tuple                     # valid values for --malicious
    default_role: str
    #: builder(malicious_role, warmup, window) -> TestbedFactory
    build: Callable[..., TestbedFactory]
    #: message types a benign run exercises (search defaults)
    active_types: Optional[List[str]] = None


def _build_registry() -> Dict[str, SystemEntry]:
    from repro.systems.aardvark.schema import (AARDVARK_SCHEMA,
                                               AARDVARK_SCHEMA_TEXT)
    from repro.systems.aardvark.testbed import aardvark_testbed
    from repro.systems.paxos.schema import PAXOS_SCHEMA, PAXOS_SCHEMA_TEXT
    from repro.systems.paxos.testbed import PAXOS_ACTIVE_TYPES, paxos_testbed
    from repro.systems.pbft.schema import PBFT_SCHEMA, PBFT_SCHEMA_TEXT
    from repro.systems.pbft.testbed import pbft_testbed
    from repro.systems.prime.schema import PRIME_SCHEMA, PRIME_SCHEMA_TEXT
    from repro.systems.prime.testbed import PRIME_ACTIVE_TYPES, prime_testbed
    from repro.systems.steward.schema import (STEWARD_SCHEMA,
                                              STEWARD_SCHEMA_TEXT)
    from repro.systems.steward.testbed import (STEWARD_ACTIVE_TYPES,
                                               steward_testbed)
    from repro.systems.zyzzyva.schema import (ZYZZYVA_SCHEMA,
                                              ZYZZYVA_SCHEMA_TEXT)
    from repro.systems.zyzzyva.testbed import (ZYZZYVA_ACTIVE_TYPES,
                                               zyzzyva_testbed)

    from repro.systems.byzgen.schema import (BYZGEN_SCHEMA,
                                              BYZGEN_SCHEMA_TEXT)
    from repro.systems.byzgen.testbed import (BYZGEN_ACTIVE_TYPES,
                                              byzgen_testbed)
    from repro.systems.tom.schema import TOM_SCHEMA, TOM_SCHEMA_TEXT
    from repro.systems.tom.testbed import TOM_ACTIVE_TYPES, tom_testbed

    def paxos_build(role, warmup, window):
        return paxos_testbed(malicious_index=int(role), warmup=warmup,
                             window=window)

    def byzgen_build(role, warmup, window):
        return byzgen_testbed(malicious_index=int(role), warmup=warmup,
                              window=window)

    def tom_build(role, warmup, window):
        return tom_testbed(malicious_index=int(role), warmup=warmup,
                           window=window)

    entries = [
        SystemEntry(
            "pbft", "PBFT (Castro & Liskov), 4 replicas, f=1",
            PBFT_SCHEMA, PBFT_SCHEMA_TEXT, ("primary", "backup"), "primary",
            lambda role, warmup, window: pbft_testbed(
                malicious=role, warmup=warmup, window=window),
            ["Request", "PrePrepare", "Prepare", "Commit", "Reply",
             "Checkpoint", "Status"]),
        SystemEntry(
            "steward", "Steward hierarchical wide-area BFT, 2 sites x 4",
            STEWARD_SCHEMA, STEWARD_SCHEMA_TEXT,
            ("leader", "remote_rep", "remote_backup"), "leader",
            lambda role, warmup, window: steward_testbed(
                malicious=role, warmup=warmup, window=window),
            STEWARD_ACTIVE_TYPES),
        SystemEntry(
            "zyzzyva", "Zyzzyva speculative BFT, 4 replicas, f=1",
            ZYZZYVA_SCHEMA, ZYZZYVA_SCHEMA_TEXT, ("primary", "backup"),
            "backup",
            lambda role, warmup, window: zyzzyva_testbed(
                malicious=role, warmup=warmup, window=window),
            ZYZZYVA_ACTIVE_TYPES),
        SystemEntry(
            "prime", "Prime pre-ordering BFT with leader monitoring",
            PRIME_SCHEMA, PRIME_SCHEMA_TEXT, ("leader", "backup"), "leader",
            lambda role, warmup, window: prime_testbed(
                malicious=role, warmup=warmup, window=window),
            PRIME_ACTIVE_TYPES),
        SystemEntry(
            "aardvark", "Aardvark robust BFT with flooding protection",
            AARDVARK_SCHEMA, AARDVARK_SCHEMA_TEXT, ("primary", "backup"),
            "backup",
            lambda role, warmup, window: aardvark_testbed(
                malicious=role, warmup=warmup, window=window),
            ["Request", "PrePrepare", "Prepare", "Commit", "Reply",
             "Checkpoint", "Status"]),
        SystemEntry(
            "paxos", "Multi-Paxos (classroom target), 3 replicas",
            PAXOS_SCHEMA, PAXOS_SCHEMA_TEXT, ("0", "1", "2"), "0",
            paxos_build, PAXOS_ACTIVE_TYPES),
        SystemEntry(
            "byzgen", "Byzantine Generals OM(1) (classroom target)",
            BYZGEN_SCHEMA, BYZGEN_SCHEMA_TEXT, ("0", "1", "2", "3"), "0",
            byzgen_build, BYZGEN_ACTIVE_TYPES),
        SystemEntry(
            "tom", "Total Order Multicast via sequencer (classroom target)",
            TOM_SCHEMA, TOM_SCHEMA_TEXT, ("0", "1", "2", "3"), "0",
            tom_build, TOM_ACTIVE_TYPES),
    ]
    return {e.name: e for e in entries}


_REGISTRY: Optional[Dict[str, SystemEntry]] = None


def registry() -> Dict[str, SystemEntry]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def system_names() -> List[str]:
    return sorted(registry())


def get_system(name: str) -> SystemEntry:
    try:
        return registry()[name]
    except KeyError:
        raise ConfigError(
            f"unknown system {name!r}; available: {', '.join(system_names())}"
        ) from None
