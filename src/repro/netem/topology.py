"""Network topologies.

A topology answers, for an ordered pair of hosts, the propagation delay and
bandwidth of the path between them.  The paper's evaluation uses "a LAN
setting with 1 ms delay between each node"; Steward-style wide-area
experiments group hosts into sites with a larger inter-site delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.common.errors import NetworkError
from repro.common.ids import NodeId
from repro.common.units import mbit_per_sec, millis


@dataclass(frozen=True)
class PathSpec:
    delay: float         # one-way propagation delay, seconds
    bandwidth: float     # bytes/second


class Topology:
    """Base topology: uniform delay/bandwidth with optional overrides."""

    def __init__(self, delay: float = millis(1),
                 bandwidth: float = mbit_per_sec(100)) -> None:
        if delay < 0:
            raise NetworkError("delay must be non-negative")
        if bandwidth <= 0:
            raise NetworkError("bandwidth must be positive")
        self.default = PathSpec(delay, bandwidth)
        self._overrides: Dict[Tuple[NodeId, NodeId], PathSpec] = {}
        # Connectivity fault overlay (chaos layer).  Keys are string host
        # names (``str(NodeId)``, e.g. "replica0") so fault schedules can
        # address hosts declaratively without importing NodeId.
        self._down_links: Set[Tuple[str, str]] = set()
        self._partition: Dict[str, int] = {}

    def set_path(self, src: NodeId, dst: NodeId, delay: float,
                 bandwidth: Optional[float] = None) -> None:
        spec = PathSpec(delay, bandwidth or self.default.bandwidth)
        self._overrides[(src, dst)] = spec

    def path(self, src: NodeId, dst: NodeId) -> PathSpec:
        if src == dst:
            return PathSpec(0.0, self.default.bandwidth)
        return self._overrides.get((src, dst), self.default)

    # ------------------------------------------- connectivity fault overlay

    @staticmethod
    def _link_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def set_link_down(self, a: str, b: str) -> None:
        """Take the bidirectional link between two hosts down."""
        self._down_links.add(self._link_key(a, b))

    def set_link_up(self, a: str, b: str) -> None:
        self._down_links.discard(self._link_key(a, b))

    def set_partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Partition the network into the given host groups.

        Hosts in different groups cannot reach each other; hosts not
        listed in any group are unaffected (they can still reach every
        group).  A new partition replaces any previous one.
        """
        self._partition = {}
        for index, group in enumerate(groups):
            for host in group:
                self._partition[host] = index

    def heal_partition(self) -> None:
        self._partition = {}

    def blocked(self, src: str, dst: str) -> Optional[str]:
        """Why a packet from ``src`` to ``dst`` cannot be carried, if so.

        Returns ``"down"`` (the link is flapped down), ``"partition"``
        (hosts are in different partition groups), or None.  Loopback is
        never blocked: a host can always talk to itself.
        """
        if src == dst:
            return None
        if self._down_links and self._link_key(src, dst) in self._down_links:
            return "down"
        if self._partition:
            src_group = self._partition.get(src)
            dst_group = self._partition.get(dst)
            if (src_group is not None and dst_group is not None
                    and src_group != dst_group):
                return "partition"
        return None

    def save_link_state(self) -> Dict:
        return {
            "down": sorted(self._down_links),
            "partition": dict(self._partition),
        }

    def load_link_state(self, state: Dict) -> None:
        self._down_links = {tuple(pair) for pair in state.get("down", ())}
        self._partition = dict(state.get("partition", {}))


class LanTopology(Topology):
    """The paper's evaluation network: 1 ms between every pair of hosts."""

    def __init__(self, delay: float = millis(1),
                 bandwidth: float = mbit_per_sec(100)) -> None:
        super().__init__(delay, bandwidth)


class SiteTopology(Topology):
    """Hosts grouped into sites: fast intra-site, slow inter-site paths.

    Used for Steward-style wide-area deployments where each site is a LAN
    and sites are linked by WAN paths.
    """

    def __init__(self, site_of: Dict[NodeId, int],
                 intra_delay: float = millis(1),
                 inter_delay: float = millis(50),
                 bandwidth: float = mbit_per_sec(100),
                 wan_bandwidth: float = mbit_per_sec(10)) -> None:
        super().__init__(intra_delay, bandwidth)
        self.site_of = dict(site_of)
        self.inter = PathSpec(inter_delay, wan_bandwidth)

    def path(self, src: NodeId, dst: NodeId) -> PathSpec:
        if src == dst:
            return PathSpec(0.0, self.default.bandwidth)
        src_site = self.site_of.get(src)
        dst_site = self.site_of.get(dst)
        if src_site is None or dst_site is None:
            raise NetworkError(f"host {src} or {dst} not assigned to a site")
        if src_site == dst_site:
            return self.default
        return self.inter
