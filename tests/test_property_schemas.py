"""Property tests across every bundled system schema.

For each system: random messages of every type round-trip through the
codec, the generated-code codec agrees byte for byte, and every enumerated
attack scenario applies cleanly to a well-formed message of its type.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.actions import ActionContext
from repro.attacks.space import ActionSpace
from repro.common.ids import replica
from repro.common.rng import RandomStream
from repro.netem.packets import MessageEnvelope
from repro.systems.registry import get_system, system_names
from repro.wire.codec import Message, ProtocolCodec
from repro.wire.codegen import compile_schema
from repro.wire.schema import KIND_BYTES, KIND_SCALAR


def value_strategy(field_spec):
    if field_spec.kind == KIND_SCALAR:
        t = field_spec.scalar
        if t.is_bool:
            return st.booleans()
        if t.is_integer:
            return st.integers(min_value=int(t.min_value),
                               max_value=int(t.max_value))
        if t.name == "f32":
            return st.floats(width=32, allow_nan=False)
        return st.floats(allow_nan=False)
    if field_spec.kind == KIND_BYTES:
        return st.binary(min_size=field_spec.fixed_len,
                         max_size=field_spec.fixed_len)
    return st.binary(max_size=64)


def message_strategy(schema):
    @st.composite
    def build(draw):
        spec = draw(st.sampled_from(schema.messages))
        values = {f.name: draw(value_strategy(f)) for f in spec.fields}
        return Message(spec.name, values)
    return build()


@pytest.mark.parametrize("system", system_names())
class TestSchemaProperties:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_codec_roundtrip(self, system, data):
        entry = get_system(system)
        codec = ProtocolCodec(entry.schema)
        msg = data.draw(message_strategy(entry.schema))
        decoded = codec.decode(codec.encode(msg))
        assert decoded.type_name == msg.type_name
        for name, value in msg.fields.items():
            if isinstance(value, float):
                assert decoded[name] == pytest.approx(value, rel=1e-6) or \
                    decoded[name] == value
            else:
                assert decoded[name] == value

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_generated_codec_agrees(self, system, data):
        entry = get_system(system)
        codec = ProtocolCodec(entry.schema)
        module = compile_schema(entry.schema)
        msg = data.draw(message_strategy(entry.schema))
        reference = codec.encode(msg)
        generated = getattr(module, msg.type_name)(**msg.fields).pack()
        assert generated == reference

    def test_every_scenario_applies_cleanly(self, system):
        entry = get_system(system)
        codec = ProtocolCodec(entry.schema)
        ctx = ActionContext(codec, RandomStream(0, "t"),
                            [replica(i) for i in range(4)])
        space = ActionSpace(entry.schema)
        for scenario in space.all_scenarios():
            spec = entry.schema.message_named(scenario.message_type)
            values = spec.default_values()
            payload = codec.encode(Message(spec.name, values))
            envelope = MessageEnvelope(1, replica(0), replica(1), "udp",
                                       payload)
            deliveries = scenario.action.apply(envelope, ctx)
            for delivery in deliveries:
                codec.decode(delivery.payload)  # always re-decodable
