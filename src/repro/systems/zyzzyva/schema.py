"""Zyzzyva wire protocol description.

Field notes relevant to the paper's findings (Section V-C):

* ``OrderRequest.msg_size`` — the embedded request size; the implementation
  trusts it ("lying about the size of the message, making it a large
  negative value" degrades latency / faults replicas).
* ``NewView.size`` — "lying on the size field of Newview messages causes
  benign nodes to crash".
* ``Commit.cc_size`` — the commit-certificate size the client claims.
"""

from __future__ import annotations

from repro.wire import ProtocolCodec, ProtocolSchema, parse_schema

ZYZZYVA_SCHEMA_TEXT = """
protocol zyzzyva

message Request = 1 {
    client:    u16
    timestamp: u64
    payload:   varbytes<u32>
    sig:       bytes[16]
}

message OrderRequest = 2 {
    view:      u32
    seq:       i32
    hist:      bytes[32]
    digest:    bytes[32]
    msg_size:  i32
    timestamp: u64
    client:    u16
    payload:   varbytes<u32>
    sig:       bytes[16]
}

message SpecResponse = 3 {
    view:      u32
    seq:       i32
    hist:      bytes[32]
    digest:    bytes[32]
    client:    u16
    timestamp: u64
    replica:   u16
    result:    varbytes<u16>
    sig:       bytes[16]
}

message Commit = 4 {
    client:  u16
    cc_size: i32
    view:    u32
    seq:     i32
    sig:     bytes[16]
}

message LocalCommit = 5 {
    view:    u32
    seq:     i32
    replica: u16
    client:  u16
    sig:     bytes[16]
}

message IHateThePrimary = 6 {
    view:    u32
    replica: u16
    sig:     bytes[16]
}

message ViewChange = 7 {
    new_view: u32
    nccs:     i32
    replica:  u16
    sig:      bytes[16]
}

message NewView = 8 {
    view:    u32
    size:    i32
    primary: u16
    sig:     bytes[16]
}
"""

ZYZZYVA_SCHEMA: ProtocolSchema = parse_schema(ZYZZYVA_SCHEMA_TEXT)
ZYZZYVA_CODEC = ProtocolCodec(ZYZZYVA_SCHEMA)
