"""Branch-determinism property across every target system.

The controller's conclusions are only valid if a restored snapshot replays
*exactly* — for each system we snapshot mid-execution, run a window twice
from the same snapshot, and require byte-identical world digests and
identical measured throughput.  This is the platform-wide regression net
for forgotten state in any app's ``snapshot_state``.
"""

import hashlib
import pickle

import pytest

from repro.controller.harness import AttackHarness
from repro.systems.aardvark.testbed import aardvark_testbed
from repro.systems.byzgen.testbed import byzgen_testbed
from repro.systems.paxos.testbed import paxos_testbed
from repro.systems.pbft.testbed import pbft_testbed
from repro.systems.prime.testbed import prime_testbed
from repro.systems.steward.testbed import steward_testbed
from repro.systems.tom.testbed import tom_testbed
from repro.systems.zyzzyva.testbed import zyzzyva_testbed

FACTORIES = {
    "pbft": lambda: pbft_testbed(warmup=1.0, window=1.0),
    "steward": lambda: steward_testbed(warmup=1.5, window=1.5),
    "zyzzyva": lambda: zyzzyva_testbed(warmup=1.0, window=1.0),
    "prime": lambda: prime_testbed(warmup=1.0, window=1.0),
    "aardvark": lambda: aardvark_testbed(warmup=1.0, window=1.0),
    "paxos": lambda: paxos_testbed(warmup=1.0, window=1.0),
    "byzgen": lambda: byzgen_testbed(warmup=1.0, window=1.0),
    "tom": lambda: tom_testbed(warmup=1.0, window=1.0),
}


def world_digest(world):
    h = hashlib.blake2b(digest_size=16)
    for node_id in sorted(world.nodes):
        h.update(pickle.dumps(world.nodes[node_id].snapshot_state(),
                              protocol=4))
    h.update(repr(world.kernel.now).encode())
    h.update(pickle.dumps(world.emulator.save_state(), protocol=4))
    return h.digest()


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_branch_replay_is_exact(name):
    harness = AttackHarness(FACTORIES[name](), seed=13)
    harness.start_run()
    snapshot = harness.take_snapshot()

    digests, throughputs = [], []
    for __ in range(2):
        harness.restore(snapshot)
        harness.world.run_for(1.0)
        digests.append(world_digest(harness.world))
        throughputs.append(harness.world.metrics.throughput(
            snapshot.taken_at, snapshot.taken_at + 1.0))
    assert digests[0] == digests[1], f"{name}: branch replay diverged"
    assert throughputs[0] == throughputs[1]
    assert throughputs[0] > 0, f"{name}: no progress measured"


def test_branch_replay_is_exact_under_chaos_schedule():
    """The branch-determinism property must survive an armed FaultSchedule:
    loss/corruption draws, flaps, and injected crashes all replay exactly."""
    from repro.faults.schedule import FaultSchedule

    schedule = FaultSchedule(seed=9)
    schedule.add("loss", 0.0, path="*", p_enter_bad=0.02, p_exit_bad=0.5)
    schedule.add("corrupt", 0.0, path="*", rate=0.01)
    schedule.add("flap", 1.2, a="replica2", b="replica3", down_for=0.6)
    harness = AttackHarness(FACTORIES["pbft"](), seed=13,
                            fault_schedule=schedule)
    harness.start_run()
    snapshot = harness.take_snapshot()

    runs = []
    for __ in range(2):
        harness.restore(snapshot)
        harness.world.run_for(1.0)
        runs.append((world_digest(harness.world),
                     harness.world.emulator.stats.as_tuple()))
    assert runs[0] == runs[1], "pbft: chaos-schedule branch diverged"
    # the environment was genuinely faulty, not a no-op schedule
    stats = harness.world.emulator.stats
    assert stats.packets_dropped_loss > 0


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_snapshot_restores_clock_and_state(name):
    harness = AttackHarness(FACTORIES[name](), seed=17)
    harness.start_run()
    snapshot = harness.take_snapshot()
    t0 = harness.world.kernel.now
    # semantic (not pickle-identity) capture of every node's state
    states0 = {str(n): harness.world.nodes[n].snapshot_state()
               for n in sorted(harness.world.nodes)}
    netem0 = harness.world.emulator.save_state()
    harness.world.run_for(0.7)
    harness.restore(snapshot)
    assert harness.world.kernel.now == t0
    for n in sorted(harness.world.nodes):
        assert harness.world.nodes[n].snapshot_state() == states0[str(n)], \
            f"{name}: {n} state diverged across restore"
    assert harness.world.emulator.save_state() == netem0
