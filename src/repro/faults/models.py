"""Serializable fault-state models for the network emulator.

Turret's emulated links were originally perfect: the emulator's admission
comment said device overflow was "the only loss".  Real substrates are not
— the paper's NS3 network experiences bursty loss, corrupted frames, and
partitions — so this module provides the small, deterministic state
machines the emulator consults on every packet admission:

* :class:`GilbertElliott` — the classic two-state bursty-loss chain.  All
  randomness is drawn from a named :class:`~repro.common.rng.RandomStream`
  owned by the world's registry, and the chain state itself serializes, so
  snapshot branching replays identical loss patterns bit-for-bit.
* :class:`PathFaults` — the per-path knobs (loss chain, corruption rate,
  reorder jitter).
* :class:`LinkFaultBank` — the emulator-resident collection, keyed by
  directed path (``"replica0>replica1"``) with a ``"*"`` wildcard, with
  ``save_state``/``load_state`` hooks folded into the emulator snapshot.

Link *connectivity* faults (down links, partitions) live on the topology
(:meth:`repro.netem.topology.Topology.set_link_down` and friends) because
they are properties of the graph, not of a single path's error process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import RandomStream

#: wildcard path key matching every (src, dst) pair
ANY_PATH = "*"


def path_key(src: str, dst: str) -> str:
    """Directed path key used by :class:`LinkFaultBank` (``"a>b"``)."""
    return f"{src}>{dst}"


@dataclass
class GilbertElliott:
    """Two-state Markov loss chain (Gilbert–Elliott model).

    In the *good* state packets are lost with probability ``loss_good``
    (usually 0); in the *bad* state with ``loss_bad`` (usually 1, i.e. a
    full burst).  Each :meth:`step` first draws the state transition, then
    the loss outcome — a fixed draw order, so the number of RNG draws per
    packet depends only on the configuration, never on the random outcome.
    That keeps replayed branches consuming the stream identically.
    """

    p_enter_bad: float
    p_exit_bad: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    #: current chain state; serialized so restores resume mid-burst
    bad: bool = False

    def __post_init__(self) -> None:
        for name in ("p_enter_bad", "p_exit_bad", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"GilbertElliott.{name} must be in [0, 1], got {value}")

    def step(self, rng: RandomStream) -> bool:
        """Advance the chain one packet; return True when it is lost."""
        if self.bad:
            if rng.random() < self.p_exit_bad:
                self.bad = False
        else:
            if rng.random() < self.p_enter_bad:
                self.bad = True
        loss = self.loss_bad if self.bad else self.loss_good
        # Always burn exactly one draw for the loss outcome so the stream
        # position is a pure function of packets seen, not of chain state.
        return rng.random() < loss

    def save_state(self) -> Tuple:
        return (self.p_enter_bad, self.p_exit_bad,
                self.loss_good, self.loss_bad, self.bad)

    def load_state(self, state: Tuple) -> None:
        (self.p_enter_bad, self.p_exit_bad,
         self.loss_good, self.loss_bad, self.bad) = state

    @classmethod
    def from_state(cls, state: Tuple) -> "GilbertElliott":
        model = cls(0.0, 1.0)
        model.load_state(tuple(state))
        return model


@dataclass
class PathFaults:
    """Fault configuration for one directed path (or the wildcard).

    ``corrupt_rate`` packets are delivered to the destination host but
    dropped there by the receive-side checksum — a distinct failure mode
    (and counter) from queue overflow.  ``jitter`` adds a uniform random
    extra delay in ``[0, jitter]`` seconds to each surviving packet, which
    reorders packets whose nominal arrivals are closer than the jitter.
    """

    loss: Optional[GilbertElliott] = None
    corrupt_rate: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ConfigError(
                f"corrupt_rate must be in [0, 1], got {self.corrupt_rate}")
        if self.jitter < 0.0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")

    def evaluate(self, rng: RandomStream) -> Tuple[bool, bool, float]:
        """One packet through this path: (lost, corrupted, extra_delay).

        Draw order is fixed (loss chain, then corruption, then jitter) and
        every configured stage draws exactly once per packet regardless of
        earlier outcomes, so the RNG stream advances deterministically.
        """
        lost = self.loss.step(rng) if self.loss is not None else False
        corrupted = (rng.random() < self.corrupt_rate
                     if self.corrupt_rate > 0.0 else False)
        extra = rng.uniform(0.0, self.jitter) if self.jitter > 0.0 else 0.0
        if lost:
            return True, False, 0.0
        return False, corrupted, extra

    def save_state(self) -> Dict:
        return {
            "loss": None if self.loss is None else self.loss.save_state(),
            "corrupt_rate": self.corrupt_rate,
            "jitter": self.jitter,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "PathFaults":
        loss = state.get("loss")
        return cls(
            loss=None if loss is None else GilbertElliott.from_state(loss),
            corrupt_rate=state.get("corrupt_rate", 0.0),
            jitter=state.get("jitter", 0.0))


class LinkFaultBank:
    """All per-path fault processes installed on one emulator.

    Entries are keyed by directed path (``path_key(src, dst)``) or the
    ``"*"`` wildcard.  A packet is evaluated against the specific entry
    first, then the wildcard, in that fixed order; the first stage to lose
    the packet wins, corruption flags OR together, and jitter adds up.
    """

    def __init__(self) -> None:
        self._paths: Dict[str, PathFaults] = {}

    @property
    def active(self) -> bool:
        return bool(self._paths)

    def set_path(self, key: str, faults: PathFaults) -> None:
        self._paths[key] = faults

    def clear_path(self, key: str) -> None:
        self._paths.pop(key, None)

    def clear(self) -> None:
        self._paths.clear()

    def get(self, key: str) -> Optional[PathFaults]:
        return self._paths.get(key)

    def _matching(self, src: str, dst: str) -> List[PathFaults]:
        matches = []
        specific = self._paths.get(path_key(src, dst))
        if specific is not None:
            matches.append(specific)
        wildcard = self._paths.get(ANY_PATH)
        if wildcard is not None:
            matches.append(wildcard)
        return matches

    def evaluate(self, src: str, dst: str,
                 rng: RandomStream) -> Tuple[bool, bool, float]:
        """Evaluate every matching fault process for one packet.

        Returns (lost, corrupted, extra_delay).  Every matching entry is
        stepped even after an earlier one already lost the packet, so the
        RNG draw count per packet is independent of outcomes.
        """
        lost = False
        corrupted = False
        extra = 0.0
        for entry in self._matching(src, dst):
            e_lost, e_corrupt, e_extra = entry.evaluate(rng)
            lost = lost or e_lost
            corrupted = corrupted or e_corrupt
            extra += e_extra
        return lost, corrupted, extra

    def save_state(self) -> Dict:
        return {key: faults.save_state()
                for key, faults in sorted(self._paths.items())}

    def load_state(self, state: Dict) -> None:
        self._paths = {key: PathFaults.from_state(entry)
                       for key, entry in state.items()}
