"""Enumeration of the attack-scenario space.

The search algorithms operate on "a list of all possible attack scenarios
(malicious actions for each message type)" (Section III-B).  Given a
protocol schema, :class:`ActionSpace` generates that list: the delivery
actions with canonical parameters, plus one lying action per (scalar field,
strategy) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.wire.schema import MessageSpec, ProtocolSchema
from repro.attacks.actions import (AttackScenario, DelayAction, DivertAction,
                                   DropAction, DuplicateAction, LyingAction,
                                   MaliciousAction)
from repro.attacks.strategies import default_strategies


@dataclass(frozen=True)
class ActionSpaceConfig:
    """Canonical parameters for the enumerated delivery actions.

    The defaults mirror the paper's evaluation: delays of 0.5 s and 1 s
    (below the 5 s recovery timers of the tested systems), probabilistic and
    total drops, small and large duplication factors (Fig. 5 uses 50), and
    the divert action.
    """

    delays: Sequence[float] = (0.5, 1.0)
    drop_probabilities: Sequence[float] = (0.5, 1.0)
    duplicate_counts: Sequence[int] = (2, 50)
    include_divert: bool = True
    include_lying: bool = True


class ActionSpace:
    """All attack scenarios for one protocol schema."""

    def __init__(self, schema: ProtocolSchema,
                 config: Optional[ActionSpaceConfig] = None) -> None:
        self.schema = schema
        self.config = config or ActionSpaceConfig()

    def delivery_actions(self) -> List[MaliciousAction]:
        cfg = self.config
        actions: List[MaliciousAction] = []
        actions.extend(DelayAction(d) for d in cfg.delays)
        actions.extend(DropAction(p) for p in cfg.drop_probabilities)
        actions.extend(DuplicateAction(n) for n in cfg.duplicate_counts)
        if cfg.include_divert:
            actions.append(DivertAction())
        return actions

    def lying_actions(self, spec: MessageSpec) -> List[MaliciousAction]:
        if not self.config.include_lying:
            return []
        actions: List[MaliciousAction] = []
        for field_spec in spec.scalar_fields():
            for strategy in default_strategies(field_spec.scalar):
                actions.append(LyingAction(field_spec.name, strategy))
        return actions

    def actions_for(self, message_type: str) -> List[MaliciousAction]:
        spec = self.schema.message_named(message_type)
        return self.delivery_actions() + self.lying_actions(spec)

    def scenarios_for(self, message_type: str) -> List[AttackScenario]:
        return [AttackScenario(message_type, a)
                for a in self.actions_for(message_type)]

    def all_scenarios(self) -> List[AttackScenario]:
        out: List[AttackScenario] = []
        for spec in self.schema.messages:
            out.extend(self.scenarios_for(spec.name))
        return out

    def size(self) -> int:
        return len(self.all_scenarios())

    def summary(self) -> Dict[str, int]:
        return {spec.name: len(self.actions_for(spec.name))
                for spec in self.schema.messages}
