"""Ablations of the platform's design choices (DESIGN.md §5).

1. **Snapshot mode** — execution branching pays a snapshot save per
   injection point and a restore per branch.  Compare plain KVM-style
   snapshots, the paper's page-sharing-aware snapshots, and this
   repository's incremental (delta-against-warm) extension.
2. **Cluster weights** — weighted greedy's preloaded weights are a prior.
   Compare the default prior, a uniform prior, and an adversarial prior
   (delay ranked last) on time-to-find for a delay attack.
3. **Observation window** — the paper picks w = 6 s because the tested
   systems start recovery at 5 s; a shorter window misclassifies
   *recoverable* faults (Drop Pre-Prepare 100%, which a view change heals)
   as devastating attacks.
"""

import pytest

from repro.attacks.actions import (CLUSTER_DELAY, DelayAction, DropAction)
from repro.attacks.space import ActionSpaceConfig
from repro.controller.harness import AttackHarness
from repro.controller.monitor import AttackThreshold
from repro.search.weighted import (DEFAULT_WEIGHTS, ClusterWeights,
                                   WeightedGreedySearch)
from repro.systems.pbft.testbed import pbft_testbed

from reporting import report, run_once

SPACE = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(0.5, 1.0),
                          duplicate_counts=(2, 50), include_divert=True,
                          include_lying=False)


@pytest.mark.benchmark(group="ablation")
def test_ablation_snapshot_modes(benchmark):
    def run():
        out = {}
        for label, kwargs in (
                ("plain", {"shared_pages": False}),
                ("shared (paper)", {"shared_pages": True}),
                ("delta (extension)", {"shared_pages": True,
                                       "delta_snapshots": True})):
            harness = AttackHarness(
                pbft_testbed("primary", warmup=2.0, window=3.0), seed=1,
                **kwargs)
            harness.start_run()
            injection = harness.run_to_injection("PrePrepare")
            baseline = harness.branch_measure(injection, None)
            attacked = harness.branch_measure(injection, DelayAction(1.0))
            out[label] = (harness.ledger.snapshot_total(),
                          baseline.throughput, attacked.throughput)
        return out

    out = run_once(benchmark, run)
    rows = [[label, f"{snap_cost:.2f}", f"{base:.1f}", f"{atk:.1f}"]
            for label, (snap_cost, base, atk) in out.items()]
    report("ABLATION: snapshot mode vs branching cost (2 snapshots + "
           "2 branch restores)",
           ["mode", "snapshot time (s)", "baseline upd/s", "attacked upd/s"],
           rows)

    plain_cost = out["plain"][0]
    shared_cost = out["shared (paper)"][0]
    delta_cost = out["delta (extension)"][0]
    assert shared_cost < plain_cost * 0.8      # the paper's optimization
    assert delta_cost < shared_cost * 0.7      # the incremental extension
    # and the measurements are identical regardless of snapshot plumbing
    results = {v[1:] for v in out.values()}
    assert len(results) == 1


@pytest.mark.benchmark(group="ablation")
def test_ablation_cluster_weights(benchmark):
    priors = {
        "default (paper prior)": None,
        "uniform": ClusterWeights({c: 0.5 for c in DEFAULT_WEIGHTS}),
        "adversarial (delay last)": ClusterWeights(
            {**{c: 0.5 for c in DEFAULT_WEIGHTS}, CLUSTER_DELAY: 0.01}),
    }

    def run():
        out = {}
        for label, weights in priors.items():
            search = WeightedGreedySearch(
                pbft_testbed("primary", warmup=2.0, window=3.0), seed=1,
                threshold=AttackThreshold(delta=0.25), space_config=SPACE,
                weights=weights)
            result = search.run(message_types=["PrePrepare"])
            out[label] = (result.findings[0].found_at if result.findings
                          else float("inf"), result.scenarios_evaluated,
                          result.findings[0].name if result.findings else "-")
        return out

    out = run_once(benchmark, run)
    report("ABLATION: weighted-greedy prior vs time to find an attack",
           ["prior", "found at (s)", "scenarios", "attack"],
           [[k, f"{v[0]:.1f}", v[1], v[2]] for k, v in out.items()])

    default_time = out["default (paper prior)"][0]
    adversarial_time = out["adversarial (delay last)"][0]
    # every prior still finds an attack (early stop needs only one hit)...
    assert all(v[0] != float("inf") for v in out.values())
    # ...but a good prior needs fewer evaluated scenarios than a bad one
    assert out["default (paper prior)"][1] <= \
        out["adversarial (delay last)"][1]
    assert default_time <= adversarial_time


@pytest.mark.benchmark(group="ablation")
def test_ablation_observation_window(benchmark):
    """Why w = 6 s: give the 5 s recovery timers a chance to act."""

    def run():
        out = {}
        for window in (2.0, 4.0, 6.0, 8.0):
            harness = AttackHarness(
                pbft_testbed("primary", warmup=2.0, window=window), seed=1)
            harness.start_run()
            injection = harness.run_to_injection("PrePrepare")
            baseline = harness.branch_measure(injection, None)
            attacked = harness.branch_measure(injection, DropAction(1.0))
            out[window] = AttackThreshold().damage(baseline, attacked)
        return out

    out = run_once(benchmark, run)
    report("ABLATION: window length vs measured damage of Drop "
           "Pre-Prepare 100% (recoverable via the 5s view change)",
           ["window (s)", "damage"],
           [[w, f"{d:.0%}"] for w, d in out.items()])

    # short windows see total loss; windows past the recovery timer see the
    # view change heal part of it, and longer windows heal more
    assert out[2.0] > 0.95
    assert out[4.0] > 0.95
    assert out[6.0] < out[4.0]
    assert out[8.0] < out[6.0]
