"""Packets, fragmentation, and reassembly.

The paper distinguishes *messages* (application-level units, what malicious
actions apply to) from *packets* (what the network moves): "we consider a
network event as an event to deliver a message ... if a message is contained
in several packets."  Transports hand the emulator messages; the emulator
fragments them into MTU-sized packets, moves packets through devices and
links, and reassembles the message at the destination host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import NetworkError
from repro.common.ids import NodeId

MTU = 1500                # bytes of payload a packet can carry
HEADER_BYTES = 28         # IP + UDP header overhead per packet


@dataclass(frozen=True)
class MessageEnvelope:
    """An application message travelling through the emulator.

    ``transport`` tags which transport layer ("udp"/"tcp") should receive it
    at the destination; ``msg_seq`` is unique per emulator and orders
    messages deterministically.
    """

    msg_seq: int
    src: NodeId
    dst: NodeId
    transport: str
    payload: bytes

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclass(frozen=True)
class Packet:
    """One fragment of a message on the wire."""

    msg_seq: int
    frag_index: int
    frag_count: int
    src: NodeId
    dst: NodeId
    transport: str
    payload: bytes

    @property
    def wire_size(self) -> int:
        return len(self.payload) + HEADER_BYTES


def fragment(envelope: MessageEnvelope) -> List[Packet]:
    """Split a message into MTU-sized packets."""
    payload = envelope.payload
    count = max(1, (len(payload) + MTU - 1) // MTU)
    return [
        Packet(envelope.msg_seq, i, count, envelope.src, envelope.dst,
               envelope.transport, payload[i * MTU:(i + 1) * MTU])
        for i in range(count)
    ]


class ReassemblyBuffer:
    """Per-host reassembly of fragments back into messages."""

    def __init__(self) -> None:
        self._partial: Dict[int, Dict[int, Packet]] = {}

    def add(self, packet: Packet) -> Optional[MessageEnvelope]:
        """Add a fragment; return the completed message if it is the last."""
        if packet.frag_count == 1:
            return MessageEnvelope(packet.msg_seq, packet.src, packet.dst,
                                   packet.transport, packet.payload)
        frags = self._partial.setdefault(packet.msg_seq, {})
        if packet.frag_index in frags:
            raise NetworkError(
                f"duplicate fragment {packet.frag_index} of msg {packet.msg_seq}")
        frags[packet.frag_index] = packet
        if len(frags) < packet.frag_count:
            return None
        del self._partial[packet.msg_seq]
        payload = b"".join(frags[i].payload for i in range(packet.frag_count))
        return MessageEnvelope(packet.msg_seq, packet.src, packet.dst,
                               packet.transport, payload)

    def pending_messages(self) -> int:
        return len(self._partial)

    # ------------------------------------------------------------- snapshot

    def save_state(self) -> list:
        return [
            (seq, [self._packet_record(p) for p in frags.values()])
            for seq, frags in sorted(self._partial.items())
        ]

    def load_state(self, state: list) -> None:
        self._partial = {}
        for seq, packet_records in state:
            frags = {}
            for record in packet_records:
                packet = packet_from_record(record)
                frags[packet.frag_index] = packet
            self._partial[seq] = frags

    @staticmethod
    def _packet_record(packet: Packet) -> tuple:
        return packet_to_record(packet)


def packet_to_record(packet: Packet) -> tuple:
    """Serialize a packet to a plain tuple (for emulator save/load)."""
    return (packet.msg_seq, packet.frag_index, packet.frag_count,
            (packet.src.index, packet.src.role),
            (packet.dst.index, packet.dst.role),
            packet.transport, packet.payload)


def packet_from_record(record: tuple) -> Packet:
    (msg_seq, frag_index, frag_count, src_t, dst_t, transport, payload) = record
    return Packet(msg_seq, frag_index, frag_count,
                  NodeId(src_t[0], src_t[1]), NodeId(dst_t[0], dst_t[1]),
                  transport, payload)


def envelope_to_record(envelope: MessageEnvelope) -> tuple:
    return (envelope.msg_seq,
            (envelope.src.index, envelope.src.role),
            (envelope.dst.index, envelope.dst.role),
            envelope.transport, envelope.payload)


def envelope_from_record(record: tuple) -> MessageEnvelope:
    msg_seq, src_t, dst_t, transport, payload = record
    return MessageEnvelope(msg_seq, NodeId(src_t[0], src_t[1]),
                           NodeId(dst_t[0], dst_t[1]), transport, payload)
