"""Page-sharing-aware snapshot management (Section IV-C of the paper).

Two snapshot modes:

* **plain** — each VM snapshot stores the full content of every resident
  page, exactly what unmodified KVM writes.
* **shared** — the manager additionally writes one *shared page map* holding
  each KSM-merged page once; the per-VM snapshot stores only a pfn plus a
  digest reference for shared pages and full content for private pages.

Restores verify that reconstructed memory is page-for-page identical to what
was saved, and the byte accounting feeds :class:`~repro.vm.timing.
VmTimingModel` so that sharing translates into save-time savings the way the
paper measures in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SnapshotError
from repro.common.units import PAGE_SIZE
from repro.vm.ksm import KsmDaemon
from repro.vm.memory import GuestMemory, Page
from repro.vm.timing import VmTimingModel

# On-disk record overheads (bytes): pfn (8) + flag (1); a shared reference
# additionally stores the 16-byte digest instead of 4096 bytes of content.
_RECORD_HEADER = 9
_DIGEST_REF = 16


@dataclass(frozen=True)
class PageRecord:
    """One page entry inside a VM snapshot file."""

    pfn: int
    shared: bool
    digest: bytes
    content: Optional[bytes] = None  # None for shared refs / synthetic pages

    def stored_bytes(self) -> int:
        if self.shared:
            return _RECORD_HEADER + _DIGEST_REF
        return _RECORD_HEADER + PAGE_SIZE


@dataclass
class VmSnapshot:
    """Snapshot file of a single VM."""

    vm_name: str
    records: List[PageRecord]
    app_page_count: int

    def stored_bytes(self) -> int:
        return sum(r.stored_bytes() for r in self.records)

    def shared_refs(self) -> int:
        return sum(1 for r in self.records if r.shared)


@dataclass
class SharedPageMap:
    """The shared page map file: each merged page stored exactly once."""

    pages: Dict[bytes, Page] = field(default_factory=dict)

    def stored_bytes(self) -> int:
        return len(self.pages) * (PAGE_SIZE + _DIGEST_REF)

    def lookup(self, digest: bytes) -> Page:
        try:
            return self.pages[digest]
        except KeyError:
            raise SnapshotError(
                f"shared page map missing digest {digest.hex()}") from None


@dataclass
class ClusterSnapshot:
    """Snapshots of all VMs plus the optional shared page map."""

    mode: str                      # "plain" | "shared"
    vm_snapshots: List[VmSnapshot]
    shared_map: Optional[SharedPageMap]
    save_time: float
    load_time: float

    def stored_bytes(self) -> int:
        total = sum(s.stored_bytes() for s in self.vm_snapshots)
        if self.shared_map is not None:
            total += self.shared_map.stored_bytes()
        return total

    def page_counts(self) -> Dict[str, int]:
        """Table-II-style page breakdown: total, KSM-shared refs, private."""
        total = sum(len(s.records) for s in self.vm_snapshots)
        shared = sum(s.shared_refs() for s in self.vm_snapshots)
        return {"pages_total": total, "pages_shared": shared,
                "pages_private": total - shared}

    @property
    def vm_count(self) -> int:
        return len(self.vm_snapshots)


@dataclass
class DeltaVmSnapshot:
    """Pages of one VM that differ from a base snapshot."""

    vm_name: str
    changed: List[PageRecord]
    removed: List[int]
    app_page_count: int

    def stored_bytes(self) -> int:
        return (sum(r.stored_bytes() for r in self.changed)
                + 8 * len(self.removed))


@dataclass
class DeltaClusterSnapshot:
    """A base snapshot plus per-VM deltas; restores base-then-overlay."""

    base: ClusterSnapshot
    vm_deltas: List[DeltaVmSnapshot]
    save_time: float
    load_time: float

    def stored_bytes(self) -> int:
        return sum(d.stored_bytes() for d in self.vm_deltas)

    def page_counts(self) -> Dict[str, int]:
        """Delta breakdown: pages re-stored vs dropped relative to the base."""
        return {
            "pages_changed": sum(len(d.changed) for d in self.vm_deltas),
            "pages_removed": sum(len(d.removed) for d in self.vm_deltas),
        }

    @property
    def vm_count(self) -> int:
        return len(self.vm_deltas)


class SnapshotStore:
    """A keyed store of snapshot-bearing values, optionally byte-budgeted.

    With ``budget=None`` it is a plain dict (the pre-budget behaviour:
    unbounded retention).  With a :class:`~repro.store.budget.
    SnapshotBudget` every insertion is charged by ``size_of(value)`` and
    least-recently-used entries are evicted to stay under the budget;
    evicted keys are remembered so the owner can tell a capacity miss
    (rebuild the deterministic snapshot) from a genuine never-seen miss.
    The budget object is duck-typed on purpose — this layer stays free of
    upward imports.
    """

    def __init__(self, budget=None, size_of=None) -> None:
        self.budget = budget
        self._size_of = size_of or (lambda value: value.stored_bytes())
        self._entries: Dict[object, object] = {}
        self._evicted: set = set()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        value = self._entries.get(key)
        if self.budget is not None:
            if value is not None:
                self.budget.touch(key)
            else:
                self.budget.miss()
        return value

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._evicted.discard(key)
        if self.budget is not None:
            self.budget.admit(key, self._size_of(value), self._drop)

    def _drop(self, key) -> None:
        self._entries.pop(key, None)
        self._evicted.add(key)

    def was_evicted(self, key) -> bool:
        """True when ``key`` was present once but evicted for capacity."""
        return key in self._evicted

    def clear(self) -> None:
        self._entries.clear()
        self._evicted.clear()
        if self.budget is not None:
            self.budget.invalidate_all()


class SnapshotManager:
    """Implements save/load for a set of guests, with optional page sharing."""

    def __init__(self, ksm: Optional[KsmDaemon] = None,
                 timing: Optional[VmTimingModel] = None) -> None:
        self.ksm = ksm
        self.timing = timing or VmTimingModel()

    # ------------------------------------------------------------------ save

    def save(self, memories: Sequence[GuestMemory], shared: bool = False,
             max_bandwidth: bool = True) -> ClusterSnapshot:
        if shared and self.ksm is None:
            raise SnapshotError("shared snapshots require a KSM daemon")
        shared_map = SharedPageMap() if shared else None
        vm_snapshots: List[VmSnapshot] = []
        for memory in memories:
            records: List[PageRecord] = []
            for pfn, page in memory.iter_pages():
                if shared and self.ksm.is_shared(memory.vm_name, pfn, page):
                    shared_map.pages.setdefault(page.digest, page)
                    records.append(PageRecord(pfn, True, page.digest))
                else:
                    records.append(
                        PageRecord(pfn, False, page.digest, page.content))
            vm_snapshots.append(
                VmSnapshot(memory.vm_name, records, memory.app_page_count()))

        payload = sum(s.stored_bytes() for s in vm_snapshots)
        if shared_map is not None:
            payload += shared_map.stored_bytes()
        save_time = self.timing.save_time(
            payload, len(vm_snapshots), max_bandwidth=max_bandwidth)
        load_time = self.timing.load_time(len(vm_snapshots))
        return ClusterSnapshot(
            "shared" if shared else "plain", vm_snapshots, shared_map,
            save_time, load_time)

    # ------------------------------------------------------------------ load

    def _stage(self, snapshot: ClusterSnapshot,
               memories: Sequence[GuestMemory]
               ) -> List[List]:
        """Reconstruct every VM's page table without touching guest memory.

        Restores are applied in two phases — stage everything (where any
        missing guest, dangling shared reference, or corrupt record
        surfaces as a :class:`SnapshotError`), then commit — so a failed
        restore leaves every guest's memory exactly as it was.
        """
        by_name = {m.vm_name: m for m in memories}
        staged: List[List] = []
        for vm_snap in snapshot.vm_snapshots:
            memory = by_name.get(vm_snap.vm_name)
            if memory is None:
                raise SnapshotError(
                    f"no guest named {vm_snap.vm_name} to restore into")
            pages: Dict[int, Page] = {}
            for record in vm_snap.records:
                if record.shared:
                    if snapshot.shared_map is None:
                        raise SnapshotError(
                            f"{vm_snap.vm_name}: shared ref without a map")
                    pages[record.pfn] = snapshot.shared_map.lookup(
                        record.digest)
                else:
                    pages[record.pfn] = Page(record.digest, record.content)
            staged.append([memory, pages, vm_snap.app_page_count])
        return staged

    def load(self, snapshot: ClusterSnapshot,
             memories: Sequence[GuestMemory]) -> None:
        for memory, pages, app_page_count in self._stage(snapshot, memories):
            memory.load_pages(pages, app_page_count)

    # ----------------------------------------------------- delta snapshots
    #
    # Execution branching takes a snapshot at every injection point of a
    # search, but most guest pages (the whole OS image, most of the heap)
    # are identical to the warm snapshot taken after boot.  A delta
    # snapshot stores only pages that changed relative to a base snapshot,
    # cutting save cost for every injection point after the first.

    def save_delta(self, memories: Sequence[GuestMemory],
                   base: ClusterSnapshot,
                   max_bandwidth: bool = True) -> "DeltaClusterSnapshot":
        base_index: Dict[str, Dict[int, bytes]] = {}
        base_counts: Dict[str, int] = {}
        for vm_snap in base.vm_snapshots:
            base_index[vm_snap.vm_name] = {
                r.pfn: r.digest for r in vm_snap.records}
            base_counts[vm_snap.vm_name] = vm_snap.app_page_count

        deltas: List[DeltaVmSnapshot] = []
        for memory in memories:
            known = base_index.get(memory.vm_name)
            if known is None:
                raise SnapshotError(
                    f"base snapshot has no VM named {memory.vm_name}")
            changed: List[PageRecord] = []
            present = set()
            for pfn, page in memory.iter_pages():
                present.add(pfn)
                if known.get(pfn) != page.digest:
                    changed.append(
                        PageRecord(pfn, False, page.digest, page.content))
            removed = sorted(set(known) - present)
            deltas.append(DeltaVmSnapshot(memory.vm_name, changed, removed,
                                          memory.app_page_count()))

        payload = sum(d.stored_bytes() for d in deltas)
        save_time = self.timing.save_time(
            payload, len(deltas), max_bandwidth=max_bandwidth)
        # loading must materialize the base first, then apply the delta
        load_time = base.load_time + self.timing.load_time(len(deltas))
        return DeltaClusterSnapshot(base, deltas, save_time, load_time)

    def load_delta(self, snapshot: "DeltaClusterSnapshot",
                   memories: Sequence[GuestMemory]) -> None:
        # Overlay each delta onto the *staged* base page tables, never onto
        # live guest memory: a SnapshotError anywhere mid-restore (missing
        # guest, dangling shared ref) must leave all guests untouched
        # rather than half base-restored.
        staged = self._stage(snapshot.base, memories)
        by_name = {entry[0].vm_name: entry for entry in staged}
        for delta in snapshot.vm_deltas:
            entry = by_name.get(delta.vm_name)
            if entry is None:
                raise SnapshotError(
                    f"no guest named {delta.vm_name} to restore into")
            __, pages, __count = entry
            for pfn in delta.removed:
                pages.pop(pfn, None)
            for record in delta.changed:
                pages[record.pfn] = Page(record.digest, record.content)
            entry[2] = delta.app_page_count
        for memory, pages, app_page_count in staged:
            memory.load_pages(pages, app_page_count)

    # -------------------------------------------------------------- analysis

    @staticmethod
    def compare(plain: ClusterSnapshot, shared: ClusterSnapshot
                ) -> Tuple[float, float]:
        """(size reduction, save-time reduction) of shared vs plain, in %.

        A plain snapshot of empty memories (or one taken under a
        zero-bandwidth timing model) has nothing to reduce; report 0.0
        instead of dividing by zero.
        """
        plain_bytes = plain.stored_bytes()
        size_red = (100.0 * (1 - shared.stored_bytes() / plain_bytes)
                    if plain_bytes else 0.0)
        time_red = (100.0 * (1 - shared.save_time / plain.save_time)
                    if plain.save_time else 0.0)
        return size_red, time_red
