"""The virtual machine abstraction.

A :class:`VirtualMachine` hosts one participant of the distributed system
under test.  It owns guest memory (``repro.vm.memory``), exposes the
pause/resume lifecycle the distributed-snapshot procedure requires, and
bridges between the hosted application's structured state and the page-level
view the snapshot machinery operates on: ``sync_app_pages`` serializes the
application state into resident pages, and ``restore_app`` rebuilds the
application from the pages a snapshot restore brought back.
"""

from __future__ import annotations

import pickle
from typing import Any, Optional, Protocol

from repro.common.errors import SnapshotError
from repro.vm.memory import GuestMemory, OsImage


class HostedApp(Protocol):
    """What a VM needs from the application it hosts."""

    def snapshot_state(self) -> Any:
        """Return the app's full protocol state as plain picklable data."""

    def restore_state(self, state: Any) -> None:
        """Rebuild the app from a previously returned state value."""


class VirtualMachine:
    """One guest: memory plus a hosted application and a pause flag."""

    def __init__(self, name: str, image: Optional[OsImage] = None) -> None:
        self.name = name
        self.image = image or OsImage()
        self.memory = GuestMemory(name, self.image)
        self.app: Optional[HostedApp] = None
        self.paused = False
        self.running = False

    # ------------------------------------------------------------- lifecycle

    def boot(self, app: Optional[HostedApp] = None) -> None:
        if app is not None:
            self.app = app
        self.running = True
        self.paused = False

    def pause(self) -> None:
        if not self.running:
            raise SnapshotError(f"{self.name}: cannot pause a VM that is not running")
        self.paused = True

    def resume(self) -> None:
        if not self.running:
            raise SnapshotError(f"{self.name}: cannot resume a VM that is not running")
        self.paused = False

    def shutdown(self) -> None:
        self.running = False
        self.paused = False

    # ------------------------------------------------------------ app bridge

    def sync_app_pages(self) -> int:
        """Serialize the hosted app's state into guest pages.

        Returns the size of the serialized state in bytes.  Must be called
        with the VM paused (the paper pauses VMs before saving so the saved
        pages are consistent).
        """
        if not self.paused:
            raise SnapshotError(
                f"{self.name}: app pages may only be synced while paused")
        if self.app is None:
            self.memory.write_app_state(b"")
            return 0
        blob = pickle.dumps(self.app.snapshot_state(), protocol=4)
        self.memory.write_app_state(blob)
        return len(blob)

    def restore_app(self) -> None:
        """Rebuild the hosted app's state from resident app pages."""
        if self.app is None:
            return
        padded = self.memory.read_app_state()
        if not padded:
            return
        self.app.restore_state(pickle.loads(padded))

    def state_digest(self) -> bytes:
        """Digest of the hosted app's state (for branch-equality checks)."""
        if self.app is None:
            return b""
        import hashlib
        return hashlib.blake2b(
            pickle.dumps(self.app.snapshot_state(), protocol=4),
            digest_size=16).digest()
