"""Tests for KSM page merging and page-sharing-aware snapshots."""

import pytest

from repro.common.errors import SnapshotError
from repro.common.units import MIB
from repro.vm.ksm import KsmDaemon
from repro.vm.memory import GuestMemory, OsImage
from repro.vm.snapshots import SnapshotManager
from repro.vm.timing import VmTimingModel

SMALL = OsImage(name="small", resident_mb=2, unique_mb=1)


def make_guests(n):
    return [GuestMemory(f"vm{i}", SMALL) for i in range(n)]


class TestKsm:
    def test_scan_finds_shared_os_pages(self):
        guests = make_guests(3)
        ksm = KsmDaemon()
        for g in guests:
            g.clear_dirty()
            ksm.register(g)
        stats = ksm.scan()
        assert stats.pages_shared == SMALL.shared_pages
        assert stats.pages_sharing == 3 * SMALL.shared_pages

    def test_unique_pages_not_merged(self):
        guests = make_guests(2)
        ksm = KsmDaemon()
        for g in guests:
            g.clear_dirty()
            ksm.register(g)
        ksm.scan()
        pfn = SMALL.shared_pages  # first per-VM unique page
        for g in guests:
            assert not ksm.is_shared(g.vm_name, pfn, g.page(pfn))

    def test_is_shared_for_merged_pages(self):
        guests = make_guests(2)
        ksm = KsmDaemon()
        for g in guests:
            g.clear_dirty()
            ksm.register(g)
        ksm.scan()
        assert ksm.is_shared("vm0", 0, guests[0].page(0))

    def test_volatile_pages_skipped(self):
        guests = make_guests(2)
        ksm = KsmDaemon()
        for g in guests:
            ksm.register(g)
        guests[0].clear_dirty()
        guests[1].clear_dirty()
        guests[0].touch(0)  # dirty since last scan: volatile
        stats = ksm.scan()
        assert stats.pages_volatile == 1
        assert not ksm.is_shared("vm0", 0, guests[0].page(0))
        # second scan: the page was quiescent, so it merges now
        stats = ksm.scan()
        assert ksm.is_shared("vm0", 0, guests[0].page(0))

    def test_identical_app_pages_merge(self):
        guests = make_guests(2)
        for g in guests:
            g.write_app_state(b"same-state" * 1000)
            g.clear_dirty()
        ksm = KsmDaemon()
        for g in guests:
            ksm.register(g)
        ksm.scan()
        ratio = ksm.sharing_ratio()
        assert ratio > SMALL.shared_pages / (SMALL.shared_pages
                                             + SMALL.unique_pages)

    def test_unregister_prunes(self):
        guests = make_guests(2)
        ksm = KsmDaemon()
        for g in guests:
            g.clear_dirty()
            ksm.register(g)
        ksm.scan()
        ksm.unregister("vm1")
        assert not ksm.is_shared("vm0", 0, guests[0].page(0))


class TestSnapshots:
    def _setup(self, n=3):
        guests = make_guests(n)
        ksm = KsmDaemon()
        for g in guests:
            g.write_app_state(f"{g.vm_name}-state".encode() * 50)
            g.clear_dirty()
            ksm.register(g)
        ksm.scan()
        return guests, SnapshotManager(ksm, VmTimingModel())

    def test_plain_snapshot_stores_everything(self):
        guests, manager = self._setup()
        snap = manager.save(guests, shared=False)
        assert snap.mode == "plain"
        assert snap.shared_map is None
        total_pages = sum(g.resident_pages() for g in guests)
        assert snap.stored_bytes() >= total_pages * 4096

    def test_shared_snapshot_smaller(self):
        guests, manager = self._setup()
        plain = manager.save(guests, shared=False)
        shared = manager.save(guests, shared=True)
        assert shared.stored_bytes() < plain.stored_bytes()
        assert shared.save_time < plain.save_time

    def test_shared_refs_counted(self):
        guests, manager = self._setup()
        shared = manager.save(guests, shared=True)
        refs = sum(s.shared_refs() for s in shared.vm_snapshots)
        assert refs == 3 * SMALL.shared_pages
        assert len(shared.shared_map.pages) == SMALL.shared_pages

    def test_restore_roundtrip_plain(self):
        guests, manager = self._setup()
        snap = manager.save(guests, shared=False)
        for g in guests:
            g.write_app_state(b"corrupted")
        manager.load(snap, guests)
        for g in guests:
            assert g.read_app_state().startswith(f"{g.vm_name}-state".encode())

    def test_restore_roundtrip_shared(self):
        guests, manager = self._setup()
        snap = manager.save(guests, shared=True)
        before = {g.vm_name: [p.digest for _, p in g.iter_pages()]
                  for g in guests}
        for g in guests:
            g.write_app_state(b"corrupted")
        manager.load(snap, guests)
        for g in guests:
            assert [p.digest for _, p in g.iter_pages()] == before[g.vm_name]

    def test_shared_requires_ksm(self):
        guests = make_guests(2)
        manager = SnapshotManager(None, VmTimingModel())
        with pytest.raises(SnapshotError):
            manager.save(guests, shared=True)

    def test_load_into_unknown_guest_raises(self):
        guests, manager = self._setup()
        snap = manager.save(guests, shared=False)
        with pytest.raises(SnapshotError):
            manager.load(snap, [GuestMemory("other", SMALL)])

    def test_default_bandwidth_slower(self):
        guests, manager = self._setup()
        fast = manager.save(guests, shared=False, max_bandwidth=True)
        slow = manager.save(guests, shared=False, max_bandwidth=False)
        assert slow.save_time > fast.save_time


class TestTableTwoShape:
    """The Table II claim: sharing cuts save time by roughly a third, and
    the saving grows with the number of VMs."""

    @pytest.mark.parametrize("n_vms", [5, 10, 15])
    def test_time_reduction_band(self, n_vms):
        guests = [GuestMemory(f"vm{i}", OsImage()) for i in range(n_vms)]
        ksm = KsmDaemon()
        for g in guests:
            g.write_app_state(f"{g.vm_name}".encode() * 200)
            g.clear_dirty()
            ksm.register(g)
        ksm.scan()
        manager = SnapshotManager(ksm, VmTimingModel())
        plain = manager.save(guests, shared=False)
        shared = manager.save(guests, shared=True)
        __, time_red = SnapshotManager.compare(plain, shared)
        assert 28.0 < time_red < 46.0

    def test_reduction_grows_with_vm_count(self):
        reductions = []
        for n_vms in (5, 15):
            guests = [GuestMemory(f"vm{i}", OsImage()) for i in range(n_vms)]
            ksm = KsmDaemon()
            for g in guests:
                g.clear_dirty()
                ksm.register(g)
            ksm.scan()
            manager = SnapshotManager(ksm, VmTimingModel())
            plain = manager.save(guests, shared=False)
            shared = manager.save(guests, shared=True)
            reductions.append(SnapshotManager.compare(plain, shared)[1])
        assert reductions[1] > reductions[0]

    def test_five_vm_sizes_match_paper_scale(self):
        guests = [GuestMemory(f"vm{i}", OsImage()) for i in range(5)]
        manager = SnapshotManager(None, VmTimingModel())
        plain = manager.save(guests, shared=False)
        # paper: ~532 MB for 5 VMs
        assert 450 * MIB < plain.stored_bytes() < 620 * MIB
        # paper: 5.76 s at max bandwidth, 15.24 s at the default cap
        assert 4.5 < plain.save_time < 7.0
        slow = manager.save(guests, shared=False, max_bandwidth=False)
        assert 13.0 < slow.save_time < 18.0
        # paper: loading 5 VMs took 0.038 s
        assert plain.load_time == pytest.approx(0.038, abs=0.01)


class TestCompareDegenerate:
    """compare() on degenerate snapshots must report 0%, not divide by
    zero (a snapshot of zero guests, or of guests with no pages, stores
    zero bytes and takes zero time)."""

    def test_empty_cluster_compares_to_zero(self):
        manager = SnapshotManager(KsmDaemon(), VmTimingModel())
        plain = manager.save([], shared=False)
        shared = manager.save([], shared=True)
        assert SnapshotManager.compare(plain, shared) == (0.0, 0.0)
