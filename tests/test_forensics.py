"""Tests for the attack-forensics layer (causal tracing + explanations)."""

import json

from repro.attacks.actions import (AttackScenario, DelayAction, DropAction,
                                   DuplicateAction)
from repro.attacks.space import ActionSpaceConfig
from repro.common.ids import replica
from repro.controller.monitor import PerfSample
from repro.forensics.causality import (DELIVER, EGRESS, SEND, CausalEvent,
                                       CausalRecorder)
from repro.forensics.differential import (diff_branches, first_divergence,
                                          perf_timeline)
from repro.forensics.explain import ForensicRunner, explain_findings
from repro.forensics.report import (explanation_chrome_trace,
                                    render_explanations_markdown,
                                    write_forensics)
from repro.netem.packets import MessageEnvelope
from repro.search.results import AttackFinding
from repro.systems.pbft.testbed import pbft_testbed

FACTORY = pbft_testbed(malicious="primary", warmup=1.0, window=2.0)
SPACE = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(1.0,),
                          duplicate_counts=(50,), include_divert=False,
                          include_lying=False)


def make_finding(action, mtype="PrePrepare"):
    benign = PerfSample(0.0, 2.0, 100.0, 0.01, 0.01, 0.01, 0)
    attacked = PerfSample(0.0, 2.0, 10.0, 0.01, 0.01, 0.01, 0)
    return AttackFinding(AttackScenario(mtype, action), benign, attacked,
                         damage=0.9, crashes=0, found_at=1.0)


def ev(kind, t, seq, mtype="Msg", src="a", dst="b", digest="d0"):
    return CausalEvent(kind, t, seq, src, dst, mtype, digest)


def recorder_with(events):
    recorder = CausalRecorder(codec=None, clock=lambda: 0.0)
    recorder.events = list(events)
    return recorder


class TestAlignment:
    def test_identical_chronologies_diverge_nowhere(self):
        events = [ev(SEND, 1.0, 1), ev(EGRESS, 1.0, 1), ev(DELIVER, 1.1, 1)]
        d = first_divergence(recorder_with(events), recorder_with(events))
        assert not d.found
        assert d.kind == "none"

    def test_absent_event_is_first_divergence(self):
        benign = [ev(SEND, 1.0, 1), ev(EGRESS, 1.0, 1), ev(DELIVER, 1.1, 1)]
        attack = [ev(SEND, 1.0, 1)]  # proxy dropped it after the send intent
        d = first_divergence(recorder_with(benign), recorder_with(attack))
        assert d.kind == "absent"
        assert d.event_kind == EGRESS
        assert d.msg_seq == 1
        assert d.benign_time == 1.0 and d.attack_time is None

    def test_mutated_payload_detected(self):
        benign = [ev(SEND, 1.0, 1, digest="aa")]
        attack = [ev(SEND, 1.0, 1, digest="bb")]
        d = first_divergence(recorder_with(benign), recorder_with(attack))
        assert d.kind == "mutated"

    def test_delayed_event_detected(self):
        benign = [ev(SEND, 1.0, 1), ev(DELIVER, 1.1, 1)]
        attack = [ev(SEND, 1.0, 1), ev(DELIVER, 2.1, 1)]
        d = first_divergence(recorder_with(benign), recorder_with(attack))
        assert d.kind == "delayed"
        assert d.benign_time == 1.1 and d.attack_time == 2.1

    def test_extra_attack_event_detected(self):
        benign = [ev(SEND, 1.0, 1)]
        attack = [ev(SEND, 1.0, 1), ev(SEND, 1.0, 1)]  # duplicated copy
        d = first_divergence(recorder_with(benign), recorder_with(attack))
        assert d.kind == "extra"

    def test_earliest_divergence_wins(self):
        benign = [ev(SEND, 1.0, 1), ev(SEND, 2.0, 2)]
        attack = [ev(SEND, 2.0, 2)]  # seq 1 missing, earlier than any other
        d = first_divergence(recorder_with(benign), recorder_with(attack))
        assert d.msg_seq == 1

    def test_diff_reports_delivery_deltas_and_suppression(self):
        benign = [ev(DELIVER, 1.0, 1, mtype="A", dst="n1"),
                  ev(DELIVER, 1.1, 2, mtype="B", dst="n1"),
                  ev(DELIVER, 1.2, 3, mtype="B", dst="n2")]
        attack = [ev(DELIVER, 1.0, 1, mtype="A", dst="n1")]
        result = diff_branches(recorder_with(benign), recorder_with(attack))
        assert result.suppressed_types == ["B"]
        deltas = {(d.node, d.message_type): d.delta
                  for d in result.delivery_deltas}
        assert deltas[("n1", "B")] == -1
        assert deltas[("n2", "B")] == -1


class FakeSpec:
    name = "Msg"


class FakeCodec:
    def peek_type(self, payload):
        return FakeSpec()


class TestCausalRecorder:
    def test_hooks_accumulate_events_edges_and_notes(self):
        clock = [0.0]
        recorder = CausalRecorder(FakeCodec(), lambda: clock[0])
        env1 = MessageEnvelope(1, replica(0), replica(1), "udp", b"x")
        env2 = MessageEnvelope(2, replica(1), replica(2), "udp", b"y")
        recorder.on_send(env1, None, "pass")
        recorder.on_egress(env1, 0.5, True)   # effective egress at +0.5
        clock[0] = 1.0
        recorder.on_deliver(env1)
        recorder.on_handle(1, replica(1), "Msg")
        recorder.on_send(env2, 1, "pass")     # induced by handling seq 1
        recorder.on_proxy(2, "Drop 100%")
        recorder.on_release(env2, None)

        kinds = [e.kind for e in recorder.events]
        assert kinds == ["send", "egress", "deliver", "handle", "send"]
        assert recorder.events[1].time == 0.5
        assert recorder.verdicts == {1: "pass", 2: "pass"}
        assert recorder.proxy_notes[2] == ["Drop 100%", "released:pass"]
        graph = recorder.graph()
        assert graph.children[1] == [2]
        assert graph.descendants(1) == [2]
        assert graph.edges[0].node == "replica1"


class TestPerfTimeline:
    def test_buckets_and_per_node_series(self):
        from repro.metrics.collector import MetricsCollector
        metrics = MetricsCollector()
        for i in range(10):
            metrics.record(i * 0.1, replica(0), "update_done", 0.01)
        timeline = perf_timeline(metrics, 0.0, 1.0, buckets=2)
        assert len(timeline.overall) == 2
        assert sum(p.completed for p in timeline.overall) >= 10
        assert "replica0" in timeline.per_node
        assert timeline.to_dict()["bucket"] == 0.5

    def test_degenerate_window_is_empty(self):
        from repro.metrics.collector import MetricsCollector
        timeline = perf_timeline(MetricsCollector(), 1.0, 1.0)
        assert timeline.overall == [] and timeline.per_node == {}


class TestDropForensics:
    """First-divergence correctness on a scripted PBFT drop attack."""

    def explain_drop(self, seed=1):
        runner = ForensicRunner(FACTORY, seed=seed, max_wait=5.0)
        return runner.explain(make_finding(DropAction(1.0)))

    def test_first_divergence_names_the_dropped_message(self):
        exp = self.explain_drop()
        assert not exp.unreproduced
        assert exp.divergence.kind == "absent"
        assert exp.divergence.message_type == "PrePrepare"
        assert exp.divergence.event_kind in ("egress", "deliver")
        assert exp.damage > 0.25
        assert exp.delivery_deltas
        assert any(d.message_type == "PrePrepare" and d.delta < 0
                   for d in exp.delivery_deltas)
        assert "First divergence" in exp.narrative()
        json.dumps(exp.to_dict())  # JSON-serializable

    def test_explanations_are_deterministic(self):
        first = self.explain_drop().to_dict()
        second = self.explain_drop().to_dict()
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_delay_diverges_as_delayed(self):
        runner = ForensicRunner(FACTORY, seed=1, max_wait=5.0)
        exp = runner.explain(make_finding(DelayAction(1.0)))
        assert exp.divergence.kind == "delayed"
        assert exp.divergence.attack_time > exp.divergence.benign_time

    def test_duplicate_diverges_as_extra(self):
        runner = ForensicRunner(FACTORY, seed=1, max_wait=5.0)
        exp = runner.explain(make_finding(DuplicateAction(50)))
        assert exp.divergence.kind == "extra"

    def test_one_runner_explains_many_findings(self):
        explanations = explain_findings(
            FACTORY, [make_finding(DropAction(1.0)),
                      make_finding(DelayAction(1.0))],
            seed=1, max_wait=5.0)
        assert [e.divergence.kind for e in explanations] == \
            ["absent", "delayed"]


class TestReportRendering:
    def test_markdown_and_chrome_trace(self, tmp_path):
        runner = ForensicRunner(FACTORY, seed=1, max_wait=5.0)
        exp = runner.explain(make_finding(DropAction(1.0)))
        text = render_explanations_markdown([exp])
        assert "Attack forensics" in text and "Drop 100% PrePrepare" in text
        trace = explanation_chrome_trace(exp)
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"M", "i", "s", "f"} <= phases
        paths = write_forensics(str(tmp_path / "out"), [exp])
        assert any(p.endswith("explanations.json") for p in paths)
        assert any("trace_001" in p for p in paths)
        with open(paths[0]) as fh:
            data = json.load(fh)
        assert data["explanations"][0]["divergence"]["kind"] == "absent"


class TestHuntForensics:
    def run_hunt(self, workers=1, explain=True):
        from repro.search.hunt import hunt
        return hunt(FACTORY, seed=3, message_types=["PrePrepare"],
                    space_config=SPACE, max_passes=1, max_wait=5.0,
                    workers=workers, explain=explain)

    def test_parallel_explanations_identical_to_serial(self):
        serial = self.run_hunt(workers=1)
        parallel = self.run_hunt(workers=2)
        assert serial.findings and serial.explanations
        serial_json = json.dumps(
            [e.to_dict() for e in serial.explanations], sort_keys=True)
        parallel_json = json.dumps(
            [e.to_dict() for e in parallel.explanations], sort_keys=True)
        assert serial_json == parallel_json

    def test_result_json_identical_with_forensics_on_or_off(self):
        from repro.analysis.reports import hunt_result_to_dict
        explained = self.run_hunt(explain=True)
        plain = self.run_hunt(explain=False)
        assert explained.explanations and plain.explanations is None
        assert json.dumps(hunt_result_to_dict(explained), sort_keys=True) \
            == json.dumps(hunt_result_to_dict(plain), sort_keys=True)
        assert "why " in explained.describe()


class TestForensicsCli:
    def test_unwritable_forensics_dir_fails_fast(self, capsys):
        from repro.cli import main
        code = main(["search", "pbft", "--types", "PrePrepare", "--fast",
                     "--no-lying", "--forensics", "/proc/nope/x"])
        assert code == 2
        assert "cannot write --forensics" in capsys.readouterr().err

    def test_search_explain_writes_bundle(self, capsys, tmp_path):
        from repro.cli import main
        out_dir = str(tmp_path / "forensics")
        code = main(["search", "paxos", "--types", "Accept", "--fast",
                     "--no-lying", "--warmup", "0.5", "--window", "1.5",
                     "--max-wait", "5", "--forensics", out_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "why " in out and "forensics written" in out
        with open(f"{out_dir}/explanations.json") as fh:
            data = json.load(fh)
        exp = data["explanations"][0]
        assert exp["divergence"]["message_type"]
        assert exp["damage"] > 0
