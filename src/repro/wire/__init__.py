"""Message-format compiler: DSL -> schema -> binary codecs.

This package is the reproduction of Turret's "small compiler that reads a
message format description and generates code compatible with a large set of
binary wire protocols" (Section IV-B).  Public surface:

* :func:`parse_schema` — parse the DSL into a :class:`ProtocolSchema`.
* :class:`ProtocolCodec` — encode/decode/mutate messages of a schema.
* :class:`Message` — a decoded message (type name + field dict).
* :func:`compile_schema` — generate a standalone Python codec module.
"""

from repro.wire.codec import Message, ProtocolCodec
from repro.wire.codegen import compile_schema, generate_module_source
from repro.wire.parser import format_schema, parse_schema
from repro.wire.schema import (FieldSpec, MessageSpec, ProtocolSchema,
                               make_field, make_message)
from repro.wire.types import SCALAR_TYPES, ScalarType, scalar_type

__all__ = [
    "Message", "ProtocolCodec", "compile_schema", "generate_module_source",
    "format_schema", "parse_schema", "FieldSpec", "MessageSpec",
    "ProtocolSchema", "make_field", "make_message", "SCALAR_TYPES",
    "ScalarType", "scalar_type",
]
