"""Total Order Multicast — classroom target (Section V-D)."""

from repro.systems.tom.replica import TomConfig, TomMember
from repro.systems.tom.schema import TOM_CODEC, TOM_SCHEMA, TOM_SCHEMA_TEXT
from repro.systems.tom.testbed import TOM_ACTIVE_TYPES, tom_testbed

__all__ = ["TomConfig", "TomMember", "TOM_CODEC", "TOM_SCHEMA",
           "TOM_SCHEMA_TEXT", "TOM_ACTIVE_TYPES", "tom_testbed"]
