"""Exception hierarchy for the Turret reproduction.

Every error raised by the platform derives from :class:`TurretError` so that
callers can distinguish platform failures from bugs in target systems.  Target
system implementation flaws (the ones the paper's lying attacks trigger)
surface as :class:`SegmentationFault` or :class:`AssertionViolation`, which
the node runtime converts into a crashed-node condition rather than letting
them abort the experiment.
"""

from __future__ import annotations


class TurretError(Exception):
    """Base class for all platform errors."""


class ConfigError(TurretError):
    """Invalid configuration passed to a platform component."""


class SimulationError(TurretError):
    """Internal inconsistency detected by the simulation kernel."""


class WatchdogTimeout(SimulationError):
    """The kernel's event watchdog tripped: one run window executed more
    events than its configured cap.

    Raised (not merely logged) so that a livelocked branch — e.g. an event
    storm triggered by a large duplication action — unwinds to the
    supervision layer, which quarantines the offending scenario instead of
    letting it hang the whole search pass.
    """

    def __init__(self, message: str, events: int = 0, limit: int = 0) -> None:
        self.events = events
        self.limit = limit
        super().__init__(message)


class SnapshotError(TurretError):
    """A snapshot could not be taken, stored, or restored."""


class WireFormatError(TurretError):
    """A message-format description or encoded message is malformed."""


class SchemaParseError(WireFormatError):
    """The message-format DSL text could not be parsed."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class CodecError(WireFormatError):
    """Encoding or decoding a concrete message failed."""


class NetworkError(TurretError):
    """The network emulator was asked to do something impossible."""


class TransportError(NetworkError):
    """A transport-level operation (connect, send) failed."""


class ProxyError(TurretError):
    """The malicious proxy could not apply a requested action."""


class SearchError(TurretError):
    """An attack-finding algorithm was misconfigured or failed."""


class TargetSystemFault(Exception):
    """Base for faults raised *inside* target-system code.

    These intentionally do not derive from :class:`TurretError`: they model
    defects in the system under test, not in the platform.
    """


class SegmentationFault(TargetSystemFault):
    """Models a memory-safety crash in a target implementation.

    The paper's lying attacks replace size fields with negative values; the
    C/C++ targets then index out of bounds and die with SIGSEGV.  Our Python
    targets raise this exception from the equivalent unchecked code paths and
    the node runtime marks the node as crashed.
    """


class AssertionViolation(TargetSystemFault):
    """Models an ``assert()`` firing inside a target implementation."""
