"""Nested spans over the platform's hot paths.

Each span carries **two** clocks:

* the *virtual* clock — the simulation kernel's ``now``, the only time that
  means anything inside an experiment.  Virtual timestamps are fully
  deterministic: two identical hunts produce identical virtual-time span
  streams (:meth:`Tracer.virtual_records` is the comparison form).
* the *wall* clock — ``time.perf_counter``, which measures what the
  platform actually spent.  Wall time is what the Chrome trace timeline
  shows, because the virtual clock rewinds at every branch restore (a
  branch's virtual duration can legitimately be zero or negative).

Unlike the :class:`~repro.telemetry.instruments.InstrumentRegistry`, the
tracer is platform-side state: it is **never** rewound by a snapshot
restore, so the span stream records every save, restore, and retried branch
the platform performed, in the order it performed them.

Disabled tracers are free-ish: ``maybe_span`` returns a shared no-op span
after a single flag check, and call sites attach result arguments through
``span.set(...)`` which the null span ignores.

Span names are dotted paths owned by their emitting layer; the parallel
executor's self-healing layer adds ``executor.worker.kill`` /
``executor.worker.respawn`` spans plus ``executor.task.replay`` /
``executor.task.reassign`` / ``executor.pool.degrade`` instants, all
tagged with the worker slot — wall-clock-only by nature, so they ride the
tracer (platform-side state) and never touch the deterministic report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

PHASE_SPAN = "span"
PHASE_INSTANT = "instant"


@dataclass
class SpanRecord:
    """One completed span (or instant event), in completion order."""

    name: str
    phase: str
    depth: int
    t0_virtual: float
    t1_virtual: float
    t0_wall: float
    t1_wall: float
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def virtual_duration(self) -> float:
        return self.t1_virtual - self.t0_virtual

    @property
    def wall_duration(self) -> float:
        return self.t1_wall - self.t0_wall


class _NullSpan:
    """Shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """An open span; closing it (context exit) records it on the tracer."""

    __slots__ = ("_tracer", "name", "depth", "t0_virtual", "t0_wall", "args")

    def __init__(self, tracer: "Tracer", name: str, depth: int,
                 t0_virtual: float, t0_wall: float,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.depth = depth
        self.t0_virtual = t0_virtual
        self.t0_wall = t0_wall
        self.args = args

    def set(self, **args: Any) -> None:
        """Attach result arguments (page counts, outcomes) before closing."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self)
        return False


class Tracer:
    """Collects spans and raw begin/end events for export."""

    def __init__(self, enabled: bool = False,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.enabled = enabled
        self._clock = clock or (lambda: 0.0)
        self.epoch = time.perf_counter()
        #: completed spans and instants, in completion order
        self.spans: List[SpanRecord] = []
        #: raw event stream — ("B"|"E"|"I", name, virtual, wall, args) —
        #: balanced and properly nested by construction, for Chrome export
        self.events: List[Tuple[str, str, float, float, Dict[str, Any]]] = []
        self._stack: List[_Span] = []

    def attach_clock(self, clock: Callable[[], float]) -> None:
        """Point the virtual clock at the current world's kernel."""
        self._clock = clock

    # ------------------------------------------------------------------ spans

    def span(self, name: str, **args: Any):
        """Open a span; close it via ``with`` (or ``__exit__``)."""
        if not self.enabled:
            return NULL_SPAN
        t0v = self._clock()
        t0w = time.perf_counter()
        span = _Span(self, name, len(self._stack), t0v, t0w, dict(args))
        self._stack.append(span)
        self.events.append(("B", name, t0v, t0w, dict(args)))
        return span

    def _close(self, span: _Span) -> None:
        # Spans close LIFO under normal control flow; tolerate a straggler
        # (an exception that skipped an inner close) by removing it anyway.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        t1v = self._clock()
        t1w = time.perf_counter()
        self.events.append(("E", span.name, t1v, t1w, dict(span.args)))
        self.spans.append(SpanRecord(span.name, PHASE_SPAN, span.depth,
                                     span.t0_virtual, t1v,
                                     span.t0_wall, t1w, span.args))

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration event (e.g. one proxy action applied)."""
        if not self.enabled:
            return
        tv = self._clock()
        tw = time.perf_counter()
        self.events.append(("I", name, tv, tw, dict(args)))
        self.spans.append(SpanRecord(name, PHASE_INSTANT, len(self._stack),
                                     tv, tv, tw, tw, dict(args)))

    def adopt(self, spans: List[SpanRecord],
              events: List[Tuple[str, str, float, float, Dict[str, Any]]],
              **tags: Any) -> None:
        """Fold spans recorded by another tracer (a parallel worker) in.

        Each adopted record gets ``tags`` (e.g. ``worker=3``) merged into
        its args, so a Chrome trace of a parallel hunt shows which worker
        performed every harness operation.
        """
        if not self.enabled:
            return
        for record in spans:
            args = dict(record.args)
            args.update(tags)
            self.spans.append(SpanRecord(
                record.name, record.phase, record.depth,
                record.t0_virtual, record.t1_virtual,
                record.t0_wall, record.t1_wall, args))
        for phase, name, tv, tw, args in events:
            merged = dict(args)
            merged.update(tags)
            self.events.append((phase, name, tv, tw, merged))

    # ------------------------------------------------------------------ query

    def mark(self) -> int:
        """Current span count; slice later with ``spans[mark:]``."""
        return len(self.spans)

    def virtual_records(self, since: int = 0) -> List[tuple]:
        """Deterministic projection of the span stream.

        Strips wall-clock fields so two identical experiments compare
        equal; everything left (names, depths, virtual times, args) is a
        pure function of the seeded simulation.
        """
        out = []
        for record in self.spans[since:]:
            args = tuple(sorted(record.args.items()))
            out.append((record.name, record.phase, record.depth,
                        round(record.t0_virtual, 9),
                        round(record.t1_virtual, 9), args))
        return out

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._stack.clear()


def maybe_span(tracer: Optional[Tracer], name: str, **args: Any):
    """``tracer.span(...)`` when tracing is on; the shared null span if not."""
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, **args)
