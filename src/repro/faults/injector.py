"""The fault injector: drives a FaultSchedule against a live world.

The harness builds one injector per testbed, installs it on the world
(:meth:`~repro.runtime.world.World.install_fault_injector`), and arms it
right after boot — before warmup — so the whole measured execution runs
inside the perturbed environment.

Determinism and snapshots.  The expanded action list is a pure function of
the schedule, so injector state is just three small values: the arm time,
the count of already-applied actions (a *prefix* of the list — the kernel
fires equal-time events in scheduling order, and actions are scheduled in
list order with non-decreasing due times), and the app states captured for
``snapshot``-recovery restarts.  That state rides in the world snapshot;
on restore the injector cancels its kernel events and re-schedules exactly
the unapplied suffix, so a branch taken mid-flap or mid-partition replays
the remaining faults identically to an uninterrupted run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.faults.models import GilbertElliott, PathFaults
from repro.faults.schedule import (FaultSchedule, RECOVERY_FRESH,
                                   RECOVERY_SNAPSHOT)
from repro.sim.events import PRIORITY_NETWORK


class FaultInjector:
    """Applies one :class:`FaultSchedule` to one world, deterministically."""

    def __init__(self, world, schedule: FaultSchedule) -> None:
        self.world = world
        self.schedule = schedule
        #: static expansion of the schedule: (at, kind, params) ascending
        self._actions: List[Tuple[float, str, Dict]] = self._expand(schedule)
        self._arm_time: Optional[float] = None
        self._applied = 0
        #: app states captured at crash time for "snapshot" recovery
        self._storage: Dict[str, dict] = {}
        self._handles: List[object] = []
        # Fault randomness is drawn from a registry stream derived from the
        # schedule seed: covered by the world RNG snapshot, and distinct
        # schedules perturb distinctly even on the same world seed.
        world.emulator.fault_rng = world.rng.stream(
            f"netem.faults.{schedule.seed}")
        world.emulator._local_fault_rng = False

    # ------------------------------------------------------------- expansion

    @staticmethod
    def _expand(schedule: FaultSchedule) -> List[Tuple[float, str, Dict]]:
        """Flatten composite events (flap, timed partition, crash+restart,
        timed slow) into atomic actions sorted by time (stable)."""
        actions: List[Tuple[float, str, Dict]] = []
        for event in schedule.events:
            kind, at, params = event.kind, event.at, dict(event.params)
            if kind == "flap":
                down_for = params.pop("down_for", 1.0)
                actions.append((at, "link_down", dict(params)))
                actions.append((at + down_for, "link_up", dict(params)))
            elif kind == "partition":
                heal_after = params.pop("heal_after", None)
                actions.append((at, "partition", params))
                if heal_after is not None:
                    actions.append((at + heal_after, "heal", {}))
            elif kind == "crash":
                restart_after = params.pop("restart_after", None)
                actions.append((at, "crash", params))
                if restart_after is not None:
                    actions.append((at + restart_after, "restart",
                                    {"node": params["node"],
                                     "recovery": params.get(
                                         "recovery", RECOVERY_FRESH)}))
            elif kind == "slow":
                duration = params.pop("duration", None)
                actions.append((at, "slow", params))
                if duration is not None:
                    actions.append((at + duration, "slow",
                                    {"node": params["node"], "factor": 1.0}))
            else:
                actions.append((at, kind, params))
        actions.sort(key=lambda item: item[0])
        return actions

    # ------------------------------------------------------------------ arm

    def arm(self) -> None:
        """Start the schedule clock at the current virtual time."""
        if self._arm_time is None:
            self._arm_time = self.world.kernel.now
        self._schedule_pending()

    def _cancel_handles(self) -> None:
        for handle in self._handles:
            handle.cancel()
        self._handles = []

    def _schedule_pending(self) -> None:
        """(Re-)schedule every not-yet-applied action on the kernel."""
        self._cancel_handles()
        kernel = self.world.kernel
        for index in range(self._applied, len(self._actions)):
            at, __, __params = self._actions[index]
            due = max(self._arm_time + at, kernel.now)
            self._handles.append(kernel.schedule_at(
                due, self._fire, index, priority=PRIORITY_NETWORK))

    def _fire(self, index: int) -> None:
        if index != self._applied:
            # A stale event surviving a restore race; the prefix counter is
            # authoritative, so anything out of order is ignored.
            return
        __, kind, params = self._actions[index]
        self._applied += 1
        self._apply(kind, params)

    @property
    def pending(self) -> int:
        return len(self._actions) - self._applied

    # ---------------------------------------------------------------- apply

    def _count(self, kind: str) -> None:
        ins = self.world.instruments
        if ins is not None and ins.enabled:
            ins.count("faults.injected")
            ins.count(f"faults.{kind}")

    def _path_entry(self, key: str) -> PathFaults:
        entry = self.world.emulator.faults.get(key)
        if entry is None:
            entry = PathFaults()
            self.world.emulator.faults.set_path(key, entry)
        return entry

    def _node_by_name(self, name: str):
        for node_id, node in self.world.nodes.items():
            if str(node_id) == name:
                return node_id, node
        raise ConfigError(f"fault schedule targets unknown node {name!r}")

    def _apply(self, kind: str, params: Dict) -> None:
        world = self.world
        topology = world.emulator.topology
        self._count(kind)
        world.log.emit("faults", kind,
                       **{k: repr(v) for k, v in sorted(params.items())})
        if kind == "loss":
            entry = self._path_entry(params.get("path", "*"))
            entry.loss = GilbertElliott(
                params["p_enter_bad"], params["p_exit_bad"],
                params.get("loss_good", 0.0), params.get("loss_bad", 1.0))
        elif kind == "corrupt":
            key = params.get("path", "*")
            entry = self._path_entry(key)
            world.emulator.faults.set_path(key, PathFaults(
                loss=entry.loss, corrupt_rate=params["rate"],
                jitter=entry.jitter))
        elif kind == "jitter":
            key = params.get("path", "*")
            entry = self._path_entry(key)
            world.emulator.faults.set_path(key, PathFaults(
                loss=entry.loss, corrupt_rate=entry.corrupt_rate,
                jitter=params["jitter"]))
        elif kind == "clear_path":
            world.emulator.faults.clear_path(params.get("path", "*"))
        elif kind == "link_down":
            topology.set_link_down(params["a"], params["b"])
        elif kind == "link_up":
            topology.set_link_up(params["a"], params["b"])
        elif kind == "partition":
            topology.set_partition(params["groups"])
        elif kind == "heal":
            topology.heal_partition()
        elif kind == "crash":
            name = params["node"]
            __, node = self._node_by_name(name)
            if (params.get("recovery") == RECOVERY_SNAPSHOT
                    and node.app is not None):
                self._storage[name] = node.app.snapshot_state()
            node.inject_crash("scheduled fault")
        elif kind == "restart":
            name = params["node"]
            node_id, __ = self._node_by_name(name)
            if params.get("recovery", RECOVERY_FRESH) == RECOVERY_SNAPSHOT:
                world.restart_node(node_id, fresh=False,
                                   app_state=self._storage.get(name))
            else:
                world.restart_node(node_id, fresh=True)
        elif kind == "slow":
            __, node = self._node_by_name(params["node"])
            node.cpu.set_scale(params["factor"])
        else:  # pragma: no cover - schedule validation rejects unknown kinds
            raise ConfigError(f"unknown fault action {kind!r}")

    # ------------------------------------------------------------- snapshot

    def save_state(self) -> dict:
        return {
            "arm_time": self._arm_time,
            "applied": self._applied,
            "storage": dict(self._storage),
        }

    def load_state(self, state: Optional[dict]) -> None:
        self._cancel_handles()
        if state is None:
            self._arm_time = None
            self._applied = 0
            self._storage = {}
            return
        self._arm_time = state["arm_time"]
        self._applied = state["applied"]
        self._storage = dict(state["storage"])
        if self._arm_time is not None:
            self._schedule_pending()
