"""Tests for the classroom targets: Byzantine Generals and Total Order
Multicast (Section V-D)."""


from repro.attacks.actions import DelayAction, DropAction, LyingAction
from repro.attacks.strategies import LyingStrategy
from repro.common.ids import replica
from repro.controller.harness import AttackHarness
from repro.systems.byzgen.testbed import byzgen_testbed
from repro.systems.tom.testbed import tom_testbed


def run(factory, mtype=None, action=None, window=2.0, seed=1):
    h = AttackHarness(factory, seed=seed)
    inst = h.start_run(take_warm_snapshot=False)
    if mtype:
        inst.proxy.set_policy(mtype, action)
    return h.measure_window(window), inst, h


class TestByzantineGenerals:
    def test_rounds_decide(self):
        sample, inst, __ = run(byzgen_testbed(warmup=1.0))
        # 20 rounds/s x 3 deciding lieutenants
        assert 50 < sample.throughput < 70
        for i in range(1, 4):
            assert inst.world.app(replica(i)).decisions > 0

    def test_lieutenants_agree(self):
        __, inst, __ = run(byzgen_testbed(warmup=1.0))
        counts = [inst.world.app(replica(i)).decisions for i in range(1, 4)]
        assert max(counts) - min(counts) <= 2

    def test_commander_does_not_decide(self):
        __, inst, __ = run(byzgen_testbed(warmup=1.0))
        assert inst.world.app(replica(0)).decisions == 0

    def test_delay_order_attack(self):
        baseline, __, __ = run(byzgen_testbed(warmup=1.0))
        attacked, __, __ = run(byzgen_testbed(0, warmup=1.0), "Order",
                               DelayAction(1.0), window=3.0)
        assert attacked.latency_avg > 0.5
        assert attacked.throughput < baseline.throughput

    def test_drop_order_starves_agreement(self):
        baseline, __, __ = run(byzgen_testbed(warmup=1.0))
        attacked, __, __ = run(byzgen_testbed(0, warmup=1.0), "Order",
                               DropAction(0.5), window=3.0)
        assert attacked.throughput < baseline.throughput * 0.6

    def test_single_lying_lieutenant_tolerated(self):
        """OM(1) with n=4 masks one traitor: the assignment's whole point."""
        baseline, __, __ = run(byzgen_testbed(warmup=1.0))
        attacked, __, __ = run(byzgen_testbed(1, warmup=1.0), "Relay",
                               LyingAction("value", LyingStrategy("max")))
        assert attacked.throughput > baseline.throughput * 0.95

    def test_snapshot_roundtrip(self):
        __, inst, __ = run(byzgen_testbed(warmup=1.0), window=1.0)
        import pickle
        app = inst.world.app(replica(2))
        state = app.snapshot_state()
        app.restore_state(pickle.loads(pickle.dumps(state)))
        assert app.snapshot_state() == state


class TestTotalOrderMulticast:
    def test_deliveries_flow(self):
        sample, inst, __ = run(tom_testbed(warmup=1.0))
        # 4 members x 50 publications/s, delivered by all 4
        assert 700 < sample.throughput < 900

    def test_total_order_agreement(self):
        __, inst, __ = run(tom_testbed(warmup=1.0))
        orders = []
        for i in range(4):
            app = inst.world.app(replica(i))
            upto = min(a.delivered_upto for a in
                       (inst.world.app(replica(j)) for j in range(4)))
            orders.append(tuple(app.order.get(g) for g in
                                range(max(1, upto - 50), upto + 1)))
        assert len(set(orders)) == 1  # everyone delivered the same order

    def test_delay_sequence_attack(self):
        attacked, __, __ = run(tom_testbed(0, warmup=1.0), "Sequence",
                               DelayAction(1.0), window=3.0)
        assert attacked.latency_avg > 0.3

    def test_drop_sequence_blocks_members(self):
        baseline, __, __ = run(tom_testbed(warmup=1.0))
        attacked, inst, __ = run(tom_testbed(0, warmup=1.0), "Sequence",
                                 DropAction(0.5), window=3.0)
        # the sequencer still delivers its own stream; everyone else blocks
        assert attacked.throughput < baseline.throughput * 0.4
        blocked = [inst.world.app(replica(i)).delivered_upto
                   for i in range(1, 4)]
        sequencer = inst.world.app(replica(0)).delivered_upto
        assert all(b < sequencer for b in blocked)

    def test_lie_global_seq_creates_permanent_gap(self):
        baseline, __, __ = run(tom_testbed(warmup=1.0))
        attacked, __, __ = run(tom_testbed(0, warmup=1.0), "Sequence",
                               LyingAction("global_seq",
                                           LyingStrategy("add", 1)),
                               window=3.0)
        assert attacked.throughput < baseline.throughput * 0.4

    def test_snapshot_roundtrip(self):
        __, inst, __ = run(tom_testbed(warmup=1.0), window=1.0)
        import pickle
        app = inst.world.app(replica(1))
        state = app.snapshot_state()
        app.restore_state(pickle.loads(pickle.dumps(state)))
        assert app.snapshot_state() == state

    def test_search_finds_sequencer_attack(self):
        from repro.attacks.space import ActionSpaceConfig
        from repro.search import WeightedGreedySearch
        space = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(1.0,),
                                  duplicate_counts=(), include_divert=False,
                                  include_lying=False)
        search = WeightedGreedySearch(
            tom_testbed(0, warmup=1.0, window=2.0), seed=1,
            space_config=space, max_wait=5.0)
        report = search.run(message_types=["Sequence"])
        assert report.findings
        assert "Sequence" in report.findings[0].name
