"""Total Order Multicast via a fixed sequencer (classroom target).

Every member publishes a message every ``publish_interval`` (broadcast to
the group, including the sequencer).  The sequencer — member 0 — assigns
each publication the next global sequence number and broadcasts a Sequence
record.  A member *delivers* a message once it holds both the publication
and its sequence record and every earlier global sequence number has been
delivered.  Deliveries are the performance metric.

Student-grade robustness, on purpose: a gap in the global sequence (a lost
or lied Sequence record) blocks delivery forever — there is no
negative-acknowledgement recovery — so the platform finds delay, drop, and
lying attacks against the sequencer immediately.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.common.ids import NodeId, replica
from repro.metrics.collector import UPDATE_DONE
from repro.runtime.app import Application
from repro.wire.codec import Message

PUBLISH_TIMER = "publish"


class TomConfig:
    def __init__(self, n: int = 4, publish_interval: float = 0.02) -> None:
        self.n = n
        self.publish_interval = publish_interval


class TomMember(Application):
    """One group member; member 0 doubles as the sequencer."""

    def __init__(self, index: int, config: TomConfig) -> None:
        super().__init__()
        self.index = index
        self.config = config
        self.local_seq = 0
        self.next_global = 0            # sequencer: last assigned
        self.delivered_upto = 0         # member: contiguous deliveries
        # (sender, local_seq) -> {"sent_at": float} publications seen
        self.published: Dict[Tuple[int, int], Dict[str, Any]] = {}
        # global_seq -> (sender, local_seq)
        self.order: Dict[int, Tuple[int, int]] = {}
        self.delivered = 0

    @property
    def is_sequencer(self) -> bool:
        return self.index == 0

    def peers(self) -> List[NodeId]:
        return [replica(i) for i in range(self.config.n) if i != self.index]

    # ---------------------------------------------------------------- driver

    def on_start(self) -> None:
        self.set_timer(PUBLISH_TIMER, self.config.publish_interval,
                       periodic=True)

    def on_timer(self, name: str) -> None:
        if name != PUBLISH_TIMER:
            return
        self.local_seq += 1
        message = Message("Publish", {
            "sender": self.index, "local_seq": self.local_seq,
            "sent_at": int(self.now() * 1_000_000),
            "payload": f"m:{self.index}:{self.local_seq}".encode()})
        self._accept_publish(message)
        for peer in self.peers():
            self.send(peer, message)

    # -------------------------------------------------------------- messages

    def on_message(self, src: NodeId, message: Message) -> None:
        if message.type_name == "Publish":
            self._accept_publish(message)
        elif message.type_name == "Sequence":
            if src != replica(0):
                return
            self.order[message["global_seq"]] = (message["sender"],
                                                 message["local_seq"])
            self._try_deliver()

    def _accept_publish(self, message: Message) -> None:
        key = (message["sender"], message["local_seq"])
        if key in self.published:
            return
        self.published[key] = {"sent_at": message["sent_at"] / 1_000_000}
        if self.is_sequencer:
            self.next_global += 1
            record = Message("Sequence", {
                "global_seq": self.next_global, "sender": key[0],
                "local_seq": key[1]})
            self.order[self.next_global] = key
            for peer in self.peers():
                self.send(peer, record)
        self._try_deliver()

    def _try_deliver(self) -> None:
        while True:
            key = self.order.get(self.delivered_upto + 1)
            if key is None or key not in self.published:
                return
            self.delivered_upto += 1
            self.delivered += 1
            sent_at = self.published[key]["sent_at"]
            self.node.emit_metric(UPDATE_DONE,
                                  max(0.0, self.now() - sent_at))
            if self.delivered_upto % 512 == 0:
                self._garbage_collect()

    def _garbage_collect(self) -> None:
        horizon = self.delivered_upto - 512
        for gseq in [g for g in self.order if g <= horizon]:
            self.published.pop(self.order[gseq], None)
            del self.order[gseq]

    # ------------------------------------------------------------- snapshot

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "local_seq": self.local_seq,
            "next_global": self.next_global,
            "delivered_upto": self.delivered_upto,
            "published": {f"{s}:{l}": dict(e)
                          for (s, l), e in self.published.items()},
            "order": {g: list(k) for g, k in self.order.items()},
            "delivered": self.delivered,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.index = state["index"]
        self.local_seq = state["local_seq"]
        self.next_global = state["next_global"]
        self.delivered_upto = state["delivered_upto"]
        self.published = {}
        for key, entry in state["published"].items():
            s, l = key.split(":")
            self.published[(int(s), int(l))] = dict(entry)
        self.order = {int(g): tuple(k) for g, k in state["order"].items()}
        self.delivered = state["delivered"]
