"""Append-only write-ahead journal with CRC32 records and fsync commits.

The journal is the durability primitive under :class:`~repro.store.runstore.
RunStore`: each record is one line of JSON wrapped in an envelope carrying
a CRC32 of the record's canonical encoding, and every append is flushed and
fsynced before it is considered committed.  A process killed mid-append
leaves at most one torn line at the end of the file; :func:`recover_journal`
truncates the file back to the last valid record, so the journal's committed
prefix is always readable.

``REPRO_STORE_CHAOS`` injects deterministic durability faults for tests and
CI, mirroring ``REPRO_WORKER_CHAOS`` from the self-healing layer:

* ``torn:<n>:<flag-file>`` — the ``n``-th append in this process writes only
  half of the record's bytes, skips the fsync, and SIGKILLs the process
  (the torn-tail case recovery must truncate);
* ``crash:<n>:<flag-file>`` — the ``n``-th append commits normally (write +
  fsync) and then SIGKILLs the process (the clean-kill case: everything
  journaled so far must survive);
* ``ckpt:<n>:<flag-file>`` — the ``n``-th checkpoint write truncates the
  freshly renamed generation file to half its bytes and SIGKILLs (the
  corrupt-generation case: load must fall back to the previous good one).

The flag file is written *before* firing, so the fault disarms itself after
one shot — a resumed process with the same environment runs clean.
"""

from __future__ import annotations

import json
import os
import signal
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigError

#: bump when the record envelope format changes
JOURNAL_VERSION = 1

CHAOS_ENV = "REPRO_STORE_CHAOS"
_CHAOS_MODES = ("torn", "crash", "ckpt")


def _canonical(record: Dict[str, Any]) -> str:
    """The byte-stable encoding the CRC is computed over."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_record(record: Dict[str, Any]) -> bytes:
    """One journal line: ``{"crc": <crc32>, "r": <record>}\\n``."""
    body = _canonical(record)
    crc = zlib.crc32(body.encode("utf-8"))
    return f'{{"crc": {crc}, "r": {body}}}\n'.encode("utf-8")


def decode_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Decode one journal line; None if torn, corrupt, or CRC-mismatched."""
    try:
        envelope = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(envelope, dict) or "crc" not in envelope \
            or "r" not in envelope:
        return None
    record = envelope["r"]
    if not isinstance(record, dict):
        return None
    if zlib.crc32(_canonical(record).encode("utf-8")) != envelope["crc"]:
        return None
    return record


class _ChaosHook:
    """Parsed ``REPRO_STORE_CHAOS`` spec with fire-once flag semantics."""

    def __init__(self) -> None:
        self.mode: Optional[str] = None
        self.nth = 0
        self.flag = ""
        self._appends = 0
        self._checkpoints = 0
        spec = os.environ.get(CHAOS_ENV)
        if not spec:
            return
        parts = spec.split(":")
        if len(parts) < 3 or parts[0] not in _CHAOS_MODES:
            raise ConfigError(
                f"bad {CHAOS_ENV} spec {spec!r}; expected "
                f"<torn|crash|ckpt>:<n>:<flag-file>")
        self.mode = parts[0]
        try:
            self.nth = int(parts[1])
        except ValueError:
            raise ConfigError(f"bad {CHAOS_ENV} count {parts[1]!r}") from None
        self.flag = parts[2]

    def _fire(self) -> bool:
        """Arm-check the flag file; True means the fault should fire now."""
        if self.flag:
            if os.path.exists(self.flag):
                return False  # already fired once
            with open(self.flag, "w") as handle:
                handle.write("fired\n")
        return True

    def on_append(self) -> Optional[str]:
        """Return 'torn'/'crash' when this append should fault, else None."""
        if self.mode not in ("torn", "crash"):
            return None
        self._appends += 1
        if self._appends != self.nth:
            return None
        return self.mode if self._fire() else None

    def on_checkpoint(self) -> bool:
        if self.mode != "ckpt":
            return False
        self._checkpoints += 1
        if self._checkpoints != self.nth:
            return False
        return self._fire()


def _fsync_dir(path: str) -> None:
    """fsync a directory so a rename/append inside it is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _sigkill_self() -> None:  # pragma: no cover - ends the process
    os.kill(os.getpid(), signal.SIGKILL)


def atomic_write_json(path: str, data: Any, indent: int = 2) -> None:
    """Durably replace ``path`` with ``data`` as JSON.

    Write to a temp file, fsync it, rename over the target, then fsync the
    parent directory — a crash at any instant leaves either the complete
    old file or the complete new one, never a torn or empty checkpoint.
    """
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(data, fh, indent=indent)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(os.path.abspath(path)))


def recover_journal(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Read every committed record; truncate any torn tail in place.

    Returns ``(records, dropped)`` where ``dropped`` is the number of
    bytes cut off the tail (0 for a clean journal).  Scanning stops at the
    first invalid line — an append either commits fully (fsync returned)
    or is part of the torn tail; valid-looking lines *after* garbage would
    be appends whose commit we never acknowledged.
    """
    if not os.path.exists(path):
        return [], 0
    with open(path, "rb") as fh:
        data = fh.read()
    records: List[Dict[str, Any]] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            break  # no trailing newline: torn final append
        record = decode_line(data[offset:newline])
        if record is None:
            break
        records.append(record)
        offset = newline + 1
    dropped = len(data) - offset
    if dropped:
        with open(path, "r+b") as fh:
            fh.truncate(offset)
            fh.flush()
            os.fsync(fh.fileno())
    return records, dropped


class Journal:
    """Append-only JSONL journal; every append is durable when it returns."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._chaos = _ChaosHook()
        self.records, self.recovered_bytes = recover_journal(path)
        self.appended = 0
        self._fh = open(path, "ab")

    def append(self, record: Dict[str, Any]) -> None:
        """Commit one record: write, flush, fsync (the WAL contract)."""
        payload = encode_record(record)
        chaos = self._chaos.on_append()
        if chaos == "torn":  # pragma: no cover - SIGKILLs the process
            self._fh.write(payload[:max(1, len(payload) // 2)])
            self._fh.flush()
            _sigkill_self()
        self._fh.write(payload)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1
        if chaos == "crash":  # pragma: no cover - SIGKILLs the process
            _sigkill_self()

    def checkpoint_chaos(self) -> bool:
        """Whether the ``ckpt`` chaos mode wants this checkpoint corrupted."""
        return self._chaos.on_checkpoint()

    def iter_records(self, kind: Optional[str] = None
                     ) -> Iterator[Dict[str, Any]]:
        for record in self.records:
            if kind is None or record.get("kind") == kind:
                yield record

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
