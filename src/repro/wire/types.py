"""Primitive field types supported by the message-format compiler.

Section II-B of the paper fixes the vocabulary: boolean, signed/unsigned
integers of 8/16/32/64 bits, float and double.  Each type knows its struct
format, value bounds, and its *spanning set* — the values an absolute-value
lying strategy draws from ("values from a set which spans the range of the
data type").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Union

from repro.common.errors import WireFormatError

Number = Union[int, float, bool]


@dataclass(frozen=True)
class ScalarType:
    """A fixed-width primitive wire type."""

    name: str
    fmt: str               # struct format character (little-endian applied by codec)
    size: int              # bytes on the wire
    is_integer: bool
    signed: bool
    min_value: Number
    max_value: Number

    @property
    def is_float(self) -> bool:
        return not self.is_integer and self.name != "bool"

    @property
    def is_bool(self) -> bool:
        return self.name == "bool"

    def clamp(self, value: Number) -> Number:
        """Clamp ``value`` into this type's representable range."""
        if self.is_bool:
            return bool(value)
        if self.is_integer:
            return max(self.min_value, min(self.max_value, int(value)))
        return float(value)

    def wrap(self, value: Number) -> Number:
        """Wrap a value into range the way a C store would.

        Integers wrap modularly (two's-complement overflow); floats saturate
        at the type's representable extremes (an f32 store of an
        out-of-range double yields +/-inf in C, which we conservatively model
        as the extreme finite value so the bytes always pack).
        """
        if self.is_bool:
            return bool(value)
        if not self.is_integer:
            return max(float(self.min_value), min(float(self.max_value), float(value)))
        span = self.max_value - self.min_value + 1
        return (int(value) - self.min_value) % span + self.min_value

    def contains(self, value: Number) -> bool:
        if self.is_bool:
            return isinstance(value, bool) or value in (0, 1)
        if self.is_integer:
            return isinstance(value, int) and self.min_value <= value <= self.max_value
        return isinstance(value, (int, float))

    def spanning_values(self) -> List[Number]:
        """Values spanning the type's range, used by the `spanning` strategy."""
        if self.is_bool:
            return [False, True]
        if self.is_integer:
            lo, hi = int(self.min_value), int(self.max_value)
            candidates = [lo, lo // 2, -1, 0, 1, hi // 2, hi]
            out: List[Number] = []
            for v in candidates:
                if lo <= v <= hi and v not in out:
                    out.append(v)
            return out
        return [float(self.min_value), -1.0, 0.0, 1.0, float(self.max_value)]

    def pack(self, value: Number) -> bytes:
        try:
            if self.is_bool:
                return struct.pack("<" + self.fmt, 1 if value else 0)
            return struct.pack("<" + self.fmt, value)
        except (struct.error, OverflowError) as exc:
            raise WireFormatError(
                f"value {value!r} does not fit wire type {self.name}") from exc

    def unpack(self, data: bytes, offset: int) -> Number:
        try:
            (value,) = struct.unpack_from("<" + self.fmt, data, offset)
        except struct.error as exc:
            raise WireFormatError(
                f"truncated {self.name} at offset {offset}") from exc
        if self.is_bool:
            return bool(value)
        return value


def _int_type(name: str, fmt: str, size: int, signed: bool) -> ScalarType:
    if signed:
        lo, hi = -(1 << (8 * size - 1)), (1 << (8 * size - 1)) - 1
    else:
        lo, hi = 0, (1 << (8 * size)) - 1
    return ScalarType(name, fmt, size, True, signed, lo, hi)


BOOL = ScalarType("bool", "B", 1, True, False, 0, 1)
I8 = _int_type("i8", "b", 1, True)
U8 = _int_type("u8", "B", 1, False)
I16 = _int_type("i16", "h", 2, True)
U16 = _int_type("u16", "H", 2, False)
I32 = _int_type("i32", "i", 4, True)
U32 = _int_type("u32", "I", 4, False)
I64 = _int_type("i64", "q", 8, True)
U64 = _int_type("u64", "Q", 8, False)
F32 = ScalarType("f32", "f", 4, False, True, -3.4028235e38, 3.4028235e38)
F64 = ScalarType("f64", "d", 8, False, True, -1.7976931348623157e308,
                 1.7976931348623157e308)

SCALAR_TYPES = {t.name: t for t in
                (BOOL, I8, U8, I16, U16, I32, U32, I64, U64, F32, F64)}


def scalar_type(name: str) -> ScalarType:
    try:
        return SCALAR_TYPES[name]
    except KeyError:
        raise WireFormatError(f"unknown scalar type {name!r}") from None
