"""Application-performance measurement.

Turret "requires ... the ability to observe the application-performance of
the system" (Section I).  Applications report metric events — a client
reports each completed update, with its latency — and the controller
evaluates throughput/latency over the observation window after an attack
injection point.  The collector is part of the world snapshot so branched
executions each see exactly the pre-branch history.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.ids import NodeId

UPDATE_DONE = "update_done"   # value = latency of the completed update (s)


@dataclass(frozen=True)
class MetricEvent:
    time: float
    node: Tuple[int, str]
    name: str
    value: float


class MetricsCollector:
    """Time-ordered store of metric events with windowed queries."""

    def __init__(self) -> None:
        self._events: List[MetricEvent] = []

    # ---------------------------------------------------------------- record

    def record(self, time: float, node: NodeId, name: str, value: float) -> None:
        self._events.append(MetricEvent(time, (node.index, node.role), name, value))

    def sink(self):
        """Bound method in the signature nodes expect as a metric sink."""
        return self.record

    # ---------------------------------------------------------------- query

    def events(self, name: Optional[str] = None) -> List[MetricEvent]:
        if name is None:
            return list(self._events)
        return [e for e in self._events if e.name == name]

    def _times(self, name: str) -> List[float]:
        return [e.time for e in self._events if e.name == name]

    def count_in(self, name: str, start: float, end: float) -> int:
        """Events named ``name`` with start <= time <= end; 0 when the
        window is empty or inverted (never negative)."""
        if end < start:
            return 0
        times = self._times(name)
        return bisect_right(times, end) - bisect_left(times, start)

    def values_in(self, name: str, start: float, end: float) -> List[float]:
        return [e.value for e in self._events
                if e.name == name and start <= e.time <= end]

    def throughput(self, start: float, end: float,
                   name: str = UPDATE_DONE) -> float:
        """Completed events per second over [start, end].

        Well-defined on degenerate windows: a zero-length or inverted
        window, or a window with no events (e.g. a full network partition
        starved every client), yields exactly 0.0."""
        if end <= start:
            return 0.0
        return self.count_in(name, start, end) / (end - start)

    def latency_stats(self, start: float, end: float,
                      name: str = UPDATE_DONE) -> Tuple[float, float, float]:
        """(min, avg, max) of event values in the window; zeros if empty."""
        values = self.values_in(name, start, end)
        if not values:
            return (0.0, 0.0, 0.0)
        return (min(values), sum(values) / len(values), max(values))

    def latency_percentiles(self, start: float, end: float,
                            name: str = UPDATE_DONE,
                            pcts: Tuple[float, ...] = (50, 95, 99)
                            ) -> Tuple[float, ...]:
        """Exact percentiles of event values in the window; zeros if empty.

        Linear interpolation between order statistics (the same convention
        as numpy's default), computed from the collector's raw events — the
        telemetry registry's bucketed histograms approximate, this does not.
        """
        values = sorted(self.values_in(name, start, end))
        if not values:
            return tuple(0.0 for _ in pcts)
        out = []
        for p in pcts:
            idx = (p / 100.0) * (len(values) - 1)
            lo = int(idx)
            hi = min(lo + 1, len(values) - 1)
            out.append(values[lo] + (values[hi] - values[lo]) * (idx - lo))
        return tuple(out)

    def last_event_time(self, name: str = UPDATE_DONE) -> Optional[float]:
        times = self._times(name)
        return times[-1] if times else None

    # -------------------------------------------------------------- snapshot

    def save_state(self) -> list:
        return [(e.time, e.node, e.name, e.value) for e in self._events]

    def load_state(self, state: list) -> None:
        self._events = [MetricEvent(t, tuple(n), name, v)
                        for t, n, name, v in state]

    def clear(self) -> None:
        self._events.clear()
