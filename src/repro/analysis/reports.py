"""Rendering and persistence of search reports.

Search results should survive the Python process: a report round-trips
through plain JSON (scenario records, samples, ledger) so hunts can be
resumed with previously found attacks excluded, compared across runs, or
rendered for humans as text/markdown tables.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.attacks.actions import AttackScenario
from repro.controller.costs import CostLedger
from repro.controller.monitor import PerfSample
from repro.controller.supervisor import (QuarantinedScenario,
                                         SupervisorEvent, SupervisorStats)
from repro.faults.validation import ValidationReport
from repro.search.results import AttackFinding, SearchReport
from repro.telemetry.summary import TelemetrySummary


# ------------------------------------------------------------- serialization

def _sample_to_dict(sample: PerfSample) -> Dict[str, Any]:
    return {
        "start": sample.start, "end": sample.end,
        "throughput": sample.throughput,
        "latency_min": sample.latency_min,
        "latency_avg": sample.latency_avg,
        "latency_max": sample.latency_max,
        "crashed_nodes": sample.crashed_nodes,
        "latency_p50": sample.latency_p50,
        "latency_p95": sample.latency_p95,
        "latency_p99": sample.latency_p99,
        "completed": sample.completed,
    }


def _sample_from_dict(data: Dict[str, Any]) -> PerfSample:
    return PerfSample(data["start"], data["end"], data["throughput"],
                      data["latency_min"], data["latency_avg"],
                      data["latency_max"], data["crashed_nodes"],
                      # .get: samples serialized before percentiles existed
                      data.get("latency_p50", 0.0),
                      data.get("latency_p95", 0.0),
                      data.get("latency_p99", 0.0),
                      data.get("completed", 0))


def _finding_to_dict(finding: AttackFinding) -> Dict[str, Any]:
    return {
        "scenario": _record_to_jsonable(finding.scenario.to_record()),
        "baseline": _sample_to_dict(finding.baseline),
        "attacked": _sample_to_dict(finding.attacked),
        "damage": finding.damage,
        "crashes": finding.crashes,
        "found_at": finding.found_at,
        "confirmations": finding.confirmations,
    }


def record_to_jsonable(record: Any) -> Any:
    """Encode a scenario record (nested tuples/bytes) as plain JSON."""
    if isinstance(record, tuple):
        return {"__tuple__": [record_to_jsonable(x) for x in record]}
    if isinstance(record, bytes):
        return {"__bytes__": record.hex()}
    return record


def record_from_jsonable(data: Any) -> Any:
    """Inverse of :func:`record_to_jsonable`."""
    if isinstance(data, dict) and "__tuple__" in data:
        return tuple(record_from_jsonable(x) for x in data["__tuple__"])
    if isinstance(data, dict) and "__bytes__" in data:
        return bytes.fromhex(data["__bytes__"])
    return data


# Backwards-compatible aliases (pre-supervision internal names).
_record_to_jsonable = record_to_jsonable
_record_from_jsonable = record_from_jsonable


def _quarantine_to_dict(q: QuarantinedScenario) -> Dict[str, Any]:
    return {
        "message_type": q.message_type,
        "action_record": (None if q.action_record is None
                          else record_to_jsonable(q.action_record)),
        "reason": q.reason,
        "attempts": q.attempts,
        "verdict": q.verdict,
    }


def _quarantine_from_dict(data: Dict[str, Any]) -> QuarantinedScenario:
    record = data["action_record"]
    return QuarantinedScenario(
        data["message_type"],
        None if record is None else record_from_jsonable(record),
        data["reason"], data["attempts"], data.get("verdict", "inconclusive"))


def _supervisor_to_dict(stats: SupervisorStats) -> Dict[str, Any]:
    return {
        "retries": stats.retries,
        "rebuilds": stats.rebuilds,
        "quarantines": stats.quarantines,
        "watchdog_trips": stats.watchdog_trips,
        "events": [{"kind": e.kind, "op": e.op, "scenario": e.scenario,
                    "error": e.error, "attempt": e.attempt, "at": e.at}
                   for e in stats.events],
    }


def _supervisor_from_dict(data: Dict[str, Any]) -> SupervisorStats:
    return SupervisorStats(
        retries=data.get("retries", 0),
        rebuilds=data.get("rebuilds", 0),
        quarantines=data.get("quarantines", 0),
        watchdog_trips=data.get("watchdog_trips", 0),
        events=[SupervisorEvent(e["kind"], e["op"], e.get("scenario"),
                                e["error"], e["attempt"], e["at"])
                for e in data.get("events", [])])


def _finding_from_dict(data: Dict[str, Any]) -> AttackFinding:
    return AttackFinding(
        scenario=AttackScenario.from_record(
            _record_from_jsonable(data["scenario"])),
        baseline=_sample_from_dict(data["baseline"]),
        attacked=_sample_from_dict(data["attacked"]),
        damage=data["damage"],
        crashes=data["crashes"],
        found_at=data["found_at"],
        confirmations=data["confirmations"],
    )


def report_to_dict(report: SearchReport) -> Dict[str, Any]:
    return {
        "algorithm": report.algorithm,
        "system": report.system,
        "findings": [_finding_to_dict(f) for f in report.findings],
        "weak_selections": [_finding_to_dict(f)
                            for f in report.weak_selections],
        "ledger": dict(report.ledger.by_category),
        "scenarios_evaluated": report.scenarios_evaluated,
        "injection_points": report.injection_points,
        "types_without_injection": list(report.types_without_injection),
        "quarantined": [_quarantine_to_dict(q) for q in report.quarantined],
        "supervisor": _supervisor_to_dict(report.supervisor),
        "telemetry": (None if report.telemetry is None
                      else report.telemetry.to_dict()),
        "crashed_nodes": list(report.crashed_nodes),
        "validation": (None if report.validation is None
                       else report.validation.to_dict()),
    }


def report_from_dict(data: Dict[str, Any]) -> SearchReport:
    report = SearchReport(
        data["algorithm"], data["system"],
        findings=[_finding_from_dict(f) for f in data["findings"]],
        weak_selections=[_finding_from_dict(f)
                         for f in data["weak_selections"]],
        ledger=CostLedger(dict(data["ledger"])),
        scenarios_evaluated=data["scenarios_evaluated"],
        injection_points=data["injection_points"],
        types_without_injection=list(data["types_without_injection"]),
        # .get: reports written before the supervision layer lack these.
        quarantined=[_quarantine_from_dict(q)
                     for q in data.get("quarantined", [])],
        supervisor=_supervisor_from_dict(data.get("supervisor", {})),
        telemetry=(TelemetrySummary.from_dict(data["telemetry"])
                   if data.get("telemetry") else None),
        crashed_nodes=list(data.get("crashed_nodes", [])),
        validation=(ValidationReport.from_dict(data["validation"])
                    if data.get("validation") else None),
    )
    return report


def save_report(report: SearchReport, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report_to_dict(report), fh, indent=2)


def load_report(path: str) -> SearchReport:
    with open(path) as fh:
        return report_from_dict(json.load(fh))


def excluded_scenarios(report: SearchReport) -> set:
    """Exclusion set for the next hunt pass over the same system."""
    return {f.scenario.to_record() for f in report.findings}


# ---------------------------------------------------------------- hunt result

def hunt_result_to_dict(result) -> Dict[str, Any]:
    """Serialize a :class:`~repro.search.hunt.HuntResult` to plain JSON.

    The per-pass event logs are not serialized (they are debugging
    artifacts, exported separately); everything else round-trips.
    """
    return {
        "passes": [report_to_dict(p) for p in result.passes],
        "ledger": dict(result.total_ledger.by_category),
        "quarantined": [_quarantine_to_dict(q) for q in result.quarantined],
        "supervisor": _supervisor_to_dict(result.supervisor),
        "interrupted": result.interrupted,
        "resumed_passes": result.resumed_passes,
        "telemetry": (None if result.telemetry is None
                      else result.telemetry.to_dict()),
        "crashed_nodes": result.crashed_nodes(),
        "validation": (None if result.validation is None
                       else result.validation.to_dict()),
    }


def hunt_result_from_dict(data: Dict[str, Any]):
    from repro.search.hunt import HuntResult
    result = HuntResult(
        passes=[report_from_dict(p) for p in data["passes"]],
        total_ledger=CostLedger(dict(data["ledger"])),
        quarantined=[_quarantine_from_dict(q)
                     for q in data.get("quarantined", [])],
        supervisor=_supervisor_from_dict(data.get("supervisor", {})),
        interrupted=data.get("interrupted", False),
        resumed_passes=data.get("resumed_passes", 0),
        telemetry=(TelemetrySummary.from_dict(data["telemetry"])
                   if data.get("telemetry") else None),
        validation=(ValidationReport.from_dict(data["validation"])
                    if data.get("validation") else None),
    )
    for report in result.passes:
        result.findings.extend(report.findings)
    return result


# ----------------------------------------------------------------- rendering

def _validation_lines(validation: ValidationReport) -> list:
    lines = [
        "",
        "## Robustness validation",
        "",
        f"* environments: {validation.environments} "
        f"(seed {validation.seed}, Δ = {validation.delta:.0%})",
        f"* validation platform time: {validation.platform_time:.1f} s",
        "",
        "| attack | robustness | sustained | ambient noise |",
        "|---|---|---|---|",
    ]
    for result in validation.results:
        sustained = sum(1 for e in result.environments if e.sustained)
        lines.append(
            f"| {result.name} | {result.score:.0%} "
            f"| {sustained}/{len(result.environments)} "
            f"| {result.mean_benign_degradation:.0%} |")
    return lines


def render_markdown(report: SearchReport) -> str:
    lines = [
        f"# {report.algorithm} on {report.system}",
        "",
        f"* attacks found: **{len(report.findings)}**",
        f"* scenarios evaluated: {report.scenarios_evaluated}",
        f"* injection points: {report.injection_points}",
        f"* platform time: {report.total_time:.1f} s "
        f"({report.ledger.describe()})",
        "",
    ]
    if report.types_without_injection:
        lines.append("* no injection point for: "
                     + ", ".join(report.types_without_injection))
        lines.append("")
    if report.findings:
        lines.append("| attack | baseline | attacked | lat p95 (ms) "
                     "| damage | crashes | found at (s) |")
        lines.append("|---|---|---|---|---|---|---|")
        for f in report.findings:
            lines.append(
                f"| {f.name} | {f.baseline.throughput:.1f} "
                f"| {f.attacked.throughput:.1f} "
                f"| {f.attacked.latency_p95 * 1000:.2f} | {f.damage:.0%} "
                f"| {f.crashes} | {f.found_at:.1f} |")
    else:
        lines.append("_No attacks found._")
    if report.crashed_nodes:
        lines.append("")
        lines.append("* crashed nodes: "
                     + ", ".join(f"`{n}`" for n in report.crashed_nodes))
    stats = report.supervisor
    if stats.total_events or report.quarantined:
        lines.append("")
        lines.append("## Supervision")
        lines.append("")
        lines.append(f"* retries: {stats.retries}")
        lines.append(f"* testbed rebuilds: {stats.rebuilds}")
        lines.append(f"* watchdog trips: {stats.watchdog_trips}")
        lines.append(f"* quarantined scenarios: {len(report.quarantined)}")
        for q in report.quarantined:
            lines.append(f"  * {q.describe()}")
    telemetry = report.telemetry
    if telemetry is not None:
        lines.append("")
        lines.append("## Telemetry")
        lines.append("")
        lines.append(f"* spans: {telemetry.total_spans} over "
                     f"{len(telemetry.spans)} kinds")
        if telemetry.spans:
            lines.append("")
            lines.append("| span | count | wall (s) | virtual (s) |")
            lines.append("|---|---|---|---|")
            for name in sorted(telemetry.spans):
                s = telemetry.spans[name]
                lines.append(f"| {name} | {s.count} | {s.wall_total:.3f} "
                             f"| {s.virtual_total:.3f} |")
        if telemetry.counters:
            lines.append("")
            lines.append("| counter | value |")
            lines.append("|---|---|")
            for name in sorted(telemetry.counters):
                lines.append(f"| {name} | {telemetry.counters[name]:g} |")
    if report.worker_health is not None and report.worker_health.eventful:
        # Side channel: shown to humans, never part of the deterministic
        # JSON (worker fate depends on wall-clock scheduling).
        lines.extend(report.worker_health.markdown_lines())
    if report.validation is not None:
        lines.extend(_validation_lines(report.validation))
    return "\n".join(lines)


def render_hunt_markdown(result) -> str:
    """Markdown rendering of a full multi-pass hunt."""
    system = result.passes[0].system if result.passes else "unknown"
    status = " (interrupted)" if result.interrupted else ""
    lines = [
        f"# hunt on {system}{status}",
        "",
        f"* attacks found: **{len(result.findings)}** over "
        f"{len(result.passes)} passes",
        f"* platform time: {result.total_time:.1f} s "
        f"({result.total_ledger.describe()})",
    ]
    crashed = result.crashed_nodes()
    if crashed:
        lines.append("* crashed nodes: "
                     + ", ".join(f"`{n}`" for n in crashed))
    lines.append("")
    if result.findings:
        lines.append("| attack | baseline | attacked | damage | crashes |")
        lines.append("|---|---|---|---|---|")
        for f in result.findings:
            lines.append(
                f"| {f.name} | {f.baseline.throughput:.1f} "
                f"| {f.attacked.throughput:.1f} | {f.damage:.0%} "
                f"| {f.crashes} |")
    else:
        lines.append("_No attacks found._")
    if result.quarantined:
        lines.append("")
        lines.append("## Quarantined scenarios")
        lines.append("")
        for q in result.quarantined:
            lines.append(f"* {q.describe()}")
    if result.worker_health is not None and result.worker_health.eventful:
        lines.extend(result.worker_health.markdown_lines())
    if result.validation is not None:
        lines.extend(_validation_lines(result.validation))
    return "\n".join(lines)
