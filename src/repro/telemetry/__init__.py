"""Platform-wide observability: instruments, spans, exporters, summaries.

The paper's quantitative claims — snapshot save/restore cost (Table II),
search-time breakdowns (Table III), the Δ rule over observed application
performance — all need the *platform* to be measurable, not just the
application.  This package is that measurement substrate:

* :mod:`repro.telemetry.instruments` — counters, gauges, and fixed-bucket
  histograms in an :class:`InstrumentRegistry` that participates in world
  checkpoint/restore (branched executions see consistent pre-branch
  telemetry, mirroring :class:`~repro.metrics.collector.MetricsCollector`);
* :mod:`repro.telemetry.tracer` — nested spans carrying both wall-clock and
  virtual-clock timestamps, recorded by the hot paths (kernel run windows,
  snapshot save/restore, proxy actions, harness phases, search passes);
* :mod:`repro.telemetry.export` — JSONL event stream and Chrome
  ``chrome://tracing`` trace-event output;
* :mod:`repro.telemetry.summary` — per-span-kind totals and histogram
  percentiles embedded in search reports and hunt results;
* :mod:`repro.telemetry.progress` — the live stderr progress line.

Design rule: telemetry **never perturbs the experiment**.  Nothing here
consumes experiment randomness or schedules kernel events; an untraced run
produces byte-identical scenario results to a traced one, and the overhead
when disabled is a single attribute check per instrumentation point.
"""

from repro.telemetry.instruments import (Histogram,  # noqa: F401
                                         InstrumentRegistry)
from repro.telemetry.progress import ProgressLine  # noqa: F401
from repro.telemetry.summary import TelemetrySummary, summarize  # noqa: F401
from repro.telemetry.tracer import (NULL_SPAN, SpanRecord,  # noqa: F401
                                    Tracer, maybe_span)
