"""Node runtime: applications, timers, CPU model, world assembly."""

from repro.runtime.app import Application
from repro.runtime.cpu import CpuCostModel, SerialCpu
from repro.runtime.node import Node
from repro.runtime.world import World

__all__ = ["Application", "CpuCostModel", "SerialCpu", "Node", "World"]
