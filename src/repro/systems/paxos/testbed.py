"""Paxos testbed factory (the classroom deployment)."""

from __future__ import annotations

from typing import Optional

from repro.controller.harness import TestbedFactory, TestbedInstance
from repro.runtime.cpu import CpuCostModel
from repro.systems.common.testbed import build_testbed
from repro.systems.paxos.replica import PaxosClient, PaxosConfig, PaxosReplica
from repro.systems.paxos.schema import PAXOS_CODEC, PAXOS_SCHEMA

PAXOS_ACTIVE_TYPES = ["ClientRequest", "Accept", "Accepted", "Learn",
                      "ClientReply", "Heartbeat"]


def paxos_testbed(malicious_index: int = 0,
                  config: Optional[PaxosConfig] = None,
                  warmup: float = 3.0, window: float = 6.0,
                  message_types=None) -> TestbedFactory:
    """Classroom Multi-Paxos: 3 replicas by default, leader = replica 0."""
    cfg = config or PaxosConfig()
    types = message_types if message_types is not None else (
        list(PAXOS_ACTIVE_TYPES))

    def factory(seed: int) -> TestbedInstance:
        return build_testbed(
            name=f"paxos-malicious-{malicious_index}",
            schema=PAXOS_SCHEMA, codec=PAXOS_CODEC,
            replica_factory=lambda i: PaxosReplica(i, cfg),
            client_factory=lambda i: PaxosClient(i, cfg),
            n_replicas=cfg.n, n_clients=cfg.clients,
            malicious_indices=[malicious_index],
            seed=seed, warmup=warmup, window=window,
            cost_model=CpuCostModel(), message_types=types)

    return factory
