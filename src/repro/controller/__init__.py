"""The Turret controller: branching, measurement, cost accounting."""

from repro.controller.branching import (DistributedSnapshotter,
                                        NetemTimingModel, WorldSnapshot)
from repro.controller.costs import (BOOT, CATEGORIES, EXECUTION,
                                    SNAPSHOT_RESTORE, SNAPSHOT_SAVE,
                                    CostLedger)
from repro.controller.harness import (AttackHarness, InjectionPoint,
                                      TestbedFactory, TestbedInstance)
from repro.controller.monitor import (AttackThreshold, PerfSample,
                                      PerformanceMonitor)

__all__ = [
    "DistributedSnapshotter", "NetemTimingModel", "WorldSnapshot", "BOOT",
    "CATEGORIES", "EXECUTION", "SNAPSHOT_RESTORE", "SNAPSHOT_SAVE",
    "CostLedger", "AttackHarness", "InjectionPoint", "TestbedFactory",
    "TestbedInstance", "AttackThreshold", "PerfSample", "PerformanceMonitor",
]
