"""Lightweight experiment logging.

The platform avoids the stdlib logging module on the hot path: experiments
schedule hundreds of thousands of events and formatting costs dominate.
An :class:`EventLog` collects structured records only when enabled, and each
record carries the *virtual* timestamp (the only time that means anything in
an experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class LogRecord:
    time: float
    component: str
    event: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        extra = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:10.6f}] {self.component}: {self.event} {extra}".rstrip()


class EventLog:
    """Structured, filterable, in-memory log for one experiment."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = False, capacity: int = 200_000,
                 max_records: Optional[int] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.capacity = capacity
        #: ring-buffer cap: once this many records are held, the *oldest*
        #: are evicted to make room (unlike ``capacity``, which drops new
        #: records once full).  ``None`` keeps the historical behaviour.
        #: Forensics asks for full retention (``max_records=None``)
        #: explicitly; long plain hunts can bound memory with a cap.
        self.max_records = max_records
        self.records: List[LogRecord] = []
        self.dropped = 0
        #: number of old records evicted to honour ``max_records``.
        self.truncated = 0

    def attach_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def emit(self, component: str, event: str, **details: Any) -> None:
        if not self.enabled:
            return
        cap = self.max_records
        if cap is not None and cap > 0:
            if len(self.records) >= cap:
                # Evict in chunks so the O(n) list shift amortises; the
                # records list stays a plain list (callers index/compare
                # it directly).
                chunk = max(1, cap // 8)
                del self.records[:chunk]
                self.truncated += chunk
        elif len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(LogRecord(self._clock(), component, event, details))

    def select(self, component: Optional[str] = None,
               event: Optional[str] = None) -> List[LogRecord]:
        out = self.records
        if component is not None:
            out = [r for r in out if r.component == component]
        if event is not None:
            out = [r for r in out if r.event == event]
        return list(out)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
        self.truncated = 0
