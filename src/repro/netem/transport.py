"""Host transports: UDP and TCP message services.

The systems under test implement their protocols at the application level
over either UDP (PBFT's implementation) or TCP.  Both transports here are
message-oriented facades over the emulator:

* **UDP** — fire and forget; a message becomes datagram fragments and is
  delivered if all fragments survive.
* **TCP** — connection setup costs one round trip before the first message
  of a flow flows; packets lost to device-queue overflow or to environmental
  faults (bursty link loss, corruption, down links, partitions — see
  :mod:`repro.faults`) are retransmitted after an RTO.  Because the
  paper's malicious proxy *terminates* TCP at the emulated application layer
  (Section IV-B), a message dropped or delayed by the proxy does not stall
  the rest of the stream — delivery order is the proxy's release order.

Both are fully serializable; flow state participates in emulator save/load
via :meth:`HostTransport.save_state`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.common.errors import TransportError
from repro.common.ids import NodeId
from repro.netem.emulator import NetworkEmulator
from repro.netem.packets import MessageEnvelope

UDP = "udp"
TCP = "tcp"

MessageHandler = Callable[[NodeId, bytes], None]


class HostTransport:
    """Per-host transport endpoint multiplexing UDP and TCP services."""

    #: one round trip of handshake before the first byte of a new TCP flow
    TCP_HANDSHAKE_RTTS = 1.0

    def __init__(self, emulator: NetworkEmulator, node_id: NodeId) -> None:
        self.emulator = emulator
        self.node_id = node_id
        self._handlers: Dict[str, MessageHandler] = {}
        self._tcp_established: Dict[str, bool] = {}
        emulator.set_receiver(node_id, self._on_envelope)

    # ------------------------------------------------------------------ bind

    def bind(self, transport: str, handler: MessageHandler) -> None:
        if transport not in (UDP, TCP):
            raise TransportError(f"unknown transport {transport!r}")
        self._handlers[transport] = handler

    # ------------------------------------------------------------------ send

    def send(self, dst: NodeId, data: bytes, transport: str = UDP) -> int:
        if transport == UDP:
            return self.emulator.transmit(self.node_id, dst, UDP, data)
        if transport == TCP:
            key = self._flow_key(dst)
            delay = 0.0
            if not self._tcp_established.get(key, False):
                path = self.emulator.topology.path(self.node_id, dst)
                delay = self.TCP_HANDSHAKE_RTTS * 2 * path.delay
                self._tcp_established[key] = True
            return self.emulator.transmit(self.node_id, dst, TCP, data,
                                          delay=delay)
        raise TransportError(f"unknown transport {transport!r}")

    def _flow_key(self, dst: NodeId) -> str:
        return f"{dst.role}:{dst.index}"

    def reset_flows(self) -> None:
        """Forget all established TCP flows (the host crashed or rebooted).

        The next message on each flow pays the handshake round trip again,
        as a restarted process re-connecting would.
        """
        self._tcp_established.clear()

    # --------------------------------------------------------------- receive

    def _on_envelope(self, envelope: MessageEnvelope) -> None:
        handler = self._handlers.get(envelope.transport)
        if handler is None:
            return  # no bound service: the datagram is silently discarded
        handler(envelope.src, envelope.payload)

    # -------------------------------------------------------------- snapshot

    def save_state(self) -> dict:
        return {"tcp_established": dict(self._tcp_established)}

    def load_state(self, state: dict) -> None:
        self._tcp_established = dict(state["tcp_established"])
