"""Tests for the UDP/TCP host transports."""

import pytest

from repro.common.errors import TransportError
from repro.common.ids import replica
from repro.netem.emulator import NetworkEmulator
from repro.netem.topology import LanTopology
from repro.netem.transport import TCP, UDP, HostTransport
from repro.sim.kernel import SimKernel

A, B = replica(0), replica(1)


def build():
    kernel = SimKernel()
    emulator = NetworkEmulator(kernel, LanTopology())
    emulator.register_host(A)
    emulator.register_host(B)
    ta = HostTransport(emulator, A)
    tb = HostTransport(emulator, B)
    return kernel, emulator, ta, tb


class TestUdp:
    def test_udp_delivery(self):
        kernel, __, ta, tb = build()
        got = []
        tb.bind(UDP, lambda src, data: got.append((src, data)))
        ta.send(B, b"dgram")
        kernel.run_until(0.1)
        assert got == [(A, b"dgram")]

    def test_unbound_service_discards(self):
        kernel, emulator, ta, tb = build()
        ta.send(B, b"lost")  # B never bound UDP
        kernel.run_until(0.1)
        assert emulator.stats.messages_delivered == 1  # delivered, discarded

    def test_unknown_transport_rejected(self):
        __, __, ta, __ = build()
        with pytest.raises(TransportError):
            ta.send(B, b"x", transport="sctp")
        with pytest.raises(TransportError):
            ta.bind("sctp", lambda s, d: None)


class TestTcp:
    def test_tcp_delivery(self):
        kernel, __, ta, tb = build()
        got = []
        tb.bind(TCP, lambda src, data: got.append(data))
        ta.send(B, b"stream", transport=TCP)
        kernel.run_until(0.1)
        assert got == [b"stream"]

    def test_first_message_pays_handshake(self):
        kernel, __, ta, tb = build()
        times = []
        tb.bind(TCP, lambda src, data: times.append(kernel.now))
        ta.send(B, b"first", transport=TCP)
        kernel.run_until(0.1)
        first_latency = times[0]

        # a second message on the warm connection is faster
        ta.send(B, b"second", transport=TCP)
        kernel.run_until(0.2)
        second_latency = times[1] - 0.1
        assert second_latency < first_latency

    def test_handshake_per_destination(self):
        kernel, emulator, ta, __ = build()
        C = replica(2)
        emulator.register_host(C)
        tc = HostTransport(emulator, C)
        got = []
        tc.bind(TCP, lambda src, data: got.append(data))
        ta.send(C, b"x", transport=TCP)
        kernel.run_until(0.1)
        assert got == [b"x"]

    def test_flow_state_save_load(self):
        kernel, __, ta, tb = build()
        tb.bind(TCP, lambda src, data: None)
        ta.send(B, b"x", transport=TCP)
        state = ta.save_state()
        other_state = dict(state)
        ta.load_state(other_state)
        assert ta.save_state() == state

    def test_tcp_retransmits_on_device_overflow(self):
        kernel = SimKernel()
        emulator = NetworkEmulator(kernel, LanTopology())
        emulator.register_host(A)
        emulator.register_host(B)
        port = emulator.port_stats(A)
        port.device.queue_capacity = 2
        ta = HostTransport(emulator, A)
        tb = HostTransport(emulator, B)
        got = []
        tb.bind(TCP, lambda src, data: got.append(data))
        for i in range(10):
            ta.send(B, bytes([i]), transport=TCP)
        kernel.run_until(5.0)
        assert sorted(got) == [bytes([i]) for i in range(10)]
        assert emulator.stats.packets_dropped_overflow > 0

    def test_udp_overflow_loses_messages(self):
        kernel = SimKernel()
        emulator = NetworkEmulator(kernel, LanTopology())
        emulator.register_host(A)
        emulator.register_host(B)
        emulator.port_stats(A).device.queue_capacity = 2
        ta = HostTransport(emulator, A)
        tb = HostTransport(emulator, B)
        got = []
        tb.bind(UDP, lambda src, data: got.append(data))
        for i in range(10):
            ta.send(B, bytes([i]))
        kernel.run_until(5.0)
        assert len(got) < 10
