"""Tests for the node runtime: timers, CPU, crash containment, snapshots."""

import pytest

from repro.common.errors import SegmentationFault
from repro.common.ids import replica
from repro.common.rng import RngRegistry
from repro.netem.emulator import NetworkEmulator
from repro.netem.topology import LanTopology
from repro.runtime.app import Application
from repro.runtime.cpu import CpuCostModel, SerialCpu
from repro.runtime.node import Node
from repro.sim.kernel import SimKernel
from repro.wire.codec import Message, ProtocolCodec
from repro.wire.schema import ProtocolSchema, make_message

SCHEMA = ProtocolSchema("rt", (
    make_message("Ping", 1, [("n", "u32")]),
    make_message("Boom", 2, [("size", "i32")]),
))
CODEC = ProtocolCodec(SCHEMA)


class EchoApp(Application):
    def __init__(self):
        super().__init__()
        self.received = []
        self.timer_fires = []
        self.started = False

    def on_start(self):
        self.started = True

    def on_message(self, src, message):
        self.received.append((src, message.type_name, dict(message.fields)))
        if message.type_name == "Boom" and message["size"] < 0:
            raise SegmentationFault("negative allocation")

    def on_timer(self, name):
        self.timer_fires.append((name, self.now()))

    def snapshot_state(self):
        return {"received": list(self.received),
                "timer_fires": list(self.timer_fires),
                "started": self.started}

    def restore_state(self, state):
        self.received = list(state["received"])
        self.timer_fires = list(state["timer_fires"])
        self.started = state["started"]


def build(n=2, cost_model=None):
    kernel = SimKernel()
    emulator = NetworkEmulator(kernel, LanTopology())
    rng = RngRegistry(0)
    nodes, apps = [], []
    for i in range(n):
        node_id = replica(i)
        emulator.register_host(node_id)
        node = Node(node_id, kernel, emulator, CODEC,
                    rng.stream(f"node{i}"), cost_model=cost_model)
        app = EchoApp()
        node.attach(app)
        nodes.append(node)
        apps.append(app)
    for node in nodes:
        node.peers = [n.node_id for n in nodes]
    return kernel, nodes, apps


class TestMessaging:
    def test_send_and_dispatch(self):
        kernel, nodes, apps = build()
        nodes[0].send(replica(1), Message("Ping", {"n": 7}))
        kernel.run_until(0.1)
        assert apps[1].received == [(replica(0), "Ping", {"n": 7})]

    def test_broadcast_excludes_self(self):
        kernel, nodes, apps = build(3)
        nodes[0].broadcast(Message("Ping", {"n": 1}))
        kernel.run_until(0.1)
        assert apps[0].received == []
        assert len(apps[1].received) == 1
        assert len(apps[2].received) == 1

    def test_cpu_cost_delays_dispatch(self):
        slow = CpuCostModel(base_cost=0.050)
        kernel, nodes, apps = build(cost_model=slow)
        nodes[0].send(replica(1), Message("Ping", {"n": 1}))
        kernel.run_until(0.02)
        assert apps[1].received == []   # still being processed
        kernel.run_until(0.2)
        assert len(apps[1].received) == 1

    def test_messages_processed_serially(self):
        slow = CpuCostModel(base_cost=0.010)
        kernel, nodes, apps = build(cost_model=slow)
        for i in range(3):
            nodes[0].send(replica(1), Message("Ping", {"n": i}))
        kernel.run_until(1.0)
        assert nodes[1].cpu.messages_processed == 3
        assert [m[2]["n"] for m in apps[1].received] == [0, 1, 2]

    def test_type_costs_charged(self):
        kernel, nodes, apps = build()
        nodes[1].type_costs["Ping"] = 0.5
        nodes[0].send(replica(1), Message("Ping", {"n": 1}))
        kernel.run_until(0.3)
        assert apps[1].received == []
        kernel.run_until(1.0)
        assert len(apps[1].received) == 1

    def test_malformed_payload_dropped(self):
        kernel, nodes, apps = build()
        nodes[0].transport.send(replica(1), b"\x01\x00garbage")
        kernel.run_until(0.1)
        assert apps[1].received == []
        assert nodes[1].malformed_dropped == 1

    def test_ingress_dedup(self):
        kernel, nodes, apps = build()
        nodes[1].ingress_dedup = True
        for __ in range(5):
            nodes[0].send(replica(1), Message("Ping", {"n": 42}))
        kernel.run_until(0.1)
        assert len(apps[1].received) == 1
        assert nodes[1].duplicates_dropped == 4


class TestTimers:
    def test_one_shot_timer(self):
        kernel, nodes, apps = build()
        nodes[0].start()
        nodes[0].set_timer("once", 0.5)
        kernel.run_until(1.0)
        assert [f[0] for f in apps[0].timer_fires] == ["once"]
        assert not nodes[0].timer_pending("once")

    def test_periodic_timer(self):
        kernel, nodes, apps = build()
        nodes[0].set_timer("tick", 0.2, periodic=True)
        kernel.run_until(1.0)
        assert len(apps[0].timer_fires) == 5

    def test_cancel_timer(self):
        kernel, nodes, apps = build()
        nodes[0].set_timer("x", 0.5)
        nodes[0].cancel_timer("x")
        kernel.run_until(1.0)
        assert apps[0].timer_fires == []

    def test_reset_timer_replaces(self):
        kernel, nodes, apps = build()
        nodes[0].set_timer("x", 0.5)
        nodes[0].set_timer("x", 0.9)
        kernel.run_until(1.0)
        assert len(apps[0].timer_fires) == 1
        assert apps[0].timer_fires[0][1] == pytest.approx(0.9)


class TestCrash:
    def test_fault_marks_crashed(self):
        kernel, nodes, apps = build()
        nodes[0].send(replica(1), Message("Boom", {"size": -1}))
        kernel.run_until(0.1)
        assert nodes[1].crashed
        assert "SegmentationFault" in nodes[1].crash_reason

    def test_crashed_node_ignores_everything(self):
        kernel, nodes, apps = build()
        nodes[1].set_timer("tick", 0.2, periodic=True)
        nodes[0].send(replica(1), Message("Boom", {"size": -1}))
        kernel.run_until(0.1)
        count = len(apps[1].timer_fires)
        nodes[0].send(replica(1), Message("Ping", {"n": 1}))
        kernel.run_until(1.0)
        assert len(apps[1].timer_fires) == count
        assert all(m[1] != "Ping" for m in apps[1].received)

    def test_crashed_node_does_not_send(self):
        kernel, nodes, apps = build()
        nodes[0].send(replica(1), Message("Boom", {"size": -1}))
        kernel.run_until(0.1)
        nodes[1].send(replica(0), Message("Ping", {"n": 1}))
        kernel.run_until(0.5)
        assert apps[0].received == []


class TestSnapshot:
    def test_roundtrip_preserves_app_and_timers(self):
        kernel, nodes, apps = build()
        nodes[0].set_timer("tick", 0.3, periodic=True)
        nodes[0].send(replica(1), Message("Ping", {"n": 5}))
        kernel.run_until(0.5)
        state = nodes[0].snapshot_state()
        fires_at_snap = list(apps[0].timer_fires)
        kernel.run_until(1.4)
        nodes[0].restore_state(state)
        assert apps[0].timer_fires == fires_at_snap
        kernel.run_until(2.0)
        # periodic timer resumed after restore
        assert len(apps[0].timer_fires) > len(fires_at_snap)

    def test_pending_cpu_work_restored(self):
        slow = CpuCostModel(base_cost=0.2)
        kernel, nodes, apps = build(cost_model=slow)
        nodes[0].send(replica(1), Message("Ping", {"n": 9}))
        kernel.run_until(0.05)  # in flight: delivered but not processed
        state = nodes[1].snapshot_state()
        kernel.run_until(1.0)
        assert len(apps[1].received) == 1
        apps[1].received.clear()
        nodes[1].restore_state(state)
        kernel.run_until(2.0)
        assert len(apps[1].received) == 1

    def test_crashed_state_survives_snapshot(self):
        kernel, nodes, apps = build()
        nodes[0].send(replica(1), Message("Boom", {"size": -1}))
        kernel.run_until(0.1)
        state = nodes[1].snapshot_state()
        nodes[1].restore_state(state)
        assert nodes[1].crashed


class TestSerialCpu:
    def test_costs_accumulate(self):
        cpu = SerialCpu(CpuCostModel(base_cost=0.01, per_byte_cost=0.0))
        first = cpu.enqueue(0.0, 100)
        second = cpu.enqueue(0.0, 100)
        assert first == pytest.approx(0.01)
        assert second == pytest.approx(0.02)

    def test_idle_gap_not_charged(self):
        cpu = SerialCpu(CpuCostModel(base_cost=0.01, per_byte_cost=0.0))
        cpu.enqueue(0.0, 10)
        done = cpu.enqueue(5.0, 10)
        assert done == pytest.approx(5.01)

    def test_verify_cost(self):
        with_sig = CpuCostModel(verify_signatures=True)
        without = CpuCostModel(verify_signatures=False)
        assert with_sig.cost_of(100) > without.cost_of(100)

    def test_charge_without_dispatch(self):
        cpu = SerialCpu(CpuCostModel(base_cost=0.01))
        cpu.charge(0.0, 0.5)
        assert cpu.busy_until == pytest.approx(0.5)
        assert cpu.messages_processed == 0

    def test_save_load(self):
        cpu = SerialCpu(CpuCostModel(base_cost=0.02))
        cpu.enqueue(0.0, 10)
        state = cpu.save_state()
        other = SerialCpu()
        other.load_state(state)
        assert other.busy_until == cpu.busy_until
        assert other.cost_model.base_cost == 0.02

    def test_utilization(self):
        cpu = SerialCpu(CpuCostModel(base_cost=0.5, per_byte_cost=0.0))
        cpu.enqueue(0.0, 1)
        assert cpu.utilization(1.0) == pytest.approx(0.5)
        assert cpu.utilization(0.0) == 0.0
