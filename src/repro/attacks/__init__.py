"""Malicious actions, lying strategies, action space, and the proxy."""

from repro.attacks.actions import (ActionContext, AttackScenario, DelayAction,
                                   DivertAction, DropAction, DuplicateAction,
                                   LyingAction, MaliciousAction)
from repro.attacks.proxy import INJECTION_POINT, MaliciousProxy
from repro.attacks.space import ActionSpace, ActionSpaceConfig
from repro.attacks.strategies import (ALL_STRATEGIES, LyingStrategy,
                                      default_strategies)

__all__ = [
    "ActionContext", "AttackScenario", "DelayAction", "DivertAction",
    "DropAction", "DuplicateAction", "LyingAction", "MaliciousAction",
    "INJECTION_POINT", "MaliciousProxy", "ActionSpace", "ActionSpaceConfig",
    "ALL_STRATEGIES", "LyingStrategy", "default_strategies",
]
