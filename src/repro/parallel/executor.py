"""ScenarioExecutor: shard a pass across workers, merge deterministically.

The executor owns a pool of persistent workers (forked processes when the
platform supports ``fork`` and more than one worker was requested; in-process
probers otherwise — testbed factories are closures, so they can only cross a
process boundary by fork inheritance, never by pickling).  Work units are
message types for weighted/greedy and scenarios for brute force, pinned to
workers round-robin in first-seen order so a type keeps hitting the same
worker's caches across hunt passes.

``run_pass`` returns a :class:`~repro.search.results.SearchReport` that is
byte-identical to what the serial algorithm would produce — same findings,
same ledger, same supervision events — because the merge replays recorded
traces in serial order (see :mod:`repro.parallel.merge`).  What the workers
actually spent is reported separately through :meth:`worker_breakdown`.

The pool is **self-healing** (see :mod:`repro.parallel.health`): result
collection polls with per-task deadlines instead of blocking, a crashed or
hung worker is killed, reaped, and respawned with its task replayed — and
because workers are pure functions of ``(factory, seed, params)``, the
replayed task records the same traces the dead worker would have, so the
byte-identity contract survives worker death.  Worker slots have a bounded
restart budget; an exhausted slot's shard moves to the survivors, a task
that keeps killing workers is quarantined through the supervision ledger,
and a fully collapsed pool degrades to the in-process prober rather than
aborting the hunt.

Deterministic platform fault injection (``FaultPlan``) is deliberately not
supported: its private RNG stream is sequence-dependent, so sharding would
change which operations fault.  Environmental ``FaultSchedule`` chaos is
fine — it is armed per-world before warmup and each worker's world perturbs
identically to the serial one.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Dict, List, Optional, Sequence, Set

from repro.attacks.actions import AttackScenario
from repro.attacks.space import ActionSpace, ActionSpaceConfig
from repro.common.errors import ConfigError, SearchError
from repro.controller.costs import CostLedger, WorkerAttribution
from repro.controller.monitor import AttackThreshold
from repro.parallel.health import (FAIL_CRASH, FAIL_TIMEOUT, HealthMonitor,
                                   HealthPolicy, WorkerHealthReport,
                                   describe_task, quarantined_return,
                                   task_key, task_units)
from repro.parallel.merge import merge_brute, merge_greedy, merge_weighted
from repro.parallel.worker import (ProbeParams, ScenarioProbe, StartupProbe,
                                   TypeProbe, WorkerProber, WorkerReturn,
                                   worker_main)
from repro.search.results import SearchReport
from repro.search.weighted import ClusterWeights
from repro.telemetry.summary import summarize
from repro.telemetry.tracer import Tracer, maybe_span

ALGORITHMS = ("weighted", "greedy", "brute")


@dataclass
class _Pending:
    """One in-flight (or queued) task and where its results belong."""

    task: tuple
    #: the worker slot the task was sharded to; results are recorded under
    #: this slot no matter which worker finally executes the task
    slot: int
    key: tuple
    units: int
    #: absolute ``time.monotonic`` deadline; None = no hang detection
    deadline: Optional[float] = None


@dataclass
class _PoolState:
    """Mutable state of one ``_dispatch`` round."""

    #: executing worker -> its current task
    pending: Dict[int, _Pending] = field(default_factory=dict)
    #: executing worker -> tasks waiting for it to free up (reassignments)
    queue: Dict[int, List[_Pending]] = field(default_factory=dict)
    #: original slot -> result
    returns: Dict[int, WorkerReturn] = field(default_factory=dict)
    #: tasks to run in-process after the pool collapsed
    backlog: List[_Pending] = field(default_factory=list)
    #: slot order in which results are journaled to the run store; a slot
    #: flushes only once every earlier slot has returned, so the journal's
    #: record order is deterministic whatever order workers finish in
    flush_order: List[int] = field(default_factory=list)
    #: slots whose result is synthetic (a quarantined poison task), never
    #: journaled — replaying it would poison a clean resume
    synthetic: set = field(default_factory=set)


class ScenarioExecutor:
    """Shards a pass's work units across a persistent worker pool."""

    def __init__(self, factory, seed: int = 0, algorithm: str = "weighted",
                 workers: int = 2,
                 threshold: Optional[AttackThreshold] = None,
                 space_config: Optional[ActionSpaceConfig] = None,
                 max_wait: Optional[float] = None,
                 shared_pages: bool = True,
                 delta_snapshots: bool = False,
                 fault_schedule=None,
                 watchdog_limit: Optional[int] = None,
                 max_retries: int = 2,
                 rounds: int = 3, confirmations: int = 2,
                 tracer: Optional[Tracer] = None,
                 log_events: bool = False,
                 health: Optional[HealthPolicy] = None,
                 store=None,
                 snapshot_budget: Optional[int] = None) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if algorithm not in ALGORITHMS:
            raise ConfigError(f"unknown algorithm {algorithm!r}; "
                              f"expected one of {ALGORITHMS}")
        self.factory = factory
        self.seed = seed
        self.algorithm = algorithm
        self.workers = workers
        self.threshold = threshold or AttackThreshold()
        self.rounds = rounds
        self.confirmations = confirmations
        self.tracer = tracer
        self.policy = health or HealthPolicy()
        #: durable :class:`~repro.store.runstore.RunStore` (duck-typed):
        #: journal-covered types are answered from disk, fresh probes are
        #: journaled; None = no durability
        self.store = store
        #: an unbooted instance: the schema/name/search-type oracle the
        #: serial algorithm reads off its own harness
        self._instance = factory(seed)
        self._space = ActionSpace(self._instance.schema, space_config)
        self.params = ProbeParams(
            algorithm=algorithm, threshold=self.threshold,
            space_config=space_config, max_wait=max_wait,
            shared_pages=shared_pages, delta_snapshots=delta_snapshots,
            fault_schedule=fault_schedule, watchdog_limit=watchdog_limit,
            max_retries=max_retries,
            trace=tracer is not None and tracer.enabled,
            log_events=log_events,
            snapshot_budget=snapshot_budget)
        start_methods = multiprocessing.get_all_start_methods()
        self._use_fork = workers > 1 and "fork" in start_methods
        self._health = HealthMonitor(self.policy, workers, tracer=tracer)
        self._degraded = False
        self._reassigned = 0
        #: the first startup trace ever seen; every worker — including
        #: respawned replacements in later passes — must replay it bitwise.
        #: A store with a journaled startup seeds the reference, so a
        #: resumed hunt's live boots are checked against the original's.
        self._startup_reference: Optional[StartupProbe] = None
        if store is not None and store.startup is not None:
            self._startup_reference = store.startup
        self._budget_counters: Dict[int, Dict[str, float]] = {}
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._conns: Dict[int, connection.Connection] = {}
        self._inline: Dict[int, WorkerProber] = {}
        #: work unit -> worker id, assigned round-robin in first-seen order
        #: (stable across passes, so caches stay hot)
        self._pins: Dict[object, int] = {}
        self._attribution: Dict[int, WorkerAttribution] = {}
        self._log_records: list = []

    # --------------------------------------------------------------- plumbing

    @property
    def system(self) -> str:
        return self._instance.name

    def _pin(self, unit) -> int:
        worker = self._pins.get(unit)
        if worker is not None and not self._health.is_retired(worker):
            return worker
        candidates = [w for w in range(self.workers)
                      if not self._health.is_retired(w)]
        if not candidates:
            candidates = [0]  # collapsed pool: everything runs in-process
        worker = candidates[len(self._pins) % len(candidates)]
        self._pins[unit] = worker
        return worker

    def _repin(self, task: tuple, target: int) -> None:
        """Pin a reassigned task's units to their new worker so later
        passes shard them there directly."""
        for unit in task[1]:
            self._pins[unit] = target

    def _lead_slot(self) -> int:
        """The slot that carries shard-independent work (startup boot for
        empty passes, the brute-force baseline): the lowest non-retired
        worker."""
        for worker in range(self.workers):
            if not self._health.is_retired(worker):
                return worker
        return 0

    def _spawn(self, worker: int) -> None:
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=worker_main,
            args=(child_conn, worker, self.factory, self.seed,
                  self.params),
            daemon=True)
        process.start()
        child_conn.close()
        self._procs[worker] = process
        self._conns[worker] = parent_conn
        self._health.record_spawn(worker)

    def _ensure_worker(self, worker: int) -> None:
        if self._use_fork:
            if worker not in self._procs:
                self._spawn(worker)
        elif worker not in self._inline:
            prober = WorkerProber(worker, self.factory, self.seed,
                                  self.params)
            if self.store is not None:
                # In-process probers journal each fresh probe directly (the
                # finest durability granularity) and start pre-seeded, so a
                # partially-journaled type resumes mid-walk.  Forked workers
                # are neither: they re-probe their shard fresh — identical
                # traces, by determinism — and the parent journals their
                # returns (see _flush_journal), because two processes
                # appending to one journal would interleave records.
                self.store.seed_prober(prober)
                prober.probe_sink = self.store
            self._inline[worker] = prober

    # ------------------------------------------------------------- dispatch

    def _dispatch(self, tasks: Dict[int, tuple]) -> Dict[int, WorkerReturn]:
        """Send one task per worker; gather results, healing failures."""
        if self._use_fork:
            returns = self._dispatch_fork(tasks)
        else:
            returns = {}
            for worker in sorted(tasks):
                self._ensure_worker(worker)
                returns[worker] = self._run_inline(worker, tasks[worker])
        self._absorb(returns)
        return returns

    def _run_inline(self, worker: int, task: tuple) -> WorkerReturn:
        self._ensure_worker(worker)
        prober = self._inline[worker]
        started = time.perf_counter()
        if task[0] == "probe":
            startup, probes = prober.probe_types(task[1], task[2])
            payload = prober.package(startup=startup, types=probes)
        else:
            baseline, probes = prober.probe_brute(task[1], task[2])
            payload = prober.package(baseline=baseline, scenarios=probes)
        payload.wall_seconds = time.perf_counter() - started
        return payload

    def _dispatch_fork(self, tasks: Dict[int, tuple]
                       ) -> Dict[int, WorkerReturn]:
        state = _PoolState()
        state.flush_order = sorted(tasks)
        for worker in sorted(tasks):
            task = tasks[worker]
            self._submit(worker, _Pending(task=task, slot=worker,
                                          key=task_key(task),
                                          units=task_units(task)), state)
        while state.pending:
            self._collect_once(state)
        for items in state.queue.values():  # pragma: no cover - defensive
            state.backlog.extend(items)
        state.queue.clear()
        # A collapsed pool finishes the pass in-process: same factory, same
        # seed, same recorded traces — the report stays serial-identical.
        for item in sorted(state.backlog, key=lambda entry: entry.slot):
            self._record(item.slot, self._run_inline(item.slot, item.task),
                         state)
        return state.returns

    def _submit(self, worker: int, entry: _Pending, state: _PoolState) -> None:
        if self._degraded:
            state.backlog.append(entry)
            return
        if worker in state.pending:
            state.queue.setdefault(worker, []).append(entry)
            return
        self._ensure_worker(worker)
        budget = self.policy.deadline_for(entry.units)
        entry.deadline = (time.monotonic() + budget
                          if budget is not None else None)
        try:
            self._conns[worker].send(entry.task)
        except (BrokenPipeError, OSError):
            # The worker died *between* tasks (its last task succeeded, so
            # nothing counts against the poison budget): route through the
            # same failure path a mid-task death takes.
            state.queue.setdefault(worker, []).insert(0, entry)
            self._fail_worker(worker, FAIL_CRASH, "pipe closed on task send",
                              None, state)
            return
        state.pending[worker] = entry

    def _poll_timeout(self, state: _PoolState) -> float:
        timeout = self.policy.poll_interval
        now = time.monotonic()
        for entry in state.pending.values():
            if entry.deadline is not None:
                timeout = min(timeout, entry.deadline - now)
        return max(0.01, timeout)

    def _collect_once(self, state: _PoolState) -> None:
        for worker in list(state.pending):
            if worker not in self._conns:  # pragma: no cover - defensive
                self._fail_worker(worker, FAIL_CRASH, "connection lost",
                                  state.pending.pop(worker), state)
                return
        conns = {self._conns[w]: w for w in state.pending}
        ready = (connection.wait(list(conns),
                                 timeout=self._poll_timeout(state))
                 if conns else [])
        for conn in ready:
            worker = conns[conn]
            if worker not in state.pending:
                continue  # a failure path already consumed this worker
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                self._fail_worker(worker, FAIL_CRASH, "pipe closed mid-task",
                                  state.pending.pop(worker), state)
                continue
            if status != "ok":
                raise SearchError(
                    f"parallel worker {worker} failed:\n{payload}")
            entry = state.pending.pop(worker)
            self._record(entry.slot, payload, state)
            queued = state.queue.get(worker)
            if queued:
                self._submit(worker, queued.pop(0), state)
                if not state.queue.get(worker):
                    state.queue.pop(worker, None)
        now = time.monotonic()
        for worker in list(state.pending):
            entry = state.pending[worker]
            if entry.deadline is not None and now > entry.deadline:
                budget = self.policy.deadline_for(entry.units) or 0.0
                self._fail_worker(
                    worker, FAIL_TIMEOUT,
                    f"deadline expired ({budget:.1f}s for "
                    f"{entry.units} units)",
                    state.pending.pop(worker), state)

    def _record(self, slot: int, payload: WorkerReturn, state: _PoolState,
                synthetic: bool = False) -> None:
        if slot in state.returns:  # pragma: no cover - defensive
            raise SearchError(f"duplicate result for worker slot {slot}")
        state.returns[slot] = payload
        if synthetic:
            state.synthetic.add(slot)
        self._flush_journal(state)

    def _flush_journal(self, state: _PoolState) -> None:
        """Journal finished slots' probes in slot order, as far as results
        have arrived contiguously.  Waiting for the prefix — instead of
        journaling on arrival — keeps the journal's byte content a pure
        function of the hunt, whatever order the pool finishes in; a kill
        mid-pass still persists every already-flushed slot."""
        if self.store is None:
            return
        while state.flush_order and state.flush_order[0] in state.returns:
            slot = state.flush_order.pop(0)
            if slot in state.synthetic:
                continue
            ret = state.returns[slot]
            if ret.startup is not None:
                self.store.journal_startup(ret.startup)
            for probe in ret.types:
                self.store.journal_type(probe)

    # ------------------------------------------------------------- recovery

    def _reap(self, worker: int, kind: str, detail: str) -> None:
        """Kill and reap a failed worker; close its pipe; record its fate."""
        process = self._procs.pop(worker, None)
        conn = self._conns.pop(worker, None)
        with maybe_span(self.tracer, "executor.worker.kill",
                        worker=worker, kind=kind):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
            if process is not None:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
                    if process.is_alive():  # pragma: no cover - defensive
                        process.kill()
                        process.join(timeout=5)
                else:
                    process.join(timeout=5)
                try:
                    process.close()
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._health.record_failure(worker, kind, detail)

    def _fail_worker(self, worker: int, kind: str, detail: str,
                     entry: Optional[_Pending], state: _PoolState) -> None:
        """Kill and reap a failed worker, then recover its work: quarantine
        a poison task, replay on a respawn, reassign to a survivor, or
        degrade to in-process execution."""
        self._reap(worker, kind, detail)
        redo: List[_Pending] = []
        if entry is not None:
            crashes = self._health.note_task_crash(entry.key)
            if self._health.is_poison(entry.key):
                label = describe_task(entry.task)
                self._health.record_quarantine(label, crashes)
                self._record(entry.slot, quarantined_return(
                    worker, entry.task,
                    f"poison task killed {crashes} workers "
                    f"(last {kind}: {detail})", crashes), state,
                    synthetic=True)
            else:
                redo.append(entry)
        redo.extend(state.queue.pop(worker, ()))
        if not redo:
            if not self._health.allow_restart(worker):
                self._health.retire(worker)
            return
        if self._health.allow_restart(worker):
            delay = self._health.record_restart(worker)
            if delay > 0:
                time.sleep(delay)
            with maybe_span(self.tracer, "executor.worker.respawn",
                            worker=worker):
                self._spawn(worker)
            for item in redo:
                self._health.record_replay(worker, item.units)
                self._submit(worker, item, state)
            return
        self._health.retire(worker)
        for item in redo:
            self._reassign(worker, item, state)

    def _reassign(self, worker: int, item: _Pending,
                  state: _PoolState) -> None:
        if self._degraded:
            state.backlog.append(item)
            return
        survivors = [w for w in sorted(self._procs)
                     if not self._health.is_retired(w)]
        if not survivors:
            self._collapse([item], state)
            return
        target = survivors[(worker + 1 + self._reassigned) % len(survivors)]
        self._reassigned += 1
        self._health.record_reassignment(worker, target, item.units)
        self._repin(item.task, target)
        self._submit(target, item, state)

    def _collapse(self, items: List[_Pending], state: _PoolState) -> None:
        if not self.policy.degrade:
            raise SearchError(
                "parallel worker pool collapsed: every worker exhausted its "
                "restart budget; raise --worker-retries, drop --no-degrade "
                "to fall back to in-process execution, or run serially")
        if not self._degraded:
            self._health.record_degraded()
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.instant("executor.pool.degrade")
            self._degraded = True
            self._use_fork = False
        state.backlog.extend(items)

    # ------------------------------------------------------------ accounting

    def _absorb(self, returns: Dict[int, WorkerReturn]) -> None:
        """Fold worker accounting, spans, and log records into the parent.

        Attribution is keyed by the worker that *executed* the task
        (``ret.worker``), which differs from the shard's slot after a
        reassignment; the worker's cumulative ledger only ever grows, so
        the larger snapshot wins when one worker returned twice.
        """
        for __, ret in sorted(returns.items()):
            attribution = self._attribution.setdefault(
                ret.worker, WorkerAttribution(worker=ret.worker))
            ledger = CostLedger(dict(ret.by_category))
            if ledger.total() >= attribution.ledger.total():
                attribution.ledger = ledger
            attribution.wall_seconds += ret.wall_seconds
            for probe in ret.types:
                if probe.message_type not in attribution.shards:
                    attribution.shards.append(probe.message_type)
            if ret.scenarios and "scenarios" not in attribution.shards:
                attribution.shards.append("scenarios")
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.adopt(ret.spans, ret.events, worker=ret.worker)
            self._log_records.extend(ret.log_records)
            if ret.budget_counters:
                # Cumulative per worker: the latest snapshot replaces the
                # previous one rather than double-counting it.
                self._budget_counters[ret.worker] = dict(ret.budget_counters)

    def _shared_startup(self, returns: Dict[int, WorkerReturn]
                        ) -> StartupProbe:
        """All workers boot the same deterministic world; their startup
        traces must be identical — anything else means nondeterminism that
        would silently corrupt the merge, so fail loudly.  The reference
        persists across passes, so a worker respawned mid-hunt is checked
        against the original startup too."""
        startups = [ret.startup for __, ret in sorted(returns.items())
                    if ret.startup is not None]
        if not startups:
            raise SearchError("no worker returned a startup trace")
        reference = self._startup_reference
        if reference is None:
            reference = self._startup_reference = startups[0]
        for other in startups:
            if (other.trace.charges != reference.trace.charges
                    or other.quarantined != reference.quarantined):
                raise SearchError(
                    "nondeterministic startup across parallel workers: "
                    "identical (factory, seed) produced different charges "
                    "(a respawned worker must replay the serial startup "
                    "bitwise)")
        return reference

    # ------------------------------------------------------------------ pass

    def run_pass(self, message_types: Optional[Sequence[str]] = None,
                 exclude: Optional[Set[tuple]] = None,
                 weights: Optional[ClusterWeights] = None,
                 max_scenarios: Optional[int] = None) -> SearchReport:
        """Execute one pass across the pool; return the serial-identical
        merged report.  ``weights`` is mutated exactly as the serial
        weighted pass would mutate it (bump per finding, in order)."""
        excluded = frozenset(exclude or ())
        types = (list(message_types) if message_types is not None
                 else self._instance.search_types())
        pass_mark = (self.tracer.mark()
                     if self.tracer is not None and self.tracer.enabled
                     else 0)
        if self.algorithm == "brute":
            report = self._run_brute(types, excluded, max_scenarios)
        else:
            report = self._run_branching(types, excluded, weights)
        if self.tracer is not None and self.tracer.enabled:
            report.telemetry = summarize(self.tracer, None, since=pass_mark)
        # Side channel, like worker_breakdown: never serialized into the
        # deterministic report, only rendered for humans when eventful.
        report.worker_health = self._health.report_if_eventful()
        return report

    def _run_branching(self, types: Sequence[str], excluded: frozenset,
                       weights: Optional[ClusterWeights]) -> SearchReport:
        actions_by_type = {
            t: [a for a in self._space.actions_for(t)
                if AttackScenario(t, a).to_record() not in excluded]
            for t in types}
        probes: Dict[str, TypeProbe] = {}
        todo = list(types)
        if self.store is not None:
            # Types the journal fully covers are answered from disk; their
            # recorded traces replay through the merge exactly as a live
            # worker's would.  Partially covered types stay in the shards —
            # an in-process prober resumes mid-walk from its seeds, a
            # forked worker re-probes (identical traces) and the journal's
            # dedupe absorbs the overlap.
            covered = [t for t in todo
                       if self.store.covers(t, actions_by_type[t],
                                            self.threshold,
                                            early_stop=self.params
                                            .early_stop)]
            for message_type in covered:
                probes[message_type] = self.store.type_probe(message_type)
            todo = [t for t in todo if t not in set(covered)]
        shards: Dict[int, List[str]] = {}
        for message_type in todo:
            if not actions_by_type[message_type]:
                continue
            shards.setdefault(self._pin(message_type), []).append(message_type)
        if not shards:
            # Nothing left to evaluate — the lead worker still boots (or
            # reuses) its testbed so the report carries the serial startup
            # charges.
            shards = {self._lead_slot(): []}
        tasks = {worker: ("probe", shard, excluded)
                 for worker, shard in shards.items()}
        returns = self._dispatch(tasks)
        startup = self._shared_startup(returns)
        for __, ret in sorted(returns.items()):
            for probe in ret.types:
                probes[probe.message_type] = probe
        if self.algorithm == "weighted":
            return merge_weighted(self.system, types, actions_by_type,
                                  weights if weights is not None
                                  else ClusterWeights(),
                                  self.threshold, startup, probes)
        return merge_greedy(self.system, types, actions_by_type,
                            self.threshold, self.rounds, self.confirmations,
                            startup, probes)

    def _run_brute(self, types: Sequence[str], excluded: frozenset,
                   max_scenarios: Optional[int]) -> SearchReport:
        scenarios = [s for t in types for s in self._space.scenarios_for(t)
                     if s.to_record() not in excluded]
        if max_scenarios is not None:
            scenarios = scenarios[:max_scenarios]
        lead = self._lead_slot()
        shards: Dict[int, List[tuple]] = {lead: []}  # the lead runs baseline
        for scenario in scenarios:
            worker = self._pin(scenario.to_record())
            shards.setdefault(worker, []).append(scenario.to_record())
        tasks = {worker: ("brute", records, worker == lead)
                 for worker, records in shards.items()}
        returns = self._dispatch(tasks)
        baseline = returns[lead].baseline
        if baseline is None:
            raise SearchError(f"brute worker {lead} returned no baseline")
        probes: Dict[tuple, ScenarioProbe] = {}
        for __, ret in sorted(returns.items()):
            for probe in ret.scenarios:
                probes[probe.record] = probe
        return merge_brute(self.system, scenarios, self.threshold,
                           baseline, probes)

    # ------------------------------------------------------------ accounting

    def worker_breakdown(self) -> List[WorkerAttribution]:
        """Per-worker platform time and wall time, in worker order.

        Approximate after a recovery: work a dead worker did before dying
        is unreported, and a replacement restarts its cumulative ledger."""
        return [self._attribution[w] for w in sorted(self._attribution)]

    def worker_health(self) -> WorkerHealthReport:
        """Everything the self-healing layer did, clean or not."""
        return self._health.report()

    def budget_counters(self) -> Dict[str, float]:
        """Aggregate ``snapshot.cache.*`` counters across the pool (a side
        channel, like :meth:`worker_breakdown`; approximate after a worker
        respawn, whose replacement restarts its counters)."""
        total: Dict[str, float] = {}
        for __, counters in sorted(self._budget_counters.items()):
            for name, value in counters.items():
                total[name] = total.get(name, 0.0) + value
        return total

    def take_log_records(self) -> list:
        """Drain EventLog records gathered from the workers so far."""
        records, self._log_records = self._log_records, []
        return records

    # --------------------------------------------------------------- teardown

    def close(self) -> None:
        """Stop every worker process; idempotent and fd-clean: parent pipe
        ends are closed and the process/conn/prober tables cleared even
        when a worker already died."""
        for conn in self._conns.values():
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for process in self._procs.values():
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                process.join(timeout=10)
            try:
                process.close()
            except ValueError:  # pragma: no cover - defensive
                pass
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._procs.clear()
        self._conns.clear()
        self._inline.clear()

    def __enter__(self) -> "ScenarioExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
