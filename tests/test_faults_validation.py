"""Robustness validation: true attacks survive perturbed environments,
scripted false positives do not.

The false positive here is the classic trap the chaos layer exists to
catch: a "finding" whose damage came from environmental packet loss, not
from the malicious action.  Measured against each perturbed environment's
*own* benign baseline, the environmental damage subtracts out and the
scenario scores near zero, while a real protocol attack keeps winning.
"""

from types import SimpleNamespace

from repro.attacks.actions import AttackScenario, DelayAction
from repro.controller.monitor import AttackThreshold
from repro.faults.validation import (EnvironmentOutcome, RobustnessResult,
                                     ValidationReport, validate_findings)
from repro.systems.pbft.testbed import pbft_testbed


def finding(message_type, action):
    return SimpleNamespace(scenario=AttackScenario(message_type, action))


class TestValidateFindings:
    def test_true_attack_beats_false_positive(self):
        factory = pbft_testbed(warmup=1.0, window=2.0)
        true_attack = finding("PrePrepare", DelayAction(1.0))
        # a 1 ms delay is far below the protocol's timeouts: any "damage"
        # this scenario ever shows came from the environment, not from it
        false_positive = finding("PrePrepare", DelayAction(0.001))
        report = validate_findings(
            factory, [true_attack, false_positive],
            threshold=AttackThreshold(delta=0.25),
            environments=2, seed=0, base_seed=1, max_wait=5.0)

        strong = report.result_named(true_attack.scenario.describe())
        weak = report.result_named(false_positive.scenario.describe())
        assert strong is not None and weak is not None
        assert len(strong.environments) == 2
        assert strong.score == 1.0
        assert weak.score == 0.0
        assert strong.score > weak.score
        # the environments actually bit (ambient noise floor is nonzero)
        # without flooring throughput entirely
        assert 0.0 < strong.mean_benign_degradation < 1.0
        for outcome in strong.environments:
            assert outcome.injected
            assert outcome.damage > 0.25
        for outcome in weak.environments:
            assert outcome.damage < 0.25
        assert report.platform_time > 0

    def test_validation_is_deterministic(self):
        factory = pbft_testbed(warmup=1.0, window=2.0)
        candidate = finding("PrePrepare", DelayAction(1.0))

        def run_once():
            return validate_findings(
                factory, [candidate], environments=2, seed=7,
                base_seed=1, max_wait=5.0).to_dict()

        assert run_once() == run_once()

    def test_duplicate_findings_validated_once(self):
        factory = pbft_testbed(warmup=1.0, window=2.0)
        a = finding("PrePrepare", DelayAction(1.0))
        b = finding("PrePrepare", DelayAction(1.0))
        report = validate_findings(factory, [a, b], environments=1,
                                   seed=0, base_seed=1, max_wait=5.0)
        assert len(report.results) == 1

    def test_no_findings_short_circuits(self):
        factory = pbft_testbed(warmup=1.0, window=2.0)
        report = validate_findings(factory, [], environments=3, seed=0)
        assert report.results == []
        assert report.platform_time == 0.0


class TestValidationReportSerialization:
    def make_report(self):
        scenario = AttackScenario("PrePrepare", DelayAction(1.0))
        result = RobustnessResult(
            name=scenario.describe(),
            scenario_record=scenario.to_record(),
            message_type="PrePrepare",
            environments=[
                EnvironmentOutcome(
                    environment=0, schedule_seed=123, injected=True,
                    benign_throughput=40.0, attacked_throughput=2.0,
                    damage=0.95, sustained=True, benign_degradation=0.1),
                EnvironmentOutcome(
                    environment=1, schedule_seed=456, injected=False,
                    benign_throughput=0.0, attacked_throughput=0.0,
                    damage=0.0, sustained=False, benign_degradation=1.0),
            ])
        return ValidationReport(environments=2, seed=9, delta=0.25,
                                results=[result], platform_time=12.5)

    def test_dict_roundtrip(self):
        report = self.make_report()
        clone = ValidationReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert clone.results[0].score == 0.5
        assert clone.results[0].environments[1].injected is False

    def test_score_semantics(self):
        report = self.make_report()
        result = report.results[0]
        # the no-injection environment counts against robustness
        assert result.score == 0.5
        assert result.mean_benign_degradation == 0.55
        assert "[#.]" in result.describe()
        assert "robustness 50%" in result.describe()

    def test_describe(self):
        text = self.make_report().describe()
        assert "1 findings x 2 environments" in text
        assert "Delay 1s PrePrepare" in text
