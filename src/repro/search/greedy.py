"""Dynamic greedy attack search (Fig. 2(b), after Gatling).

For each message type the algorithm branches the execution at an attack
injection point, obtains a baseline and the performance for *every*
malicious action, and selects the one causing the largest degradation.
"As an aggressive approach can also make mistakes, higher confidence is
obtained by deciding that a scenario is an attack if it was selected more
than a certain number of times, which in turn requires additional
executions" — the ``rounds``/``confirmations`` parameters.

Its inefficiency, which motivates weighted greedy, is structural: all
actions are always evaluated, so effective-but-not-strongest actions consume
full measurement windows and are then discarded.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.controller.supervisor import ScenarioQuarantined
from repro.search.base import SearchAlgorithm
from repro.search.results import AttackFinding, SearchReport


class GreedySearch(SearchAlgorithm):
    """Branch at each injection point; evaluate all actions; pick the worst."""

    name = "greedy"

    def __init__(self, *args, rounds: int = 3, confirmations: int = 2,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if confirmations > rounds:
            raise ValueError("confirmations cannot exceed rounds")
        self.rounds = rounds
        self.confirmations = confirmations

    def _run_pass(self, message_types: Optional[Sequence[str]] = None,
                  exclude: Optional[Set[tuple]] = None) -> SearchReport:
        exclude = exclude or set()
        try:
            self._start_run()
        except ScenarioQuarantined as q:
            report = self._make_report()
            report.quarantined.append(self._quarantine_entry(q, "*", None))
            return self._finalize_report(report)
        report = self._make_report()
        space = self._space()

        for message_type in self._search_types(message_types):
            actions = [a for a in space.actions_for(message_type)
                       if self._exclude_key(
                           _scenario(message_type, a)) not in exclude]
            if not actions:
                continue

            selections: Dict[tuple, int] = {}
            best_by_action: Dict[tuple, Tuple] = {}
            saw_injection = False
            type_quarantined = False

            for __ in range(self.rounds):
                try:
                    ctx = self._acquire_context(message_type)
                except ScenarioQuarantined as q:
                    report.quarantined.append(
                        self._quarantine_entry(q, message_type, None))
                    type_quarantined = True
                    break
                if ctx is None:
                    break
                saw_injection = True
                report.injection_points += 1

                worst_key = None
                worst_damage = -1.0
                for action in actions:
                    try:
                        sample = self._measure_action(ctx, action)
                    except ScenarioQuarantined as q:
                        report.quarantined.append(
                            self._quarantine_entry(q, message_type, action))
                        continue
                    baseline = ctx.baseline
                    report.scenarios_evaluated += 1
                    damage = self.threshold.damage(baseline, sample)
                    if sample.crashed_nodes > baseline.crashed_nodes:
                        damage = 1.0
                    if damage > worst_damage:
                        worst_damage = damage
                        worst_key = action.to_record()
                        best_by_action[worst_key] = (action, baseline, sample,
                                                     damage)
                if worst_key is not None:
                    selections[worst_key] = selections.get(worst_key, 0) + 1

            if not saw_injection:
                if not type_quarantined:
                    report.types_without_injection.append(message_type)
                continue

            # Confirm the most-selected action if it clears both bars.
            for key, count in sorted(selections.items(),
                                     key=lambda kv: -kv[1]):
                action, baseline, sample, damage = best_by_action[key]
                crashed = sample.crashed_nodes > baseline.crashed_nodes
                if count >= self.confirmations and (
                        crashed or self.threshold.is_attack(baseline, sample)):
                    report.findings.append(AttackFinding(
                        _scenario(message_type, action), baseline, sample,
                        damage=damage, crashes=sample.crashed_nodes,
                        found_at=self.ledger.total(),
                        confirmations=count))
                break  # greedy keeps only the strongest attack per type
        return self._finalize_report(report)


def _scenario(message_type: str, action):
    from repro.attacks.actions import AttackScenario
    return AttackScenario(message_type, action)
