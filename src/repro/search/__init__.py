"""Attack-finding algorithms: brute force, greedy, weighted greedy."""

from repro.search.base import SearchAlgorithm, TypeContext
from repro.search.brute import BruteForceSearch
from repro.search.greedy import GreedySearch
from repro.search.hunt import (HuntResult, hunt, load_checkpoint,
                               save_checkpoint)
from repro.search.results import AttackFinding, SearchReport
from repro.search.weighted import (DEFAULT_WEIGHTS, ClusterWeights,
                                   WeightedGreedySearch)

__all__ = [
    "SearchAlgorithm", "TypeContext", "BruteForceSearch", "GreedySearch",
    "HuntResult", "hunt", "load_checkpoint", "save_checkpoint",
    "AttackFinding", "SearchReport", "DEFAULT_WEIGHTS",
    "ClusterWeights", "WeightedGreedySearch",
]
