"""Attack forensics: causal tracing and benign-vs-attack explanations.

A confirmed finding says *that* an action degraded performance; this
package answers *why*.  :mod:`repro.forensics.causality` records a
cross-node happens-before graph of one execution via the emulator's
causal tap; :mod:`repro.forensics.differential` re-executes the benign
and attacked branches from the same injection-point snapshot and aligns
their graphs to locate the first divergence and its downstream effects;
:mod:`repro.forensics.explain` packages the result as an
:class:`~repro.forensics.explain.AttackExplanation`, and
:mod:`repro.forensics.report` renders explanations as JSON, markdown,
and Chrome traces.

Explanations are a side channel: they are computed post-search from a
dedicated harness with its own cost ledger, and never serialized into
the deterministic report JSON — a hunt with forensics enabled produces
byte-identical report output to one without.
"""

from repro.forensics.causality import (CausalEdge, CausalEvent, CausalGraph,
                                       CausalRecorder)
from repro.forensics.differential import (DeliveryDelta, DifferentialResult,
                                          Divergence, PerfPoint, PerfTimeline,
                                          diff_branches, perf_timeline)
from repro.forensics.explain import (AttackExplanation, ForensicRunner,
                                     explain_findings)
from repro.forensics.report import (explanation_chrome_trace,
                                    explanations_to_json,
                                    render_explanations_markdown,
                                    write_forensics)

__all__ = [
    "CausalEdge", "CausalEvent", "CausalGraph", "CausalRecorder",
    "DeliveryDelta", "DifferentialResult", "Divergence", "PerfPoint",
    "PerfTimeline", "diff_branches", "perf_timeline",
    "AttackExplanation", "ForensicRunner", "explain_findings",
    "explanation_chrome_trace", "explanations_to_json",
    "render_explanations_markdown", "write_forensics",
]
