"""ScenarioExecutor: shard a pass across workers, merge deterministically.

The executor owns a pool of persistent workers (forked processes when the
platform supports ``fork`` and more than one worker was requested; in-process
probers otherwise — testbed factories are closures, so they can only cross a
process boundary by fork inheritance, never by pickling).  Work units are
message types for weighted/greedy and scenarios for brute force, pinned to
workers round-robin in first-seen order so a type keeps hitting the same
worker's caches across hunt passes.

``run_pass`` returns a :class:`~repro.search.results.SearchReport` that is
byte-identical to what the serial algorithm would produce — same findings,
same ledger, same supervision events — because the merge replays recorded
traces in serial order (see :mod:`repro.parallel.merge`).  What the workers
actually spent is reported separately through :meth:`worker_breakdown`.

Deterministic platform fault injection (``FaultPlan``) is deliberately not
supported: its private RNG stream is sequence-dependent, so sharding would
change which operations fault.  Environmental ``FaultSchedule`` chaos is
fine — it is armed per-world before warmup and each worker's world perturbs
identically to the serial one.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Sequence, Set

from repro.attacks.actions import AttackScenario
from repro.attacks.space import ActionSpace, ActionSpaceConfig
from repro.common.errors import ConfigError, SearchError
from repro.controller.costs import CostLedger, WorkerAttribution
from repro.controller.monitor import AttackThreshold
from repro.parallel.merge import merge_brute, merge_greedy, merge_weighted
from repro.parallel.worker import (ProbeParams, ScenarioProbe, StartupProbe,
                                   TypeProbe, WorkerProber, WorkerReturn,
                                   worker_main)
from repro.search.results import SearchReport
from repro.search.weighted import ClusterWeights
from repro.telemetry.summary import summarize
from repro.telemetry.tracer import Tracer

ALGORITHMS = ("weighted", "greedy", "brute")


class ScenarioExecutor:
    """Shards a pass's work units across a persistent worker pool."""

    def __init__(self, factory, seed: int = 0, algorithm: str = "weighted",
                 workers: int = 2,
                 threshold: Optional[AttackThreshold] = None,
                 space_config: Optional[ActionSpaceConfig] = None,
                 max_wait: Optional[float] = None,
                 shared_pages: bool = True,
                 delta_snapshots: bool = False,
                 fault_schedule=None,
                 watchdog_limit: Optional[int] = None,
                 max_retries: int = 2,
                 rounds: int = 3, confirmations: int = 2,
                 tracer: Optional[Tracer] = None,
                 log_events: bool = False) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if algorithm not in ALGORITHMS:
            raise ConfigError(f"unknown algorithm {algorithm!r}; "
                              f"expected one of {ALGORITHMS}")
        self.factory = factory
        self.seed = seed
        self.algorithm = algorithm
        self.workers = workers
        self.threshold = threshold or AttackThreshold()
        self.rounds = rounds
        self.confirmations = confirmations
        self.tracer = tracer
        #: an unbooted instance: the schema/name/search-type oracle the
        #: serial algorithm reads off its own harness
        self._instance = factory(seed)
        self._space = ActionSpace(self._instance.schema, space_config)
        self.params = ProbeParams(
            algorithm=algorithm, threshold=self.threshold,
            space_config=space_config, max_wait=max_wait,
            shared_pages=shared_pages, delta_snapshots=delta_snapshots,
            fault_schedule=fault_schedule, watchdog_limit=watchdog_limit,
            max_retries=max_retries,
            trace=tracer is not None and tracer.enabled,
            log_events=log_events)
        start_methods = multiprocessing.get_all_start_methods()
        self._use_fork = workers > 1 and "fork" in start_methods
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._conns: Dict[int, object] = {}
        self._inline: Dict[int, WorkerProber] = {}
        #: work unit -> worker id, assigned round-robin in first-seen order
        #: (stable across passes, so caches stay hot)
        self._pins: Dict[object, int] = {}
        self._attribution: Dict[int, WorkerAttribution] = {}
        self._log_records: list = []

    # --------------------------------------------------------------- plumbing

    @property
    def system(self) -> str:
        return self._instance.name

    def _pin(self, unit) -> int:
        worker = self._pins.get(unit)
        if worker is None:
            worker = len(self._pins) % self.workers
            self._pins[unit] = worker
        return worker

    def _ensure_worker(self, worker: int) -> None:
        if self._use_fork:
            if worker not in self._procs:
                context = multiprocessing.get_context("fork")
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=worker_main,
                    args=(child_conn, worker, self.factory, self.seed,
                          self.params),
                    daemon=True)
                process.start()
                child_conn.close()
                self._procs[worker] = process
                self._conns[worker] = parent_conn
        elif worker not in self._inline:
            self._inline[worker] = WorkerProber(worker, self.factory,
                                                self.seed, self.params)

    def _dispatch(self, tasks: Dict[int, tuple]) -> Dict[int, WorkerReturn]:
        """Send one task per worker; gather results in worker order."""
        for worker in sorted(tasks):
            self._ensure_worker(worker)
        returns: Dict[int, WorkerReturn] = {}
        if self._use_fork:
            for worker in sorted(tasks):
                self._conns[worker].send(tasks[worker])
            for worker in sorted(tasks):
                try:
                    status, payload = self._conns[worker].recv()
                except EOFError:
                    raise SearchError(
                        f"parallel worker {worker} died mid-task") from None
                if status != "ok":
                    raise SearchError(
                        f"parallel worker {worker} failed:\n{payload}")
                returns[worker] = payload
        else:
            for worker in sorted(tasks):
                prober = self._inline[worker]
                task = tasks[worker]
                started = time.perf_counter()
                if task[0] == "probe":
                    startup, probes = prober.probe_types(task[1], task[2])
                    payload = prober.package(startup=startup, types=probes)
                else:
                    baseline, probes = prober.probe_brute(task[1], task[2])
                    payload = prober.package(baseline=baseline,
                                             scenarios=probes)
                payload.wall_seconds = time.perf_counter() - started
                returns[worker] = payload
        self._absorb(returns)
        return returns

    def _absorb(self, returns: Dict[int, WorkerReturn]) -> None:
        """Fold worker accounting, spans, and log records into the parent."""
        for worker, ret in sorted(returns.items()):
            attribution = self._attribution.setdefault(
                worker, WorkerAttribution(worker=worker))
            attribution.ledger = CostLedger(dict(ret.by_category))
            attribution.wall_seconds += ret.wall_seconds
            for probe in ret.types:
                if probe.message_type not in attribution.shards:
                    attribution.shards.append(probe.message_type)
            if ret.scenarios and "scenarios" not in attribution.shards:
                attribution.shards.append("scenarios")
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.adopt(ret.spans, ret.events, worker=worker)
            self._log_records.extend(ret.log_records)

    @staticmethod
    def _shared_startup(returns: Dict[int, WorkerReturn]) -> StartupProbe:
        """All workers boot the same deterministic world; their startup
        traces must be identical — anything else means nondeterminism that
        would silently corrupt the merge, so fail loudly."""
        startups = [ret.startup for __, ret in sorted(returns.items())
                    if ret.startup is not None]
        if not startups:
            raise SearchError("no worker returned a startup trace")
        first = startups[0]
        for other in startups[1:]:
            if (other.trace.charges != first.trace.charges
                    or other.quarantined != first.quarantined):
                raise SearchError(
                    "nondeterministic startup across parallel workers: "
                    "identical (factory, seed) produced different charges")
        return first

    # ------------------------------------------------------------------ pass

    def run_pass(self, message_types: Optional[Sequence[str]] = None,
                 exclude: Optional[Set[tuple]] = None,
                 weights: Optional[ClusterWeights] = None,
                 max_scenarios: Optional[int] = None) -> SearchReport:
        """Execute one pass across the pool; return the serial-identical
        merged report.  ``weights`` is mutated exactly as the serial
        weighted pass would mutate it (bump per finding, in order)."""
        excluded = frozenset(exclude or ())
        types = (list(message_types) if message_types is not None
                 else self._instance.search_types())
        pass_mark = (self.tracer.mark()
                     if self.tracer is not None and self.tracer.enabled
                     else 0)
        if self.algorithm == "brute":
            report = self._run_brute(types, excluded, max_scenarios)
        else:
            report = self._run_branching(types, excluded, weights)
        if self.tracer is not None and self.tracer.enabled:
            report.telemetry = summarize(self.tracer, None, since=pass_mark)
        return report

    def _run_branching(self, types: Sequence[str], excluded: frozenset,
                       weights: Optional[ClusterWeights]) -> SearchReport:
        actions_by_type = {
            t: [a for a in self._space.actions_for(t)
                if AttackScenario(t, a).to_record() not in excluded]
            for t in types}
        shards: Dict[int, List[str]] = {}
        for message_type in types:
            if not actions_by_type[message_type]:
                continue
            shards.setdefault(self._pin(message_type), []).append(message_type)
        if not shards:
            # Nothing left to evaluate — worker 0 still boots (or reuses)
            # its testbed so the report carries the serial startup charges.
            shards = {0: []}
        tasks = {worker: ("probe", shard, excluded)
                 for worker, shard in shards.items()}
        returns = self._dispatch(tasks)
        startup = self._shared_startup(returns)
        probes: Dict[str, TypeProbe] = {}
        for __, ret in sorted(returns.items()):
            for probe in ret.types:
                probes[probe.message_type] = probe
        if self.algorithm == "weighted":
            return merge_weighted(self.system, types, actions_by_type,
                                  weights if weights is not None
                                  else ClusterWeights(),
                                  self.threshold, startup, probes)
        return merge_greedy(self.system, types, actions_by_type,
                            self.threshold, self.rounds, self.confirmations,
                            startup, probes)

    def _run_brute(self, types: Sequence[str], excluded: frozenset,
                   max_scenarios: Optional[int]) -> SearchReport:
        scenarios = [s for t in types for s in self._space.scenarios_for(t)
                     if s.to_record() not in excluded]
        if max_scenarios is not None:
            scenarios = scenarios[:max_scenarios]
        shards: Dict[int, List[tuple]] = {0: []}  # worker 0 runs the baseline
        for scenario in scenarios:
            worker = self._pin(scenario.to_record())
            shards.setdefault(worker, []).append(scenario.to_record())
        tasks = {worker: ("brute", records, worker == 0)
                 for worker, records in shards.items()}
        returns = self._dispatch(tasks)
        baseline = returns[0].baseline
        if baseline is None:
            raise SearchError("brute worker 0 returned no baseline")
        probes: Dict[tuple, ScenarioProbe] = {}
        for __, ret in sorted(returns.items()):
            for probe in ret.scenarios:
                probes[probe.record] = probe
        return merge_brute(self.system, scenarios, self.threshold,
                           baseline, probes)

    # ------------------------------------------------------------ accounting

    def worker_breakdown(self) -> List[WorkerAttribution]:
        """Per-worker platform time and wall time, in worker order."""
        return [self._attribution[w] for w in sorted(self._attribution)]

    def take_log_records(self) -> list:
        """Drain EventLog records gathered from the workers so far."""
        records, self._log_records = self._log_records, []
        return records

    # --------------------------------------------------------------- teardown

    def close(self) -> None:
        """Stop every worker process; safe to call more than once."""
        for conn in self._conns.values():
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for process in self._procs.values():
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=10)
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._procs.clear()
        self._conns.clear()
        self._inline.clear()

    def __enter__(self) -> "ScenarioExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
