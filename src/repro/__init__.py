"""repro — a reproduction of Turret (ICDCS 2014).

Turret is a platform for automatically finding performance attacks in
unmodified distributed-system implementations.  This package reproduces the
whole platform in Python: the virtualization substrate (``repro.vm``), the
network emulator (``repro.netem``), the message-format compiler
(``repro.wire``), the malicious proxy and action space (``repro.attacks``),
the controller with distributed-snapshot execution branching
(``repro.controller``), the brute-force / greedy / weighted-greedy attack
finding algorithms (``repro.search``), and the five BFT target systems the
paper evaluates (``repro.systems``).
"""

__version__ = "1.0.0"
