"""The world: one complete emulated deployment.

A :class:`World` wires together everything one experiment needs — the
simulation kernel, the network emulator, the VM cluster, the per-node
runtimes, the metrics collector, and the RNG registry — and exposes whole-
world save/restore built from each component's own snapshot support.  The
controller's distributed-snapshot procedure (pause ordering, timing charges)
lives in :mod:`repro.controller.branching`; the world provides the raw
state plumbing it orchestrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.ids import NodeId
from repro.common.logging import EventLog
from repro.common.rng import RngRegistry
from repro.metrics.collector import MetricsCollector
from repro.netem.devices import make_device
from repro.netem.emulator import NetworkEmulator
from repro.netem.topology import Topology
from repro.runtime.app import Application
from repro.runtime.cpu import CpuCostModel
from repro.runtime.node import Node
from repro.sim.kernel import SimKernel
from repro.telemetry.instruments import InstrumentRegistry
from repro.vm.manager import VmCluster
from repro.vm.memory import OsImage
from repro.wire.codec import ProtocolCodec


class World:
    """A booted emulated deployment of one distributed system."""

    def __init__(self, codec: ProtocolCodec, topology: Optional[Topology] = None,
                 seed: int = 0, device_kind: str = "BundledDevice",
                 os_image: Optional[OsImage] = None,
                 log_enabled: bool = False,
                 watchdog_limit: Optional[int] = None,
                 telemetry_enabled: bool = False,
                 device_config: Optional[dict] = None,
                 log_max_records: Optional[int] = None) -> None:
        self.codec = codec
        self.rng = RngRegistry(seed)
        self.kernel = SimKernel()
        self.kernel.watchdog_limit = watchdog_limit
        self.log = EventLog(lambda: self.kernel.now, enabled=log_enabled,
                            max_records=log_max_records)
        #: platform instruments for this world — disabled by default, the
        #: harness flips ``enabled`` when telemetry is requested; the state
        #: rides in :meth:`save_component_states` so branched executions
        #: resume from consistent pre-branch telemetry.
        self.instruments = InstrumentRegistry(enabled=telemetry_enabled)
        self.kernel.instruments = self.instruments
        self.emulator = NetworkEmulator(self.kernel, topology,
                                        device_kind=device_kind, log=self.log,
                                        instruments=self.instruments)
        # The emulator's fault draws come from a registry stream so the
        # world RNG snapshot covers them (created eagerly for a stable
        # registry layout regardless of whether faults are ever armed).
        self.emulator.fault_rng = self.rng.stream("netem.faults")
        #: per-instance device parameter overrides (process_delay,
        #: tx_latency, queue_capacity) applied to every host's device
        self.device_config = dict(device_config or {})
        self.metrics = MetricsCollector()
        self.nodes: Dict[NodeId, Node] = {}
        self._apps: Dict[NodeId, Application] = {}
        self._app_factories: Dict[NodeId, object] = {}
        self._os_image = os_image or OsImage()
        self.cluster: Optional[VmCluster] = None
        self._booted = False
        #: chaos-layer injector armed by the harness (None: no faults)
        self.fault_injector = None

    # ------------------------------------------------------------- assembly

    def add_node(self, node_id: NodeId, app: Application,
                 cost_model: Optional[CpuCostModel] = None,
                 default_transport: str = "udp",
                 app_factory=None) -> Node:
        if self._booted:
            raise ConfigError("cannot add nodes after boot")
        if node_id in self.nodes:
            raise ConfigError(f"node {node_id} already added")
        device = (make_device(self.emulator.device_kind, **self.device_config)
                  if self.device_config else None)
        self.emulator.register_host(node_id, device)
        node = Node(node_id, self.kernel, self.emulator, self.codec,
                    self.rng.stream(f"node:{node_id}"),
                    cost_model=cost_model,
                    default_transport=default_transport, log=self.log,
                    metric_sink=self.metrics.record)
        node.attach(app)
        self.nodes[node_id] = node
        self._apps[node_id] = app
        if app_factory is not None:
            # Zero-argument callable rebuilding this node's application;
            # needed for fresh-boot recovery after an injected crash.
            self._app_factories[node_id] = app_factory
        return node

    def set_peer_groups(self, group: List[NodeId]) -> None:
        """Make ``group`` the broadcast set of each of its members."""
        for node_id in group:
            self.nodes[node_id].peers = list(group)

    # ----------------------------------------------------------------- boot

    def boot(self) -> float:
        """Create and boot the VMs and start every node's application.

        Returns the modelled boot duration (charged by the search cost
        accounting: a brute-force search pays this for every execution).
        """
        if self._booted:
            raise ConfigError("world already booted")
        self._booted = True
        names = [str(n) for n in sorted(self.nodes)]
        self.cluster = VmCluster(names, image=self._os_image)
        boot_time = self.cluster.boot_all()
        for node_id in sorted(self.nodes):
            self.cluster.vm(str(node_id)).app = self.nodes[node_id]
        for node_id in sorted(self.nodes):
            self.nodes[node_id].start()
        return boot_time

    @property
    def booted(self) -> bool:
        return self._booted

    def node(self, node_id: NodeId) -> Node:
        return self.nodes[node_id]

    def app(self, node_id: NodeId) -> Application:
        return self._apps[node_id]

    def crashed_nodes(self) -> List[NodeId]:
        return sorted(n for n, node in self.nodes.items() if node.crashed)

    def crashed_node_summaries(self) -> List[str]:
        """Human-readable lines for every crashed node, with the cause.

        Distinguishes target-bug crashes (``fault``) from chaos-layer
        crashes (``injected``) so a report can show whether the system
        under test died by its own hand.
        """
        lines = []
        for node_id in self.crashed_nodes():
            node = self.nodes[node_id]
            kind = node.crash_kind or "fault"
            lines.append(f"{node_id} [{kind}] {node.crash_reason}".rstrip())
        return lines

    def restart_node(self, node_id: NodeId, fresh: bool = True,
                     app_state: Optional[dict] = None) -> None:
        """Recover a crashed node (chaos-layer restart).

        ``fresh=True`` rebuilds the application from the factory registered
        at :meth:`add_node` (fresh-boot recovery).  ``fresh=False`` restores
        ``app_state`` into the existing application instance instead
        (durable-state recovery); ``app_state=None`` then just restarts the
        app object as it died, modelling a process that kept its memory.
        """
        node = self.nodes[node_id]
        if not node.crashed:
            return
        if fresh:
            factory = self._app_factories.get(node_id)
            if factory is None:
                raise ConfigError(
                    f"node {node_id} has no app factory; fresh-boot "
                    f"recovery needs add_node(..., app_factory=...)")
            app = factory()
            self._apps[node_id] = app
            node.restart(app=app)
        else:
            node.restart(app_state=app_state)

    def install_fault_injector(self, injector) -> None:
        """Attach (or detach, with None) the chaos-layer fault injector.

        Installed injectors participate in :meth:`save_component_states`,
        so a snapshot taken mid-schedule restores with the same pending
        fault events.
        """
        self.fault_injector = injector

    # ------------------------------------------------------------- watchdog

    def set_watchdog(self, max_events_per_window: Optional[int]) -> None:
        """Cap events one run window may execute (None disables).

        When the cap is exceeded the kernel raises
        :class:`~repro.common.errors.WatchdogTimeout`, which the supervision
        layer treats as a transient platform fault: the offending branch is
        retried on a fresh testbed and, if it keeps tripping, quarantined.
        """
        self.kernel.watchdog_limit = max_events_per_window

    @property
    def watchdog_trips(self) -> int:
        return self.kernel.watchdog_trips

    # ------------------------------------------------------ direct snapshot
    #
    # Raw state plumbing.  The controller's DistributedSnapshotter wraps
    # these with the paper's pause/freeze ordering and cost accounting.

    def save_component_states(self) -> dict:
        state = {
            "kernel": self.kernel.save_state(),
            "netem": self.emulator.save_state(),
            "metrics": self.metrics.save_state(),
            "rng": self.rng.save_state(),
            "telemetry": self.instruments.save_state(),
        }
        if self.fault_injector is not None:
            state["faults"] = self.fault_injector.save_state()
        return state

    def load_component_states(self, state: dict) -> None:
        # Kernel first: clears the event queue and rewinds the clock so the
        # other components can re-schedule against restored time.
        self.kernel.load_state(state["kernel"])
        self.emulator.load_state(state["netem"])
        self.metrics.load_state(state["metrics"])
        self.rng.load_state(state["rng"])
        # Older snapshots predate the instrument registry; .get keeps them
        # loadable (load_state(None) clears to empty).
        self.instruments.load_state(state.get("telemetry"))
        # Fault injector last: it re-schedules pending fault events against
        # the restored clock.
        if self.fault_injector is not None:
            self.fault_injector.load_state(state.get("faults"))

    def run_for(self, duration: float):
        return self.kernel.run_for(duration)

    def run_until(self, deadline: float):
        return self.kernel.run_until(deadline)
