#!/usr/bin/env python3
"""Brute force vs greedy vs weighted greedy on the same hunt.

Reproduces the motivation for Fig. 2 / Table III: all three algorithms find
the Delay Pre-Prepare attack on PBFT, at wildly different platform cost.
Brute force pays boot + warmup for every scenario; greedy branches but
evaluates every action (times confidence rounds); weighted greedy stops at
the first action whose damage clears Δ.

Run:  python examples/compare_search_algorithms.py
"""

from repro.attacks.space import ActionSpaceConfig
from repro.search import BruteForceSearch, GreedySearch, WeightedGreedySearch
from repro.systems.pbft import pbft_testbed

SPACE = ActionSpaceConfig(delays=(0.5, 1.0), drop_probabilities=(0.5, 1.0),
                          duplicate_counts=(2, 50), include_divert=True,
                          include_lying=False)


def main() -> None:
    factory = pbft_testbed(malicious="primary", warmup=2.0, window=3.0)
    rows = []
    for cls, kwargs in ((BruteForceSearch, {}),
                        (GreedySearch, {"rounds": 2, "confirmations": 2}),
                        (WeightedGreedySearch, {})):
        search = cls(factory, seed=5, space_config=SPACE, **kwargs)
        report = search.run(message_types=["PrePrepare"])
        best = report.findings[0] if report.findings else None
        rows.append((report.algorithm, report.scenarios_evaluated,
                     f"{report.total_time:.0f}s",
                     best.name if best else "(none)",
                     f"{best.found_at:.0f}s" if best else "-"))

    width = max(len(r[0]) for r in rows)
    print(f"{'algorithm':<{width}}  {'scenarios':>9}  {'total':>7}  "
          f"{'first attack':<24} {'found at':>8}")
    for algorithm, scenarios, total, attack, found_at in rows:
        print(f"{algorithm:<{width}}  {scenarios:>9}  {total:>7}  "
              f"{attack:<24} {found_at:>8}")
    print("\n(paper, Table III: weighted greedy found identical attacks "
          "76.8%-99.4% faster than greedy)")


if __name__ == "__main__":
    main()
