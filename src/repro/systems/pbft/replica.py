"""PBFT replica (Castro & Liskov) — normal case, checkpoints, status
protocol, and view changes, at the fidelity the paper's attacks exercise.

Protocols implemented (Section V-B of the Turret paper):

* **Normal case** — Request → Pre-Prepare → Prepare (2f) → Commit (2f+1) →
  execute → Reply.  The primary's pre-prepare counts as its prepare.
* **Checkpoints** — every ``checkpoint_interval`` executions a Checkpoint is
  broadcast; 2f+1 matching checkpoints advance the stable sequence number
  and garbage-collect the log.
* **Status protocol** — periodic Status broadcasts carry the sender's last
  executed and stable sequence numbers.  A receiver that sees a *behind*
  sender retransmits everything the sender is missing (or just the stable
  checkpoint when the gap reaches below the stable point) — the behaviour
  the Delay-Status attack weaponizes.
* **View change** — a backup that has an unexecuted pending request when its
  progress timer (5 s) fires moves to the next view and broadcasts
  ViewChange; the new primary collects 2f+1 and broadcasts NewView.

Intentional implementation flaws, mirroring what Turret found in the real
C++ codebase: ``PrePrepare.big_reqs``, ``PrePrepare.ndet_choices``, and
``Status.nmsgs`` are trusted as allocation sizes, and the two size fields of
``ViewChange`` are trusted/asserted — negative values fault the replica.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import NodeId, client, replica
from repro.systems.common.auth import Authenticator
from repro.systems.common.config import BftConfig
from repro.systems.common.replica import BaseReplica, digest_of
from repro.wire.codec import Message

STATUS_TIMER = "status"
PROGRESS_TIMER = "progress"
#: high watermark distance: pre-prepares beyond stable + this are refused
WATERMARK_WINDOW = 2048


class PbftReplica(BaseReplica):
    """One PBFT replica."""

    def __init__(self, index: int, config: BftConfig,
                 auth: Optional[Authenticator] = None) -> None:
        super().__init__(index, config, auth)
        self.next_seq = 0          # primary only: last assigned seq
        self.last_exec = 0         # highest contiguously executed seq
        self.stable_seq = 0
        # seq -> entry dict; see _entry() for the shape
        self.log: Dict[int, Dict[str, Any]] = {}
        # (client index, timestamp) -> assigned seq (primary)
        self.assigned: Dict[Tuple[int, int], int] = {}
        # (client index, timestamp) -> payload, requests awaiting execution
        self.pending: Dict[Tuple[int, int], bytes] = {}
        # client index -> (timestamp, reply Message fields) cache
        self.reply_cache: Dict[int, Tuple[int, Dict[str, Any]]] = {}
        # checkpoint votes: seq -> digest -> list of replica indices
        self.checkpoint_votes: Dict[int, Dict[bytes, List[int]]] = {}
        # view change: new view -> list of voter indices
        self.vc_votes: Dict[int, List[int]] = {}
        self.vc_sent_for = 0       # highest view we have sent a ViewChange for
        self.in_view_change = False
        self.executed_count = 0
        self.retransmissions_sent = 0

    # ------------------------------------------------------------ log entry

    def _entry(self, seq: int) -> Dict[str, Any]:
        entry = self.log.get(seq)
        if entry is None:
            entry = {
                "digest": None, "payload": None, "timestamp": 0, "client": 0,
                "view": self.view, "preprepare": None,
                "prepares": [], "commits": [],
                "prepared": False, "committed": False, "executed": False,
                "commit_sent": False,
            }
            self.log[seq] = entry
        return entry

    # ---------------------------------------------------------------- start

    def on_start(self) -> None:
        self.set_timer(STATUS_TIMER, self.config.status_interval,
                       periodic=True)

    # ------------------------------------------------------------- messages

    def on_message(self, src: NodeId, message: Message) -> None:
        handler = getattr(self, f"_on_{message.type_name.lower()}", None)
        if handler is not None:
            handler(src, message)

    # Request ------------------------------------------------------------

    def _on_request(self, src: NodeId, msg: Message) -> None:
        cli, ts = msg["client"], msg["timestamp"]
        cached = self.reply_cache.get(cli)
        if cached is not None and cached[0] >= ts:
            if cached[0] == ts:
                self.send(client(cli), Message("Reply", dict(cached[1])))
            return
        key = (cli, ts)
        if self.is_primary and not self.in_view_change:
            seq = self.assigned.get(key)
            if seq is None:
                self._propose(key, msg["payload"])
            else:
                # Retransmitted request for an assigned seq: re-send the
                # pre-prepare (recovery path for dropped pre-prepares).
                entry = self.log.get(seq)
                if entry is not None and entry["preprepare"] is not None:
                    self.broadcast(
                        Message("PrePrepare", dict(entry["preprepare"])))
        else:
            self.pending[key] = msg["payload"]
            if not self.node.timer_pending(PROGRESS_TIMER):
                self.set_timer(PROGRESS_TIMER, self.config.recovery_timeout)

    def _propose(self, key: Tuple[int, int], payload: bytes) -> None:
        self.next_seq += 1
        seq = self.next_seq
        self.assigned[key] = seq
        digest = digest_of(payload)
        fields = {
            "view": self.view, "seq": seq, "big_reqs": 0, "ndet_choices": 0,
            "digest": digest, "timestamp": key[1], "client": key[0],
            "payload": payload,
            "sig": self.auth.sign(self.view, seq, digest),
        }
        entry = self._entry(seq)
        entry.update(digest=digest, payload=payload, timestamp=key[1],
                     client=key[0], view=self.view, preprepare=dict(fields))
        entry["prepares"].append(self.index)  # pre-prepare is our prepare
        self.broadcast(Message("PrePrepare", fields))

    # PrePrepare -----------------------------------------------------------

    def _on_preprepare(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: allocation sizes trusted from the wire --
        self.unchecked_alloc(msg["big_reqs"], "big request descriptors")
        self.unchecked_alloc(msg["ndet_choices"], "non-deterministic choices")

        view, seq = msg["view"], msg["seq"]
        if view != self.view or self.in_view_change:
            return
        if src != self.primary_of(view):
            return
        if not self.check_auth(msg["sig"], view, seq, msg["digest"]):
            return
        if seq <= self.stable_seq or seq > self.stable_seq + WATERMARK_WINDOW:
            # Out-of-watermark sequence number: ask the world where we are.
            self._send_status()
            return
        if msg["digest"] != digest_of(msg["payload"]):
            return
        entry = self._entry(seq)
        if entry["digest"] is not None and entry["digest"] != msg["digest"]:
            return  # conflicting pre-prepare: first one wins
        first_time = entry["preprepare"] is None
        entry.update(digest=msg["digest"], payload=msg["payload"],
                     timestamp=msg["timestamp"], client=msg["client"],
                     view=view, preprepare=dict(msg.fields))
        if first_time:
            # The primary's pre-prepare counts as its prepare vote.
            if src.index not in entry["prepares"]:
                entry["prepares"].append(src.index)
            if self.index not in entry["prepares"]:
                entry["prepares"].append(self.index)
            prepare = Message("Prepare", {
                "view": view, "seq": seq, "digest": msg["digest"],
                "replica": self.index,
                "sig": self.auth.sign(view, seq, msg["digest"], self.index),
            })
            self.broadcast(prepare)
        self._check_prepared(seq)

    # Prepare --------------------------------------------------------------

    def _on_prepare(self, src: NodeId, msg: Message) -> None:
        if msg["view"] != self.view or self.in_view_change:
            return
        if not self.check_auth(msg["sig"], msg["view"], msg["seq"],
                               msg["digest"], msg["replica"]):
            return
        entry = self._entry(msg["seq"])
        if msg["replica"] not in entry["prepares"]:
            entry["prepares"].append(msg["replica"])
        self._check_prepared(msg["seq"])

    def _check_prepared(self, seq: int) -> None:
        entry = self.log.get(seq)
        if entry is None or entry["preprepare"] is None:
            return
        if entry["commit_sent"]:
            return
        # prepared: pre-prepare plus 2f prepares.  The primary's pre-prepare
        # counts as its prepare vote, so the uniform rule is 2f+1 voters.
        if len(entry["prepares"]) >= self.config.quorum:
            entry["prepared"] = True
            entry["commit_sent"] = True
            if self.index not in entry["commits"]:
                entry["commits"].append(self.index)
            commit = Message("Commit", {
                "view": entry["view"], "seq": seq, "digest": entry["digest"],
                "replica": self.index,
                "sig": self.auth.sign(entry["view"], seq, entry["digest"],
                                      self.index),
            })
            self.broadcast(commit)
            self._check_committed(seq)

    # Commit ---------------------------------------------------------------

    def _on_commit(self, src: NodeId, msg: Message) -> None:
        if msg["view"] != self.view or self.in_view_change:
            return
        if not self.check_auth(msg["sig"], msg["view"], msg["seq"],
                               msg["digest"], msg["replica"]):
            return
        entry = self._entry(msg["seq"])
        if msg["replica"] not in entry["commits"]:
            entry["commits"].append(msg["replica"])
        self._check_committed(msg["seq"])

    def _check_committed(self, seq: int) -> None:
        entry = self.log.get(seq)
        if entry is None or not entry["prepared"]:
            return
        if len(entry["commits"]) >= self.config.quorum:
            entry["committed"] = True
            self._try_execute()

    # Execution ------------------------------------------------------------

    def _try_execute(self) -> None:
        while True:
            entry = self.log.get(self.last_exec + 1)
            if entry is None or not entry["committed"] or entry["executed"]:
                break
            self.last_exec += 1
            entry["executed"] = True
            cached = self.reply_cache.get(entry["client"])
            if cached is None or entry["timestamp"] > cached[0]:
                self.executed_count += 1
                self._reply(entry)
            self.pending.pop((entry["client"], entry["timestamp"]), None)
            if self.last_exec % self.config.checkpoint_interval == 0:
                self._broadcast_checkpoint(self.last_exec)
        if not self.pending:
            self.cancel_timer(PROGRESS_TIMER)

    def _reply(self, entry: Dict[str, Any]) -> None:
        result = digest_of(entry["payload"])[:8]
        fields = {
            "view": entry["view"], "timestamp": entry["timestamp"],
            "client": entry["client"], "replica": self.index,
            "result": result,
            "sig": self.auth.sign(entry["timestamp"], entry["client"],
                                  self.index, result),
        }
        self.reply_cache[entry["client"]] = (entry["timestamp"], dict(fields))
        self.send(client(entry["client"]), Message("Reply", fields))

    # Checkpoints ------------------------------------------------------------

    def _broadcast_checkpoint(self, seq: int) -> None:
        state_digest = digest_of(f"state@{seq}".encode())
        msg = Message("Checkpoint", {
            "seq": seq, "digest": state_digest, "replica": self.index,
            "sig": self.auth.sign(seq, state_digest, self.index),
        })
        self.broadcast(msg)
        self._record_checkpoint(seq, state_digest, self.index)

    def _on_checkpoint(self, src: NodeId, msg: Message) -> None:
        if not self.check_auth(msg["sig"], msg["seq"], msg["digest"],
                               msg["replica"]):
            return
        self._record_checkpoint(msg["seq"], msg["digest"], msg["replica"])

    def _record_checkpoint(self, seq: int, digest: bytes, voter: int) -> None:
        if seq <= self.stable_seq:
            return
        votes = self.checkpoint_votes.setdefault(seq, {}).setdefault(
            digest, [])
        if voter not in votes:
            votes.append(voter)
        if len(votes) >= self.config.quorum:
            self.stable_seq = seq
            for old in [s for s in self.log if s <= seq]:
                del self.log[old]
            for old in [s for s in self.checkpoint_votes if s <= seq]:
                del self.checkpoint_votes[old]

    # Status protocol --------------------------------------------------------

    def on_timer(self, name: str) -> None:
        if name == STATUS_TIMER:
            self._send_status()
        elif name == PROGRESS_TIMER:
            self._start_view_change(self.view + 1)

    def _send_status(self) -> None:
        msg = Message("Status", {
            "replica": self.index, "view": self.view,
            "last_exec": self.last_exec, "stable_seq": self.stable_seq,
            "nmsgs": 0,
            "sig": self.auth.sign(self.index, self.view, self.last_exec),
        })
        self.broadcast(msg)

    def _on_status(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: the piggybacked-message count is trusted --
        self.unchecked_alloc(msg["nmsgs"], "piggybacked messages")
        if not self.check_auth(msg["sig"], msg["replica"], msg["view"],
                               msg["last_exec"]):
            return
        their_last = msg["last_exec"]
        if their_last >= self.last_exec:
            return
        if msg["stable_seq"] < self.stable_seq:
            # The sender's stable point is behind ours: ship the stable
            # checkpoint so it can skip ahead ("if the delay becomes too
            # long, the receiver transmits a stable checkpoint instead of
            # sending all individual messages").
            state_digest = digest_of(f"state@{self.stable_seq}".encode())
            self.send(src, Message("Checkpoint", {
                "seq": self.stable_seq, "digest": state_digest,
                "replica": self.index,
                "sig": self.auth.sign(self.stable_seq, state_digest,
                                      self.index),
            }))
        # Retransmit every logged message the sender seems to be missing.
        # Entries at or below our stable point are gone from the log, so the
        # storm is bounded by the checkpoint distance and the window cap.
        first = max(their_last, self.stable_seq) + 1
        last = min(self.last_exec, first + self.config.retransmit_window - 1)
        if last >= first:
            # Walking the log and re-serializing stored certificates is real
            # work; the C++ implementation pays it per retransmitted entry.
            self.node.cpu.charge(self.now(), (last - first + 1) * 0.0002)
        for seq in range(first, last + 1):
            entry = self.log.get(seq)
            if entry is None:
                continue
            self._retransmit_entry(src, entry, seq)

    def _retransmit_entry(self, dst: NodeId, entry: Dict[str, Any],
                          seq: int) -> None:
        if entry["preprepare"] is not None:
            self.send(dst, Message("PrePrepare", dict(entry["preprepare"])))
            self.retransmissions_sent += 1
        if self.index in entry["prepares"] and not self.is_primary:
            self.send(dst, Message("Prepare", {
                "view": entry["view"], "seq": seq, "digest": entry["digest"],
                "replica": self.index,
                "sig": self.auth.sign(entry["view"], seq, entry["digest"],
                                      self.index),
            }))
            self.retransmissions_sent += 1
        if self.index in entry["commits"]:
            self.send(dst, Message("Commit", {
                "view": entry["view"], "seq": seq, "digest": entry["digest"],
                "replica": self.index,
                "sig": self.auth.sign(entry["view"], seq, entry["digest"],
                                      self.index),
            }))
            self.retransmissions_sent += 1

    # View change -------------------------------------------------------------

    def _start_view_change(self, new_view: int) -> None:
        if new_view <= self.vc_sent_for:
            return
        self.vc_sent_for = new_view
        self.in_view_change = True
        prepared_count = sum(1 for e in self.log.values() if e["prepared"])
        msg = Message("ViewChange", {
            "new_view": new_view, "last_stable": self.stable_seq,
            "nprepared": prepared_count,
            "ncheckpoints": len(self.checkpoint_votes),
            "replica": self.index,
            "sig": self.auth.sign(new_view, self.stable_seq, self.index),
        })
        self.broadcast(msg)
        self._record_vc(new_view, self.index)
        # keep a timer running so a failed view change escalates
        self.set_timer(PROGRESS_TIMER, self.config.recovery_timeout)

    def _on_viewchange(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaws: both certificate sizes are trusted --
        self.unchecked_alloc(msg["nprepared"], "prepared certificates")
        self.native_assert(msg["ncheckpoints"] >= 0,
                           "checkpoint certificate count non-negative")
        self.unchecked_alloc(msg["ncheckpoints"], "checkpoint certificates")
        if not self.check_auth(msg["sig"], msg["new_view"],
                               msg["last_stable"], msg["replica"]):
            return
        nv = msg["new_view"]
        if nv <= self.view and not (nv == self.view and self.in_view_change):
            return
        self._record_vc(nv, msg["replica"])

    def _record_vc(self, new_view: int, voter: int) -> None:
        votes = self.vc_votes.setdefault(new_view, [])
        if voter not in votes:
            votes.append(voter)
        # join rule: f+1 view changes for a higher view pull us along
        if (len(votes) >= self.config.f + 1
                and new_view > self.vc_sent_for):
            self._start_view_change(new_view)
        if (len(votes) >= self.config.quorum
                and self.primary_of(new_view) == self.node_id
                and new_view > self.view):
            self.broadcast(Message("NewView", {
                "view": new_view, "nvc": len(votes), "primary": self.index,
                "sig": self.auth.sign(new_view, self.index),
            }))
            self._enter_view(new_view)

    def _on_newview(self, src: NodeId, msg: Message) -> None:
        view = msg["view"]
        if view < self.view:
            return
        if msg["nvc"] < self.config.quorum:
            return  # malformed: not enough view-change proof
        if src != self.primary_of(view):
            return
        if not self.check_auth(msg["sig"], view, msg["primary"]):
            return
        self._enter_view(view)

    def _enter_view(self, view: int) -> None:
        self.view = view
        self.in_view_change = False
        self.cancel_timer(PROGRESS_TIMER)
        if self.is_primary:
            self.next_seq = max(self.next_seq, self.last_exec,
                                self.stable_seq)
            # Re-propose every pending, not-yet-executed request.
            for key, payload in sorted(self.pending.items()):
                if key not in self.assigned:
                    self._propose(key, payload)
        elif self.pending:
            self.set_timer(PROGRESS_TIMER, self.config.recovery_timeout)

    # ------------------------------------------------------------- snapshot

    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state.update({
            "next_seq": self.next_seq,
            "last_exec": self.last_exec,
            "stable_seq": self.stable_seq,
            "log": {seq: _copy_entry(e) for seq, e in self.log.items()},
            "assigned": dict(self.assigned),
            "pending": dict(self.pending),
            "reply_cache": {c: (ts, dict(f))
                            for c, (ts, f) in self.reply_cache.items()},
            "checkpoint_votes": {
                seq: {d: list(v) for d, v in by_digest.items()}
                for seq, by_digest in self.checkpoint_votes.items()},
            "vc_votes": {v: list(votes)
                         for v, votes in self.vc_votes.items()},
            "vc_sent_for": self.vc_sent_for,
            "in_view_change": self.in_view_change,
            "executed_count": self.executed_count,
            "retransmissions_sent": self.retransmissions_sent,
        })
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        super().restore_state(state)
        self.next_seq = state["next_seq"]
        self.last_exec = state["last_exec"]
        self.stable_seq = state["stable_seq"]
        self.log = {seq: _copy_entry(e) for seq, e in state["log"].items()}
        self.assigned = dict(state["assigned"])
        self.pending = dict(state["pending"])
        self.reply_cache = {c: (ts, dict(f))
                            for c, (ts, f) in state["reply_cache"].items()}
        self.checkpoint_votes = {
            seq: {d: list(v) for d, v in by_digest.items()}
            for seq, by_digest in state["checkpoint_votes"].items()}
        self.vc_votes = {v: list(votes)
                         for v, votes in state["vc_votes"].items()}
        self.vc_sent_for = state["vc_sent_for"]
        self.in_view_change = state["in_view_change"]
        self.executed_count = state["executed_count"]
        self.retransmissions_sent = state["retransmissions_sent"]


def _copy_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(entry)
    out["prepares"] = list(entry["prepares"])
    out["commits"] = list(entry["commits"])
    if entry["preprepare"] is not None:
        out["preprepare"] = dict(entry["preprepare"])
    return out
