"""Total Order Multicast wire protocol (classroom target, Section V-D)."""

from __future__ import annotations

from repro.wire import ProtocolCodec, ProtocolSchema, parse_schema

TOM_SCHEMA_TEXT = """
protocol tom

message Publish = 1 {
    sender:    u16
    local_seq: u32
    sent_at:   u64
    payload:   varbytes<u16>
}

message Sequence = 2 {
    global_seq: u32
    sender:     u16
    local_seq:  u32
}
"""

TOM_SCHEMA: ProtocolSchema = parse_schema(TOM_SCHEMA_TEXT)
TOM_CODEC = ProtocolCodec(TOM_SCHEMA)
