"""The network emulator.

This is the reproduction of the paper's modified NS3: it carries every
message of the distributed system as packets over emulated devices and
links, exposes the ingress interception hook the malicious proxy plugs into,
and supports the four operations the paper had to add for execution
branching — **save**, **load**, **freeze**, and **resume**.

Mechanics of a transmission (``transmit``):

1. The source transport hands the emulator a message payload.
2. If an interceptor is installed and claims the message, its verdict is
   applied: pass, drop, rewrite into a set of (possibly delayed, diverted,
   duplicated, or mutated) deliveries, or *hold* — park the message and
   interrupt the kernel so the controller can branch at this injection point.
3. Each delivery is fragmented into MTU packets; packets pass through the
   source host's net device (serial per-packet processing — the Fig. 4
   bottleneck) and then the path's propagation delay and bandwidth.
4. At the destination the message is reassembled and handed to the host's
   receiver callback.

Every in-flight item (pending egress, packet on the wire, partial
reassembly, held or frozen messages) is tracked as plain data so the whole
emulator state can be saved and reloaded, and freezing stops any further
delivery to hosts while still accepting new transmissions — the same
behaviour the paper implements inside NS3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import NetworkError
from repro.common.ids import NodeId
from repro.common.logging import EventLog
from repro.common.rng import RandomStream
from repro.faults.models import LinkFaultBank
from repro.sim.events import PRIORITY_NETWORK
from repro.sim.kernel import SimKernel
from repro.netem.devices import BundledDevice, NetDevice, make_device
from repro.netem.packets import (MessageEnvelope, Packet, ReassemblyBuffer,
                                 envelope_from_record, envelope_to_record,
                                 fragment, packet_from_record,
                                 packet_to_record)
from repro.netem.topology import LanTopology, Topology

Receiver = Callable[[MessageEnvelope], None]


@dataclass
class Delivery:
    """One outgoing copy of an intercepted message."""

    dst: NodeId
    payload: bytes
    extra_delay: float = 0.0


class Verdict:
    """Interceptor decision for one message."""

    PASS = "pass"
    DROP = "drop"
    REWRITE = "rewrite"
    HOLD = "hold"

    def __init__(self, kind: str, deliveries: Optional[List[Delivery]] = None,
                 hold_tag: Optional[str] = None) -> None:
        self.kind = kind
        self.deliveries = deliveries or []
        self.hold_tag = hold_tag

    @classmethod
    def passthrough(cls) -> "Verdict":
        return cls(cls.PASS)

    @classmethod
    def drop(cls) -> "Verdict":
        return cls(cls.DROP)

    @classmethod
    def rewrite(cls, deliveries: List[Delivery]) -> "Verdict":
        return cls(cls.REWRITE, deliveries=deliveries)

    @classmethod
    def hold(cls, tag: str) -> "Verdict":
        return cls(cls.HOLD, hold_tag=tag)


Interceptor = Callable[[MessageEnvelope], Verdict]


@dataclass
class HostPort:
    """Emulator-side state of one attached host."""

    node_id: NodeId
    device: NetDevice
    receiver: Optional[Receiver] = None
    reassembly: ReassemblyBuffer = field(default_factory=ReassemblyBuffer)
    messages_in: int = 0
    messages_out: int = 0
    packets_in: int = 0


@dataclass
class EmulatorStats:
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped_by_proxy: int = 0
    messages_blackholed: int = 0
    packets_forwarded: int = 0
    packets_dropped_overflow: int = 0
    # Environmental (chaos-layer) drops, each counted distinctly from
    # device overflow so reports can attribute loss to its cause.
    packets_dropped_loss: int = 0
    packets_dropped_corrupt: int = 0
    packets_dropped_down: int = 0
    packets_dropped_partition: int = 0

    def as_tuple(self) -> tuple:
        return (self.messages_sent, self.messages_delivered,
                self.messages_dropped_by_proxy, self.messages_blackholed,
                self.packets_forwarded, self.packets_dropped_overflow,
                self.packets_dropped_loss, self.packets_dropped_corrupt,
                self.packets_dropped_down, self.packets_dropped_partition)

    def load_tuple(self, values: tuple) -> None:
        values = tuple(values)
        # Older snapshots predate the chaos-layer counters; pad with zeros.
        values += (0,) * (10 - len(values))
        (self.messages_sent, self.messages_delivered,
         self.messages_dropped_by_proxy, self.messages_blackholed,
         self.packets_forwarded, self.packets_dropped_overflow,
         self.packets_dropped_loss, self.packets_dropped_corrupt,
         self.packets_dropped_down, self.packets_dropped_partition) = values


class NetworkEmulator:
    """Message- and packet-level network emulation on the sim kernel."""

    def __init__(self, kernel: SimKernel, topology: Optional[Topology] = None,
                 device_kind: str = "BundledDevice",
                 log: Optional[EventLog] = None,
                 instruments=None) -> None:
        self.kernel = kernel
        #: optional world-owned InstrumentRegistry; counters here mirror
        #: :class:`EmulatorStats` but participate in telemetry snapshots
        self.instruments = instruments
        self.topology = topology or LanTopology()
        self.device_kind = device_kind
        self.log = log or EventLog(lambda: kernel.now)
        self._hosts: Dict[NodeId, HostPort] = {}
        self._interceptor: Optional[Interceptor] = None
        self._msg_seq = 0
        self._event_seq = 0
        self._frozen = False
        # In-flight bookkeeping: eid -> (kind, due_time, record); kinds are
        # "egress" (message awaiting device admission, possibly delayed by a
        # proxy action) and "deliver" (packet crossing the wire).
        self._in_flight: Dict[int, Tuple[str, float, tuple]] = {}
        self._handles: Dict[int, object] = {}
        # Messages parked by a HOLD verdict: tag -> envelope record.
        self._held: Dict[str, tuple] = {}
        # Deliveries that arrived while frozen: list of packet records.
        self._frozen_packets: List[tuple] = []
        # Transmissions accepted while frozen: (envelope record, delay,
        # via_device) triples.
        self._frozen_egress: List[Tuple[tuple, float, bool]] = []
        # Controller-side observers: fn(event, envelope) on "sent" and
        # "delivered".  Not part of emulator state (never serialized).
        self._observers: List[Callable[[str, MessageEnvelope], None]] = []
        #: forensic causal tap (see :mod:`repro.forensics.causality`):
        #: like observers it is controller-side and never serialized; None
        #: (the default) makes every hook a single attribute test.
        self.causal_tap = None
        #: msg_seq of the envelope currently being handed to a receiver
        #: callback — read by nodes to tag queued CPU work with its cause
        self.current_delivery_seq: Optional[int] = None
        #: msg_seq of the message whose handler is currently running on
        #: some node (set by Node._dispatch); sends made inside the handler
        #: inherit it as their causal parent
        self.handler_cause: Optional[int] = None
        self.stats = EmulatorStats()
        # Chaos layer: per-path fault processes and the RNG stream they
        # draw from.  A world-owned emulator gets a registry stream (so
        # the registry snapshot covers it); a standalone emulator lazily
        # creates a local stream that save_state serializes itself.
        self.faults = LinkFaultBank()
        self.fault_rng: Optional[RandomStream] = None
        self._local_fault_rng = False

    # ----------------------------------------------------------------- hosts

    def register_host(self, node_id: NodeId,
                      device: Optional[NetDevice] = None) -> HostPort:
        if node_id in self._hosts:
            raise NetworkError(f"host {node_id} already registered")
        port = HostPort(node_id, device or make_device(self.device_kind))
        self._hosts[node_id] = port
        return port

    def set_receiver(self, node_id: NodeId, receiver: Receiver) -> None:
        self._port(node_id).receiver = receiver

    def _port(self, node_id: NodeId) -> HostPort:
        try:
            return self._hosts[node_id]
        except KeyError:
            raise NetworkError(f"host {node_id} is not registered") from None

    def hosts(self) -> List[NodeId]:
        return sorted(self._hosts.keys())

    def port_stats(self, node_id: NodeId) -> HostPort:
        return self._port(node_id)

    # ------------------------------------------------------------ intercept

    def set_interceptor(self, interceptor: Optional[Interceptor]) -> None:
        self._interceptor = interceptor

    # ------------------------------------------------------------ observers

    def add_observer(self,
                     observer: Callable[[str, MessageEnvelope], None]) -> None:
        """Subscribe to "sent"/"delivered" message events (read-only)."""
        self._observers.append(observer)

    def _notify(self, event: str, envelope: MessageEnvelope) -> None:
        for observer in self._observers:
            observer(event, envelope)

    def _count(self, name: str, n: int = 1) -> None:
        ins = self.instruments
        if ins is not None and ins.enabled:
            ins.count(name, n)

    # ------------------------------------------------------------- transmit

    def transmit(self, src: NodeId, dst: NodeId, transport: str,
                 payload: bytes, delay: float = 0.0) -> int:
        """Send one application message from ``src`` to ``dst``.

        ``delay`` postpones egress (used by transports to model connection
        setup); the interceptor still sees the message at send time, as the
        proxy sits where traffic leaves the sending VM.
        """
        self._port(src)  # the sender must be attached: a platform invariant
        if dst not in self._hosts:
            # An address nothing listens on (e.g. a lying attack rewrote a
            # node-id field): the network blackholes it, as a real LAN would.
            self.stats.messages_blackholed += 1
            self._count("netem.messages_blackholed")
            return -1
        self._msg_seq += 1
        envelope = MessageEnvelope(self._msg_seq, src, dst, transport, payload)
        self._port(src).messages_out += 1
        self.stats.messages_sent += 1
        self._count("netem.messages_sent")
        if self._observers:
            self._notify("sent", envelope)

        verdict = Verdict.passthrough()
        if self._interceptor is not None:
            verdict = self._interceptor(envelope)
        if self.causal_tap is not None:
            self.causal_tap.on_send(envelope, self.handler_cause,
                                    verdict.kind)

        if verdict.kind == Verdict.DROP:
            self.stats.messages_dropped_by_proxy += 1
            self._count("netem.proxy_drops")
            self.log.emit("netem", "proxy_drop", msg=envelope.msg_seq)
        elif verdict.kind == Verdict.HOLD:
            self._held[verdict.hold_tag] = envelope_to_record(envelope)
            self.log.emit("netem", "proxy_hold", msg=envelope.msg_seq,
                          tag=verdict.hold_tag)
        elif verdict.kind == Verdict.REWRITE:
            # Proxy-produced deliveries are injected inside the emulator,
            # past the sending host's net device (the proxy lives at the
            # NS3 node's application layer, not in the guest).
            for delivery in verdict.deliveries:
                self._submit_egress(
                    MessageEnvelope(envelope.msg_seq, src, delivery.dst,
                                    transport, delivery.payload),
                    delay + delivery.extra_delay, via_device=False)
        else:
            self._submit_egress(envelope, delay)
        return envelope.msg_seq

    # ---------------------------------------------------------- held messages

    def held_tags(self) -> List[str]:
        return sorted(self._held.keys())

    def peek_held(self, tag: str) -> MessageEnvelope:
        try:
            return envelope_from_record(self._held[tag])
        except KeyError:
            raise NetworkError(f"no held message tagged {tag!r}") from None

    def discard_held(self, tag: str) -> None:
        """Drop a parked message without delivering it (error cleanup)."""
        self._held.pop(tag, None)

    def release_held(self, tag: str,
                     deliveries: Optional[List[Delivery]] = None) -> None:
        """Release a parked message, optionally rewritten by the controller."""
        envelope = self.peek_held(tag)
        del self._held[tag]
        if self.causal_tap is not None:
            self.causal_tap.on_release(envelope, deliveries)
        if deliveries is None:
            self._submit_egress(envelope, 0.0, via_device=False)
            return
        if not deliveries:
            self.stats.messages_dropped_by_proxy += 1
            self._count("netem.proxy_drops")
            return
        for delivery in deliveries:
            self._submit_egress(
                MessageEnvelope(envelope.msg_seq, envelope.src, delivery.dst,
                                envelope.transport, delivery.payload),
                delivery.extra_delay, via_device=False)

    def drop_held(self, tag: str) -> None:
        self.peek_held(tag)
        del self._held[tag]
        self.stats.messages_dropped_by_proxy += 1
        self._count("netem.proxy_drops")

    # ------------------------------------------------------------- internals

    def _next_eid(self) -> int:
        self._event_seq += 1
        return self._event_seq

    def _submit_egress(self, envelope: MessageEnvelope, delay: float,
                       via_device: bool = True) -> None:
        if self.causal_tap is not None:
            self.causal_tap.on_egress(envelope, delay, via_device)
        if self._frozen:
            self._frozen_egress.append(
                (envelope_to_record(envelope), delay, via_device))
            return
        if delay > 0:
            eid = self._next_eid()
            due = self.kernel.now + delay
            record = (envelope_to_record(envelope), via_device)
            self._in_flight[eid] = ("egress", due, record)
            self._handles[eid] = self.kernel.schedule(
                delay, self._egress_due, eid, priority=PRIORITY_NETWORK)
        else:
            self._egress_now(envelope, via_device)

    def _egress_due(self, eid: int) -> None:
        entry = self._in_flight.pop(eid, None)
        self._handles.pop(eid, None)
        if entry is None:
            return
        __, __, record = entry
        env_record, via_device = record
        self._egress_now(envelope_from_record(tuple(env_record)), via_device)

    #: retransmission timeout for TCP packets lost to device overflow
    TCP_RTO = 0.2

    def _egress_now(self, envelope: MessageEnvelope,
                    via_device: bool = True) -> None:
        """Push a message through the source device onto the wire."""
        for packet in fragment(envelope):
            self._admit_packet(packet, via_device)

    def _ensure_fault_rng(self) -> RandomStream:
        if self.fault_rng is None:
            self.fault_rng = RandomStream(0, "netem.faults.local")
            self._local_fault_rng = True
        return self.fault_rng

    def _schedule_tcp_retry(self, packet: Packet) -> None:
        """Arm an RTO retransmission for a lost TCP packet.

        Every non-proxy loss path (device overflow, bursty link loss,
        corruption, down links, partitions) routes through here, so a TCP
        flow survives transient faults the way a real stack would: at most
        one pending retry per lost packet, no event growth while blocked.
        """
        if packet.transport != "tcp":
            return
        eid = self._next_eid()
        due = self.kernel.now + self.TCP_RTO
        self._in_flight[eid] = ("retry", due, packet_to_record(packet))
        self._handles[eid] = self.kernel.schedule_at(
            due, self._retry_due, eid, priority=PRIORITY_NETWORK)

    def _admit_packet(self, packet: Packet, via_device: bool = True) -> None:
        port = self._port(packet.src)
        path = self.topology.path(packet.src, packet.dst)
        src_name, dst_name = str(packet.src), str(packet.dst)
        blocked = self.topology.blocked(src_name, dst_name)
        if blocked is not None:
            # The link carries nothing while down or partitioned; TCP keeps
            # retrying, so traffic resumes when connectivity heals.
            if blocked == "down":
                self.stats.packets_dropped_down += 1
                self._count("faults.packets_link_down")
            else:
                self.stats.packets_dropped_partition += 1
                self._count("faults.packets_partitioned")
            self._schedule_tcp_retry(packet)
            return
        if via_device:
            finish = port.device.admit(self.kernel.now, packet)
            if finish is None:
                self.stats.packets_dropped_overflow += 1
                self._count("netem.packets_dropped_overflow")
                self._schedule_tcp_retry(packet)
                return
        else:
            # Proxy-produced deliveries are injected past the source
            # device but still cross the (possibly faulty) link.
            finish = self.kernel.now
        arrival = finish + path.delay + packet.wire_size / path.bandwidth
        kind = "deliver"
        if self.faults.active and packet.src != packet.dst:
            lost, corrupted, extra = self.faults.evaluate(
                src_name, dst_name, self._ensure_fault_rng())
            if lost:
                self.stats.packets_dropped_loss += 1
                self._count("faults.packets_lost")
                self._schedule_tcp_retry(packet)
                return
            arrival += extra
            if corrupted:
                # The payload is damaged in flight: the packet still
                # occupies the wire and arrives, but the receive-side
                # checksum rejects it there (see _corrupt_due).
                kind = "corrupt"
        eid = self._next_eid()
        record = packet_to_record(packet)
        self._in_flight[eid] = (kind, arrival, record)
        callback = self._corrupt_due if kind == "corrupt" else self._deliver_due
        self._handles[eid] = self.kernel.schedule_at(
            arrival, callback, eid, priority=PRIORITY_NETWORK)
        self.stats.packets_forwarded += 1
        self._count("netem.packets_forwarded")

    def _retry_due(self, eid: int) -> None:
        entry = self._in_flight.pop(eid, None)
        self._handles.pop(eid, None)
        if entry is None:
            return
        __, __, record = entry
        self._admit_packet(packet_from_record(record))

    def _corrupt_due(self, eid: int) -> None:
        """A corrupted packet reaches the destination and fails its checksum.

        Counted distinctly from overflow (``packets_dropped_corrupt``); the
        drop is a network-side event, so it fires even while frozen — the
        packet never reaches the host either way.
        """
        entry = self._in_flight.pop(eid, None)
        self._handles.pop(eid, None)
        if entry is None:
            return
        __, __, record = entry
        packet = packet_from_record(record)
        self.stats.packets_dropped_corrupt += 1
        self._count("faults.packets_corrupted")
        self.log.emit("netem", "corrupt_drop", src=str(packet.src),
                      dst=str(packet.dst))
        self._schedule_tcp_retry(packet)

    def _deliver_due(self, eid: int) -> None:
        entry = self._in_flight.pop(eid, None)
        self._handles.pop(eid, None)
        if entry is None:
            return
        __, __, record = entry
        if self._frozen:
            # The emulator keeps creating packet objects while frozen but
            # sends nothing to the VMs (Section III-C / IV-C).
            self._frozen_packets.append(record)
            return
        self._ingress(packet_from_record(record))

    def _ingress(self, packet: Packet) -> None:
        port = self._port(packet.dst)
        port.packets_in += 1
        envelope = port.reassembly.add(packet)
        if envelope is None:
            return
        port.messages_in += 1
        self.stats.messages_delivered += 1
        self._count("netem.messages_delivered")
        self.log.emit("netem", "deliver", msg=envelope.msg_seq,
                      dst=str(envelope.dst), size=envelope.size)
        if self.causal_tap is not None:
            self.causal_tap.on_deliver(envelope)
        if self._observers:
            self._notify("delivered", envelope)
        if port.receiver is not None:
            # Receivers run synchronously; while one does, queued CPU work
            # can read which message caused it (forensic lineage tagging).
            self.current_delivery_seq = envelope.msg_seq
            try:
                port.receiver(envelope)
            finally:
                self.current_delivery_seq = None

    # -------------------------------------------------------- freeze/resume

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        """Stop delivering to hosts; keep accepting and parking new traffic."""
        self._frozen = True

    def resume_emulation(self) -> None:
        """Leave frozen mode and flush everything parked while frozen."""
        self._frozen = False
        packets, self._frozen_packets = self._frozen_packets, []
        for record in packets:
            self._ingress(packet_from_record(record))
        egress, self._frozen_egress = self._frozen_egress, []
        for record, delay, via_device in egress:
            self._submit_egress(envelope_from_record(record), delay, via_device)

    # --------------------------------------------------------- save/load

    def save_state(self) -> dict:
        """Serialize all in-flight network state to plain data."""
        return {
            "msg_seq": self._msg_seq,
            "event_seq": self._event_seq,
            "frozen": self._frozen,
            "in_flight": [
                (eid, kind, due, record)
                for eid, (kind, due, record) in sorted(self._in_flight.items())
            ],
            "held": dict(self._held),
            "frozen_packets": list(self._frozen_packets),
            "frozen_egress": list(self._frozen_egress),
            "devices": {str(n): p.device.save_state()
                        for n, p in self._hosts.items()},
            "reassembly": {str(n): p.reassembly.save_state()
                           for n, p in self._hosts.items()},
            "counters": {str(n): (p.messages_in, p.messages_out, p.packets_in)
                         for n, p in self._hosts.items()},
            "stats": self.stats.as_tuple(),
            # Chaos layer: fault processes, connectivity overlay, and (for
            # standalone emulators only) the local fault RNG.  A registry
            # stream is covered by the world's RNG snapshot instead.
            "faults": self.faults.save_state(),
            "link_state": self.topology.save_link_state(),
            "fault_rng": (self.fault_rng.save_state()
                          if self._local_fault_rng and self.fault_rng
                          else None),
        }

    def load_state(self, state: dict) -> None:
        """Restore in-flight state and re-schedule deliveries on the kernel."""
        for handle in self._handles.values():
            handle.cancel()
        self._handles.clear()
        self._in_flight.clear()

        self._msg_seq = state["msg_seq"]
        self._event_seq = state["event_seq"]
        self._frozen = state["frozen"]
        self._held = dict(state["held"])
        self._frozen_packets = list(state["frozen_packets"])
        self._frozen_egress = [(tuple(r), d, v)
                               for r, d, v in state["frozen_egress"]]

        by_str = {str(n): p for n, p in self._hosts.items()}
        for name, dev_state in state["devices"].items():
            by_str[name].device.load_state(dev_state)
        for name, reasm_state in state["reassembly"].items():
            by_str[name].reassembly.load_state(reasm_state)
        for name, (m_in, m_out, p_in) in state["counters"].items():
            port = by_str[name]
            port.messages_in, port.messages_out, port.packets_in = m_in, m_out, p_in
        self.stats.load_tuple(state["stats"])

        self.faults.load_state(state.get("faults", {}))
        self.topology.load_link_state(state.get("link_state", {}))
        rng_state = state.get("fault_rng")
        if rng_state is not None:
            self._ensure_fault_rng().load_state(rng_state)

        callbacks = {"egress": self._egress_due, "deliver": self._deliver_due,
                     "retry": self._retry_due, "corrupt": self._corrupt_due}
        for eid, kind, due, record in state["in_flight"]:
            self._in_flight[eid] = (kind, due, tuple(record))
            when = max(due, self.kernel.now)
            self._handles[eid] = self.kernel.schedule_at(
                when, callbacks[kind], eid, priority=PRIORITY_NETWORK)
