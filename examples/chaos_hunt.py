#!/usr/bin/env python3
"""Chaos layer end to end: hunt under faults, then validate robustness.

A hunt on a pristine emulated network can surface candidates whose damage
would equally well be produced by a lossy link — false positives in any
real deployment.  This example demonstrates the full chaos pipeline:

1. a PBFT hunt with a declarative :class:`FaultSchedule` armed — bursty
   Gilbert–Elliott loss, payload corruption, reorder jitter, a link flap,
   and a scheduled crash+restart of a benign replica — all deterministic
   and JSON-serializable;
2. robustness validation: the found attacks (plus one scripted
   false positive) re-measured under perturbed environments, each scored
   against *that environment's own* benign baseline, so ambient damage
   subtracts out;
3. the determinism guarantee: the same seed and schedule reproduce the
   hunt byte-for-byte.

Run:  python examples/chaos_hunt.py
"""

import json
from types import SimpleNamespace

from repro.analysis.reports import hunt_result_to_dict
from repro.attacks.actions import AttackScenario, DelayAction
from repro.attacks.space import ActionSpaceConfig
from repro.faults.schedule import FaultSchedule
from repro.faults.validation import validate_findings
from repro.search.hunt import hunt
from repro.systems.pbft import pbft_testbed

SPACE = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(1.0,),
                          duplicate_counts=(50,), include_divert=False,
                          include_lying=False)
FACTORY = pbft_testbed(malicious="primary", warmup=1.0, window=2.0)
KW = dict(seed=1, message_types=["PrePrepare"], space_config=SPACE,
          max_wait=5.0, max_passes=2)


def chaos_schedule() -> FaultSchedule:
    # Each rate is mild on its own, but they compose: the combined ambient
    # degradation must stay below the point where PBFT's view-change timers
    # start cascading, or the benign baseline itself flatlines and the
    # Δ-rule has nothing to compare against.
    schedule = FaultSchedule(seed=21)
    schedule.add("loss", 0.0, path="*", p_enter_bad=0.003, p_exit_bad=0.5)
    schedule.add("corrupt", 0.0, path="*", rate=0.002)
    schedule.add("jitter", 0.0, path="*", jitter=0.0003)
    schedule.add("flap", 1.5, a="replica2", b="replica3", down_for=0.4)
    schedule.add("crash", 2.2, node="replica3", restart_after=0.5)
    return schedule


def main() -> int:
    schedule = chaos_schedule()
    print("=== 1. PBFT hunt inside a perturbed environment ===")
    print(schedule.describe())
    print("(round-trips through JSON: --faults chaos.json on the CLI)")
    assert FaultSchedule.from_json(schedule.to_json()).to_dict() \
        == schedule.to_dict()

    result = hunt(FACTORY, fault_schedule=schedule, **KW)
    print(result.describe())
    assert result.findings, "the hunt should still find attacks under chaos"

    print("\n=== 2. robustness validation (real attack vs false positive) ===")
    # A scripted false positive: 1 ms of delay does nothing to PBFT — any
    # damage attributed to it in a noisy run came from the environment.
    false_positive = SimpleNamespace(
        scenario=AttackScenario("PrePrepare", DelayAction(0.001)))
    candidates = list(result.findings) + [false_positive]
    validation = validate_findings(FACTORY, candidates, environments=3,
                                   seed=KW["seed"], base_seed=KW["seed"],
                                   max_wait=5.0)
    print(validation.describe())
    fp = validation.result_named(false_positive.scenario.describe())
    assert fp.score == 0.0, "the false positive should not survive"
    for finding in result.findings:
        score = validation.result_named(finding.name).score
        assert score > fp.score
        print(f"-> {finding.name}: robustness {score:.0%} "
              f"(false positive: {fp.score:.0%})")

    print("\n=== 3. same seed + same schedule => byte-identical hunt ===")
    again = hunt(FACTORY, fault_schedule=chaos_schedule(), **KW)
    a = json.dumps(hunt_result_to_dict(result), sort_keys=True)
    b = json.dumps(hunt_result_to_dict(again), sort_keys=True)
    assert a == b, "chaos hunts must be reproducible"
    print(f"-> {len(a)} bytes of serialized hunt result, identical twice")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
