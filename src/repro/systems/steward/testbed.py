"""Steward testbed: two sites over a WAN, leader site plus one remote site.

The topology is hierarchical: 1 ms inside a site, ~18 ms between sites —
which is why Steward's baseline is ~20 upd/s rather than PBFT's ~150.
Threshold-cryptography verification costs are charged per received
GlobalViewChange / CCSUnion message, making duplication of those messages
the devastating attack the paper reports.
"""

from __future__ import annotations

from typing import Optional

from repro.common.ids import replica
from repro.common.units import millis
from repro.controller.harness import TestbedFactory, TestbedInstance
from repro.netem.topology import SiteTopology
from repro.runtime.cpu import CpuCostModel
from repro.systems.common.auth import Authenticator
from repro.systems.common.testbed import build_testbed
from repro.systems.steward.client import StewardClient
from repro.systems.steward.replica import StewardConfig, StewardReplica
from repro.systems.steward.schema import STEWARD_CODEC, STEWARD_SCHEMA

#: RSA-threshold verification charged per received message of these types
CCSUNION_VERIFY_COST = 0.004
GVC_VERIFY_COST = 0.030

#: message types exercised by a benign execution
STEWARD_ACTIVE_TYPES = ["Request", "PrePrepare", "Prepare", "Proposal",
                        "Accept", "GlobalOrder", "Reply", "GlobalViewChange",
                        "CCSUnion", "Status"]

MALICIOUS_ROLES = {
    "leader": 0,        # the global leader (leader-site representative)
    "remote_rep": 4,    # the remote site's representative
    "remote_backup": 5,  # an ordinary remote-site member
}


def steward_testbed(malicious: str = "leader",
                    config: Optional[StewardConfig] = None,
                    inter_site_delay: float = millis(18),
                    warmup: float = 4.0, window: float = 6.0,
                    message_types=None) -> TestbedFactory:
    """``malicious`` is one of ``leader``, ``remote_rep``, ``remote_backup``."""
    if malicious not in MALICIOUS_ROLES:
        raise ValueError(f"malicious must be one of {set(MALICIOUS_ROLES)}, "
                         f"got {malicious!r}")
    cfg = config or StewardConfig()
    malicious_index = MALICIOUS_ROLES[malicious]
    types = message_types if message_types is not None else (
        list(STEWARD_ACTIVE_TYPES))

    def factory(seed: int) -> TestbedInstance:
        auth = Authenticator("steward-deployment")
        site_of = {}
        for i in range(cfg.n):
            site_of[replica(i)] = cfg.site_of(i)
        from repro.common.ids import client as client_id
        for c in range(cfg.clients):
            site_of[client_id(c)] = 0  # clients sit at the leader site
        topology = SiteTopology(site_of, inter_delay=inter_site_delay)
        cost_model = CpuCostModel(verify_signatures=cfg.verify_signatures)
        return build_testbed(
            name=f"steward-malicious-{malicious}",
            schema=STEWARD_SCHEMA, codec=STEWARD_CODEC,
            replica_factory=lambda i: StewardReplica(i, cfg, auth),
            client_factory=lambda i: StewardClient(i, cfg, auth),
            n_replicas=cfg.n, n_clients=cfg.clients,
            malicious_indices=[malicious_index],
            seed=seed, warmup=warmup, window=window,
            cost_model=cost_model,
            type_costs={"CCSUnion": CCSUNION_VERIFY_COST,
                        "GlobalViewChange": GVC_VERIFY_COST},
            message_types=types, topology=topology)

    return factory
