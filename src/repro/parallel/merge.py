"""Deterministic merge: replay recorded shard traces in serial order.

Each merge function mirrors its serial algorithm's ``_run_pass`` control
flow exactly — same iteration order, same early stops, same quarantine
handling — but instead of driving the harness it replays the worker-recorded
:class:`~repro.parallel.recording.StepTrace` of every step it visits.
Replaying individual charges in the serial order makes the merged ledger
bitwise identical to a serial run's (float accumulation is order-sensitive),
which in turn makes every ``found_at`` and ``SupervisorEvent.at`` timestamp
— both defined as "ledger total when it happened" — land exactly.

Why the walk never needs a step the workers didn't probe:

* context acquisitions and greedy evaluations are probed unconditionally;
* weighted greedy walks actions in descending cluster weight and stops at
  the first attack.  Any action it visits is either (a) a non-attack, which
  its cluster's probe walked past, or (b) the stopping attack itself, which
  is its cluster's first non-quarantined attack in enumeration order — the
  exact point where the probe stopped.  Quarantined evaluations stop
  neither walk, in lockstep.

The self-healing layer (:mod:`repro.parallel.health`) reuses this pipeline
for poison tasks: a shard that kept killing its workers comes back as
synthetic probes whose traces carry no charges, only ``worker-fault`` +
``quarantine`` events (:meth:`StepTrace.quarantine_only`).  Replay emits
them like any recorded supervision event — the quarantine counter
increments, unknown kinds land in the event log — so a quarantined-by-
crash shard surfaces exactly like a scenario that burned its serial retry
budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.attacks.actions import AttackScenario, MaliciousAction
from repro.common.errors import SearchError
from repro.controller.costs import CostLedger
from repro.controller.monitor import AttackThreshold
from repro.controller.supervisor import (EVENT_QUARANTINE, EVENT_REBUILD,
                                         EVENT_RETRY, EVENT_WATCHDOG,
                                         QuarantinedScenario, SupervisorEvent,
                                         SupervisorStats)
from repro.parallel.recording import StepTrace
from repro.parallel.worker import (BaselineProbe, ScenarioProbe, StartupProbe,
                                   TypeProbe)
from repro.search.base import is_attack_sample
from repro.search.results import AttackFinding, SearchReport
from repro.search.weighted import ClusterWeights

_COUNTER_FOR_KIND = {
    EVENT_RETRY: "retries",
    EVENT_REBUILD: "rebuilds",
    EVENT_QUARANTINE: "quarantines",
    EVENT_WATCHDOG: "watchdog_trips",
}


def replay_trace(ledger: CostLedger, stats: SupervisorStats,
                 trace: StepTrace,
                 crashed_seen: Optional[dict] = None) -> None:
    """Re-issue one step's charges, emitting its events at the recorded
    positions so each event's ``at`` equals the serial ledger total."""
    events = trace.events
    index = 0
    for position, charge in enumerate(trace.charges):
        while index < len(events) and events[index][0] <= position:
            _emit_event(ledger, stats, events[index])
            index += 1
        ledger.charge(*charge)
    while index < len(events):
        _emit_event(ledger, stats, events[index])
        index += 1
    if crashed_seen is not None:
        for line in trace.crash_lines:
            crashed_seen[line.split(" ", 1)[0]] = line


def _emit_event(ledger: CostLedger, stats: SupervisorStats,
                packed: tuple) -> None:
    __, kind, op, scenario, error, attempt = packed
    stats.events.append(SupervisorEvent(kind, op, scenario, error, attempt,
                                        at=ledger.total()))
    counter = _COUNTER_FOR_KIND.get(kind)
    if counter is not None:
        setattr(stats, counter, getattr(stats, counter) + 1)


def _finish(report: SearchReport, stats: SupervisorStats,
            crashed_seen: dict) -> SearchReport:
    report.crashed_nodes = sorted(crashed_seen.values())
    report.supervisor.merge(stats)
    return report


def _quarantine(report: SearchReport, message_type: str,
                action: Optional[MaliciousAction],
                quarantined: tuple) -> None:
    reason, attempts = quarantined
    report.quarantined.append(QuarantinedScenario(
        message_type, None if action is None else action.to_record(),
        reason=reason, attempts=attempts))


def _missing(message_type: str, action: MaliciousAction) -> SearchError:
    return SearchError(
        f"parallel probe coverage hole: no recorded evaluation of "
        f"{action.describe()} {message_type}")


def merge_weighted(system: str, message_types: Sequence[str],
                   actions_by_type: Dict[str, List[MaliciousAction]],
                   weights: ClusterWeights, threshold: AttackThreshold,
                   startup: StartupProbe,
                   probes: Dict[str, TypeProbe]) -> SearchReport:
    """Replay WeightedGreedySearch._run_pass over the recorded probes."""
    ledger = CostLedger()
    report = SearchReport("weighted-greedy", system, ledger=ledger)
    stats = SupervisorStats()
    crashed_seen: dict = {}
    replay_trace(ledger, stats, startup.trace, crashed_seen)
    if startup.quarantined is not None:
        _quarantine(report, "*", None, startup.quarantined)
        return _finish(report, stats, crashed_seen)

    for message_type in message_types:
        actions = actions_by_type.get(message_type) or []
        if not actions:
            continue
        probe = probes[message_type]
        replay_trace(ledger, stats, probe.context.trace, crashed_seen)
        if probe.context.quarantined is not None:
            _quarantine(report, message_type, None, probe.context.quarantined)
            continue
        if not probe.context.found:
            report.types_without_injection.append(message_type)
            continue
        report.injection_points += 1

        evals = {e.record: e for e in probe.evals}
        ordered = weights.order_actions(actions)
        worst: Optional[AttackFinding] = None
        found = False
        for action in ordered:
            ev = evals.get(action.to_record())
            if ev is None:
                raise _missing(message_type, action)
            replay_trace(ledger, stats, ev.trace, crashed_seen)
            if ev.quarantined is not None:
                _quarantine(report, message_type, action, ev.quarantined)
                continue
            report.scenarios_evaluated += 1
            baseline, sample = ev.baseline, ev.sample
            damage = threshold.damage(baseline, sample)
            crashed = sample.crashed_nodes > baseline.crashed_nodes
            finding = AttackFinding(
                AttackScenario(message_type, action), baseline, sample,
                damage=1.0 if crashed else damage,
                crashes=sample.crashed_nodes,
                found_at=ledger.total())
            if is_attack_sample(threshold, baseline, sample):
                weights.bump(action.cluster)
                report.findings.append(finding)
                found = True
                break
            if worst is None or finding.damage > worst.damage:
                worst = finding
        if not found and worst is not None:
            worst.found_at = ledger.total()
            report.weak_selections.append(worst)
    return _finish(report, stats, crashed_seen)


def merge_greedy(system: str, message_types: Sequence[str],
                 actions_by_type: Dict[str, List[MaliciousAction]],
                 threshold: AttackThreshold, rounds: int, confirmations: int,
                 startup: StartupProbe,
                 probes: Dict[str, TypeProbe]) -> SearchReport:
    """Replay GreedySearch._run_pass: ``rounds`` identical rounds per type.

    The serial algorithm re-acquires the context and re-evaluates every
    action each round; the deterministic world makes each round's charges
    identical, so the single recorded round is replayed ``rounds`` times.
    """
    ledger = CostLedger()
    report = SearchReport("greedy", system, ledger=ledger)
    stats = SupervisorStats()
    crashed_seen: dict = {}
    replay_trace(ledger, stats, startup.trace, crashed_seen)
    if startup.quarantined is not None:
        _quarantine(report, "*", None, startup.quarantined)
        return _finish(report, stats, crashed_seen)

    for message_type in message_types:
        actions = actions_by_type.get(message_type) or []
        if not actions:
            continue
        probe = probes[message_type]
        evals = {e.record: e for e in probe.evals}

        selections: Dict[tuple, int] = {}
        best_by_action: Dict[tuple, tuple] = {}
        saw_injection = False
        type_quarantined = False

        for __ in range(rounds):
            replay_trace(ledger, stats, probe.context.trace, crashed_seen)
            if probe.context.quarantined is not None:
                _quarantine(report, message_type, None,
                            probe.context.quarantined)
                type_quarantined = True
                break
            if not probe.context.found:
                break
            saw_injection = True
            report.injection_points += 1

            worst_key = None
            worst_damage = -1.0
            for action in actions:
                ev = evals.get(action.to_record())
                if ev is None:
                    raise _missing(message_type, action)
                replay_trace(ledger, stats, ev.trace, crashed_seen)
                if ev.quarantined is not None:
                    _quarantine(report, message_type, action, ev.quarantined)
                    continue
                report.scenarios_evaluated += 1
                damage = threshold.damage(ev.baseline, ev.sample)
                if ev.sample.crashed_nodes > ev.baseline.crashed_nodes:
                    damage = 1.0
                if damage > worst_damage:
                    worst_damage = damage
                    worst_key = action.to_record()
                    best_by_action[worst_key] = (action, ev.baseline,
                                                 ev.sample, damage)
            if worst_key is not None:
                selections[worst_key] = selections.get(worst_key, 0) + 1

        if not saw_injection:
            if not type_quarantined:
                report.types_without_injection.append(message_type)
            continue

        for key, count in sorted(selections.items(), key=lambda kv: -kv[1]):
            action, baseline, sample, damage = best_by_action[key]
            crashed = sample.crashed_nodes > baseline.crashed_nodes
            if count >= confirmations and (
                    crashed or threshold.is_attack(baseline, sample)):
                report.findings.append(AttackFinding(
                    AttackScenario(message_type, action), baseline, sample,
                    damage=damage, crashes=sample.crashed_nodes,
                    found_at=ledger.total(), confirmations=count))
            break  # greedy keeps only the strongest attack per type
    return _finish(report, stats, crashed_seen)


def merge_brute(system: str, scenarios: Sequence[AttackScenario],
                threshold: AttackThreshold, baseline_probe: BaselineProbe,
                probes: Dict[tuple, ScenarioProbe]) -> SearchReport:
    """Replay BruteForceSearch._run_pass over the recorded probes.

    Brute force only inspects crashed nodes at finalize time, from the last
    world it built, so only the final consumed step's crash lines count.
    """
    ledger = CostLedger()
    report = SearchReport("brute-force", system, ledger=ledger)
    stats = SupervisorStats()
    replay_trace(ledger, stats, baseline_probe.trace)
    last_crash_lines = baseline_probe.trace.crash_lines
    if baseline_probe.quarantined is not None:
        _quarantine(report, "*", None, baseline_probe.quarantined)
        return _finish_brute(report, stats, last_crash_lines)
    baseline = baseline_probe.sample

    for scenario in scenarios:
        probe = probes.get(scenario.to_record())
        if probe is None:
            raise _missing(scenario.message_type, scenario.action)
        replay_trace(ledger, stats, probe.trace)
        last_crash_lines = probe.trace.crash_lines
        if probe.quarantined is not None:
            _quarantine(report, scenario.message_type, scenario.action,
                        probe.quarantined)
            continue
        report.scenarios_evaluated += 1
        if probe.injected_at is None:
            if scenario.message_type not in report.types_without_injection:
                report.types_without_injection.append(scenario.message_type)
            continue
        report.injection_points += 1
        if threshold.is_attack(baseline, probe.sample):
            report.findings.append(AttackFinding(
                scenario, baseline, probe.sample,
                damage=threshold.damage(baseline, probe.sample),
                crashes=probe.sample.crashed_nodes,
                found_at=ledger.total()))
    return _finish_brute(report, stats, last_crash_lines)


def _finish_brute(report: SearchReport, stats: SupervisorStats,
                  crash_lines: List[str]) -> SearchReport:
    crashed_seen = {line.split(" ", 1)[0]: line for line in crash_lines}
    return _finish(report, stats, crashed_seen)
