"""Aardvark — robust BFT (target system, Section V-C)."""

from repro.systems.aardvark.replica import AardvarkReplica
from repro.systems.aardvark.schema import (AARDVARK_CODEC, AARDVARK_SCHEMA,
                                           AARDVARK_SCHEMA_TEXT)
from repro.systems.aardvark.testbed import aardvark_testbed

__all__ = ["AardvarkReplica", "AARDVARK_CODEC", "AARDVARK_SCHEMA",
           "AARDVARK_SCHEMA_TEXT", "aardvark_testbed"]
