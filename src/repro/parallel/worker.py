"""The worker side of parallel search: probe a shard, record everything.

Each worker owns a full testbed built from the same ``(factory, seed)`` as
the serial run.  Because the worlds are deterministic simulations and every
message type's processing starts from a restore of the warm snapshot, the
platform operations a worker performs for its shard — and every ledger
charge they produce — are bitwise identical to what the serial algorithm
would have done for those types.  The worker therefore returns *recorded
traces* (see :mod:`repro.parallel.recording`), not report fragments; the
merge step replays them in serial order.

Workers are persistent across hunt passes and cache per-``(type, action)``
evaluations: a later pass that re-walks an already-probed action gets the
recorded trace back without re-simulating, which is where the parallel
hunt's wall-clock win comes from on top of sharding.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.attacks.actions import AttackScenario, MaliciousAction
from repro.attacks.space import ActionSpaceConfig
from repro.common.errors import SearchError
from repro.controller.harness import AttackHarness
from repro.controller.monitor import AttackThreshold, PerfSample
from repro.parallel.recording import (RecordingLedger, RecordingSupervisor,
                                      StepRecorder, StepTrace)
from repro.search.base import SearchAlgorithm, TypeContext, is_attack_sample
from repro.search.brute import BruteForceSearch
from repro.telemetry.tracer import Tracer

#: what a quarantined step collapses to: (reason, attempts)
Quarantine = Optional[Tuple[str, int]]


@dataclass
class ProbeParams:
    """Everything a worker needs to build its search stack (fork-inherited)."""

    algorithm: str = "weighted"        # weighted | greedy | brute
    threshold: Optional[AttackThreshold] = None
    space_config: Optional[ActionSpaceConfig] = None
    max_wait: Optional[float] = None
    shared_pages: bool = True
    delta_snapshots: bool = False
    fault_schedule: Any = None
    watchdog_limit: Optional[int] = None
    max_retries: int = 2
    trace: bool = False
    log_events: bool = False
    #: byte budget bounding each prober's retained per-type contexts
    #: (None = unbounded); see :class:`repro.store.budget.SnapshotBudget`
    snapshot_budget: Optional[int] = None

    @property
    def early_stop(self) -> bool:
        """Weighted greedy stops a cluster at its first attack; greedy
        evaluates everything."""
        return self.algorithm == "weighted"


@dataclass
class StartupProbe:
    trace: StepTrace
    quarantined: Quarantine = None


@dataclass
class ContextProbe:
    """One supervised injection-seek + baseline branch for a type."""

    found: bool
    trace: StepTrace
    quarantined: Quarantine = None


@dataclass
class EvalProbe:
    """One supervised branch-measure of a single action."""

    record: tuple                      # MaliciousAction.to_record()
    baseline: Optional[PerfSample]
    sample: Optional[PerfSample]
    trace: StepTrace
    quarantined: Quarantine = None


@dataclass
class TypeProbe:
    message_type: str
    context: ContextProbe
    evals: List[EvalProbe] = field(default_factory=list)


@dataclass
class BaselineProbe:
    """Brute force's one benign execution."""

    sample: Optional[PerfSample]
    trace: StepTrace
    quarantined: Quarantine = None


@dataclass
class ScenarioProbe:
    """One brute-force scenario: fresh execution, run-to-injection, window."""

    record: tuple                      # AttackScenario.to_record()
    injected_at: Optional[float]
    sample: Optional[PerfSample]
    trace: StepTrace
    quarantined: Quarantine = None


@dataclass
class WorkerReturn:
    """One task's results plus the worker's cumulative accounting."""

    worker: int
    startup: Optional[StartupProbe] = None
    types: List[TypeProbe] = field(default_factory=list)
    baseline: Optional[BaselineProbe] = None
    scenarios: List[ScenarioProbe] = field(default_factory=list)
    #: the worker's own cumulative ledger (side-channel attribution only;
    #: the merged report's ledger is replayed from traces instead)
    by_category: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: worker-side tracer output since the last task (tagged on adoption)
    spans: list = field(default_factory=list)
    events: list = field(default_factory=list)
    #: worker-side EventLog records since the last task
    log_records: list = field(default_factory=list)
    #: this worker's cumulative ``snapshot.cache.*`` budget counters
    #: (side-channel, like ``by_category``; empty when unbudgeted)
    budget_counters: Dict[str, float] = field(default_factory=dict)


class WorkerProber:
    """Evaluates shards against one private testbed, recording every step.

    Used in-process (``workers=1`` or no ``fork``) and as the body of a
    forked worker.  All state — the booted world, the warm snapshot, the
    injection-point cache, and the per-action evaluation cache — persists
    across calls, so hunt pass N+1 only simulates actions pass N never
    touched.
    """

    def __init__(self, worker_id: int, factory, seed: int,
                 params: ProbeParams) -> None:
        self.worker_id = worker_id
        self.params = params
        ledger = RecordingLedger()
        self.tracer = Tracer(enabled=True) if params.trace else None
        cls = BruteForceSearch if params.algorithm == "brute" \
            else SearchAlgorithm
        self.search = cls(
            factory, seed=seed, threshold=params.threshold,
            space_config=params.space_config, max_wait=params.max_wait,
            shared_pages=params.shared_pages,
            delta_snapshots=params.delta_snapshots,
            fault_schedule=params.fault_schedule,
            watchdog_limit=params.watchdog_limit,
            max_retries=params.max_retries,
            tracer=self.tracer, log_events=params.log_events,
            ledger=ledger)
        # The recording supervisor must share the recording ledger so event
        # positions index into the same charge log.
        self.search.supervisor = RecordingSupervisor(
            ledger, max_retries=params.max_retries)
        self._startup: Optional[StartupProbe] = None
        self._baseline: Optional[BaselineProbe] = None
        #: message_type -> {"context", "ctx", "evals": {record: EvalProbe}}
        self._types: Dict[str, dict] = {}
        #: duck-typed durable sink (a :class:`repro.store.runstore.RunStore`)
        #: receiving every *fresh* probe; None = no journaling
        self.probe_sink = None
        self.budget = None
        if params.snapshot_budget is not None:
            # Function-level import: repro.store imports this module.
            from repro.store.budget import SnapshotBudget
            self.budget = SnapshotBudget(params.snapshot_budget)
        #: scenario record -> ScenarioProbe (brute)
        self._scenarios: Dict[tuple, ScenarioProbe] = {}
        self._span_mark = 0
        self._event_mark = 0
        self._log_mark = 0

    # ------------------------------------------------------- weighted/greedy

    def _ensure_started(self) -> StartupProbe:
        if self._startup is None:
            with StepRecorder(self.search) as step:
                self.search._start_run()
            self._startup = StartupProbe(step.trace, step.quarantined)
            if self.probe_sink is not None:
                self.probe_sink.journal_startup(self._startup)
        return self._startup

    def probe_types(self, message_types: Sequence[str],
                    exclude: FrozenSet[tuple]
                    ) -> Tuple[StartupProbe, List[TypeProbe]]:
        """Probe every type in the shard: context + the evals the serial
        walk could possibly visit (all of them for greedy; up to each
        cluster's first attack for weighted)."""
        startup = self._ensure_started()
        probes: List[TypeProbe] = []
        if startup.quarantined is not None:
            return startup, probes
        space = self.search._space()
        for message_type in message_types:
            probes.append(self._probe_type(space, message_type, exclude))
        return startup, probes

    def _probe_type(self, space, message_type: str,
                    exclude: FrozenSet[tuple]) -> TypeProbe:
        entry = self._types.get(message_type)
        if entry is None:
            ctx = None
            with StepRecorder(self.search) as step:
                ctx = self.search._acquire_context(message_type)
            context = ContextProbe(found=ctx is not None, trace=step.trace,
                                   quarantined=step.quarantined)
            entry = {"context": context, "ctx": ctx, "evals": {}}
            self._types[message_type] = entry
            if self.probe_sink is not None:
                self.probe_sink.journal_context(message_type, context)
            self._admit_ctx(message_type, entry)
        context = entry["context"]
        evals: List[EvalProbe] = []
        # Gate on the *recorded* outcome, not the live ctx: a journal-seeded
        # or budget-evicted entry has ctx=None but context.found=True, and
        # must still walk (cached evals answer; fresh ones lazily re-acquire).
        if context.quarantined is None and context.found:
            actions = [a for a in space.actions_for(message_type)
                       if AttackScenario(message_type, a).to_record()
                       not in exclude]
            if self.params.early_stop:
                # Group by cluster, preserving enumeration order: the
                # weight-ordered serial walk can never need an action past
                # its cluster's first (non-quarantined) attack, because it
                # would have stopped at that attack first.
                clusters: Dict[str, List[MaliciousAction]] = {}
                for action in actions:
                    clusters.setdefault(action.cluster, []).append(action)
                for group in clusters.values():
                    for action in group:
                        probe = self._eval_action(message_type, entry, action)
                        evals.append(probe)
                        if (probe.quarantined is None
                                and is_attack_sample(self.search.threshold,
                                                     probe.baseline,
                                                     probe.sample)):
                            break
            else:
                for action in actions:
                    evals.append(self._eval_action(message_type, entry,
                                                   action))
        return TypeProbe(message_type, context, evals)

    def _eval_action(self, message_type: str, entry: dict,
                     action: MaliciousAction) -> EvalProbe:
        record = action.to_record()
        probe = entry["evals"].get(record)
        if probe is None:
            if entry["ctx"] is None:
                self._reacquire_context(message_type, entry)
            elif self.budget is not None:
                self.budget.touch(message_type)
            sample = None
            with StepRecorder(self.search) as step:
                sample = self.search._measure_action(entry["ctx"], action)
            # Read the baseline *after* the measurement: a mid-step rebuild
            # refreshes ctx.baseline, and the serial loop compares against
            # the refreshed one.
            baseline = (entry["ctx"].baseline
                        if step.quarantined is None else None)
            probe = EvalProbe(record, baseline,
                              sample if step.quarantined is None else None,
                              step.trace, step.quarantined)
            entry["evals"][record] = probe
            if self.probe_sink is not None:
                self.probe_sink.journal_eval(message_type, probe)
        return probe

    def _reacquire_context(self, message_type: str, entry: dict) -> None:
        """Re-derive a seeded/evicted type's live injection context.

        Runs **off the books**: outside any :class:`StepRecorder`, so none
        of its ledger charges enter recorded traces — the merged report
        stays byte-identical to a run that never lost the context.  The
        deterministic world reproduces the identical injection point from
        the warm state; losing it now means the world diverged, which is a
        hard error rather than a quietly different report.
        """
        search = self.search
        before = search.ledger.total()
        if self.budget is not None:
            self.budget.miss()
        try:
            injection = search._seek_injection(message_type)
            if injection is None:
                raise SearchError(
                    f"injection point for {message_type} disappeared on "
                    f"re-acquisition; deterministic world diverged")
            baseline = search.harness.branch_measure(injection, None)
        finally:
            if self.budget is not None:
                self.budget.note_rebuild(search.ledger.total() - before)
        entry["ctx"] = TypeContext(message_type, injection, baseline)
        self._admit_ctx(message_type, entry)

    def _admit_ctx(self, message_type: str, entry: dict) -> None:
        if self.budget is None or entry["ctx"] is None:
            return
        size = (entry["ctx"].injection.snapshot
                .cluster_snapshot.stored_bytes())
        self.budget.admit(message_type, size, self._evict_ctx)

    def _evict_ctx(self, message_type: str) -> None:
        entry = self._types.get(message_type)
        if entry is not None:
            entry["ctx"] = None

    # ----------------------------------------------------------------- brute

    def probe_brute(self, scenario_records: Sequence[tuple],
                    include_baseline: bool
                    ) -> Tuple[Optional[BaselineProbe], List[ScenarioProbe]]:
        baseline = None
        if include_baseline:
            if self._baseline is None:
                sample = None
                with StepRecorder(self.search) as step:
                    sample = self.search.supervisor.run(
                        "baseline", self.search._baseline_attempt)
                self._baseline = BaselineProbe(
                    sample if step.quarantined is None else None,
                    step.trace, step.quarantined)
            baseline = self._baseline
        max_wait = (self.search.max_wait if self.search.max_wait is not None
                    else AttackHarness.DEFAULT_MAX_WAIT)
        probes: List[ScenarioProbe] = []
        for record in scenario_records:
            probe = self._scenarios.get(record)
            if probe is None:
                scenario = AttackScenario.from_record(record)
                injected_at = sample = None
                with StepRecorder(self.search) as step:
                    injected_at, sample = self.search.supervisor.run(
                        f"scenario:{scenario.message_type}",
                        lambda scenario=scenario:
                            self.search._scenario_attempt(scenario, max_wait),
                        scenario=scenario.describe())
                probe = ScenarioProbe(record, injected_at, sample,
                                      step.trace, step.quarantined)
                self._scenarios[record] = probe
            probes.append(probe)
        return baseline, probes

    # ------------------------------------------------------------- packaging

    def _drain_telemetry(self) -> Tuple[list, list, list]:
        spans: list = []
        events: list = []
        log_records: list = []
        if self.tracer is not None:
            spans = self.tracer.spans[self._span_mark:]
            events = self.tracer.events[self._event_mark:]
            self._span_mark = len(self.tracer.spans)
            self._event_mark = len(self.tracer.events)
        if self.params.log_events:
            instance = self.search.harness.instance
            records = (instance.world.log.records
                       if instance is not None else [])
            if self.params.algorithm == "brute":
                # Brute replaces its world per scenario; ship the final
                # world's records, matching what the serial CLI exports.
                log_records = list(records)
            else:
                log_records = records[self._log_mark:]
                self._log_mark = len(records)
        return spans, events, log_records

    def package(self, startup: Optional[StartupProbe] = None,
                types: Sequence[TypeProbe] = (),
                baseline: Optional[BaselineProbe] = None,
                scenarios: Sequence[ScenarioProbe] = ()) -> WorkerReturn:
        spans, events, log_records = self._drain_telemetry()
        return WorkerReturn(
            worker=self.worker_id, startup=startup, types=list(types),
            baseline=baseline, scenarios=list(scenarios),
            by_category=dict(self.search.ledger.by_category),
            spans=spans, events=events, log_records=log_records,
            budget_counters=(dict(self.budget.counters())
                             if self.budget is not None else {}))


def _maybe_inject_chaos(worker_id: int) -> None:
    """Deterministic fault injection for the self-healing layer's tests.

    ``REPRO_WORKER_CHAOS`` is ``kill:<worker>:<flag-file>`` or
    ``hang:<worker>:<flag-file>:<seconds>``; ``<worker>`` may be ``*`` to
    target every worker (the pool-collapse case).  The fault fires in the
    named worker right after it receives a task; the flag file is written
    *before* firing, so the fault disarms itself once — an empty flag path
    means fire every time (the poison-task case).  This lives in the worker
    so the chaos smoke in CI exercises the real crash path (SIGKILL,
    nothing flushed) rather than a simulated one.
    """
    spec = os.environ.get("REPRO_WORKER_CHAOS")
    if not spec:
        return
    parts = spec.split(":")
    if len(parts) < 3 or parts[1] not in (str(worker_id), "*"):
        return
    mode, __, flag = parts[0], parts[1], parts[2]
    if flag:
        if os.path.exists(flag):
            return  # already fired once
        with open(flag, "w") as handle:
            handle.write("fired\n")
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "hang":
        time.sleep(float(parts[3]) if len(parts) > 3 else 3600.0)


def worker_main(conn, worker_id: int, factory, seed: int,
                params: ProbeParams) -> None:
    """Forked worker loop: build the prober lazily, serve tasks until
    ``stop`` (or the pipe closes)."""
    prober = None
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message[0] == "stop":
                break
            _maybe_inject_chaos(worker_id)
            started = time.perf_counter()
            try:
                if prober is None:
                    prober = WorkerProber(worker_id, factory, seed, params)
                if message[0] == "probe":
                    __, message_types, exclude = message
                    startup, probes = prober.probe_types(message_types,
                                                         exclude)
                    payload = prober.package(startup=startup, types=probes)
                elif message[0] == "brute":
                    __, records, include_baseline = message
                    baseline, probes = prober.probe_brute(records,
                                                          include_baseline)
                    payload = prober.package(baseline=baseline,
                                             scenarios=probes)
                else:
                    raise ValueError(f"unknown worker command {message[0]!r}")
                payload.wall_seconds = time.perf_counter() - started
                conn.send(("ok", payload))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    except KeyboardInterrupt:
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
