"""The simulation kernel: one virtual clock and one event queue.

The paper's platform needs "the VMs and the network emulator [to] have the
same perception of time" (Section III-C).  In this reproduction that
requirement is discharged structurally: every component — network emulator,
virtual machines, node runtimes, the controller's measurement windows —
schedules its work on a single :class:`SimKernel`, so there is exactly one
notion of *now*.

The kernel supports interruption: the malicious proxy raises an interrupt
when it intercepts a message at an attack injection point, the run loop
returns to the controller, and the controller takes a distributed snapshot
before branching.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.common.errors import SimulationError, WatchdogTimeout
from repro.sim.events import Event, EventHandle, PRIORITY_TIMER


class Interrupt:
    """A reason the run loop stopped before its deadline."""

    def __init__(self, reason: str, payload: Any = None) -> None:
        self.reason = reason
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt({self.reason!r})"


class SimKernel:
    """Discrete-event scheduler owning virtual time."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[Tuple[Tuple[float, int, int], Event]] = []
        self._interrupt: Optional[Interrupt] = None
        self._running = False
        self.events_executed = 0
        #: virtual-time watchdog: maximum events one run window (a single
        #: :meth:`run_until` call) may execute before the kernel raises
        #: :class:`WatchdogTimeout`.  ``None`` disables the watchdog.
        self.watchdog_limit: Optional[int] = None
        #: how many times the watchdog has tripped on this kernel
        self.watchdog_trips = 0
        #: optional :class:`~repro.telemetry.instruments.InstrumentRegistry`
        #: (world-owned, snapshot-participating) counting dispatch batches
        self.instruments = None
        #: optional :class:`~repro.telemetry.tracer.Tracer` producing one
        #: ``kernel.window`` span per run window (platform-side, not rewound)
        self.tracer = None

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        return self._now

    # -------------------------------------------------------------- schedule

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any,
                 priority: int = PRIORITY_TIMER) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any,
                    priority: int = PRIORITY_TIMER) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}")
        self._seq += 1
        event = Event(time, priority, self._seq, fn, args)
        heapq.heappush(self._heap, (event.sort_key(), event))
        return EventHandle(event)

    # ------------------------------------------------------------- interrupt

    def interrupt(self, reason: str, payload: Any = None) -> None:
        """Ask the run loop to return control after the current event."""
        self._interrupt = Interrupt(reason, payload)

    def take_interrupt(self) -> Optional[Interrupt]:
        intr, self._interrupt = self._interrupt, None
        return intr

    # ------------------------------------------------------------------- run

    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(1 for __, e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is drained."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0][1].time

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0][1].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue is empty."""
        self._discard_cancelled()
        if not self._heap:
            return False
        __, event = heapq.heappop(self._heap)
        if event.time < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = event.time
        self.events_executed += 1
        event.fn(*event.args)
        return True

    def run_until(self, deadline: float) -> Optional[Interrupt]:
        """Run events until ``deadline`` or until interrupted.

        On a clean return the clock is advanced exactly to ``deadline`` even
        if the last event fired earlier, so back-to-back windows tile with
        no gaps.  On interrupt the clock stays at the interrupting event.
        """
        if self._running:
            raise SimulationError("run loop is not reentrant")
        self._running = True
        window_events = 0
        tracer = self.tracer
        span = (tracer.span("kernel.window", deadline=deadline)
                if tracer is not None and tracer.enabled else None)
        try:
            while True:
                if self._interrupt is not None:
                    return self.take_interrupt()
                next_time = self.peek_time()
                if next_time is None or next_time > deadline:
                    self._now = max(self._now, deadline)
                    return None
                if (self.watchdog_limit is not None
                        and window_events >= self.watchdog_limit):
                    self.watchdog_trips += 1
                    raise WatchdogTimeout(
                        f"watchdog: window at t={self._now:.3f} executed "
                        f"{window_events} events (limit {self.watchdog_limit})"
                        "; likely an event storm",
                        events=window_events, limit=self.watchdog_limit)
                self.step()
                window_events += 1
        finally:
            self._running = False
            instruments = self.instruments
            if instruments is not None and instruments.enabled:
                instruments.count("kernel.windows")
                instruments.count("kernel.events", window_events)
                instruments.observe("kernel.window_events", window_events)
            if span is not None:
                span.set(events=window_events)
                span.__exit__(None, None, None)

    def run_for(self, duration: float) -> Optional[Interrupt]:
        return self.run_until(self._now + duration)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue empties; returns events executed."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError("drain exceeded max_events; likely a livelock")
        return count

    # -------------------------------------------------------------- snapshot
    #
    # The kernel itself snapshots only its clock and sequence counter; queued
    # events belong to the components that scheduled them (network emulator,
    # node runtimes, VMs), each of which re-registers its events on restore.
    # This mirrors the paper's NS3 modification, where save iterates the
    # event queue and each object knows how to save and re-create itself.

    def save_state(self) -> dict:
        return {"now": self._now, "seq": self._seq,
                "events_executed": self.events_executed}

    def load_state(self, state: dict) -> None:
        self._now = state["now"]
        self._seq = state["seq"]
        self.events_executed = state["events_executed"]
        self._heap.clear()
        self._interrupt = None
