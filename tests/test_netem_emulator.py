"""Tests for the network emulator: delivery, interception, freeze, save/load."""

import pytest

from repro.common.errors import NetworkError
from repro.common.ids import replica
from repro.common.units import millis
from repro.netem.emulator import Delivery, NetworkEmulator, Verdict
from repro.netem.packets import MTU
from repro.netem.topology import LanTopology, SiteTopology, Topology
from repro.sim.kernel import SimKernel

A, B, C = replica(0), replica(1), replica(2)


def build(delay=millis(1), device_kind="BundledDevice"):
    kernel = SimKernel()
    emulator = NetworkEmulator(kernel, LanTopology(delay=delay),
                               device_kind=device_kind)
    inboxes = {}
    for node in (A, B, C):
        emulator.register_host(node)
        inbox = []
        inboxes[node] = inbox
        emulator.set_receiver(
            node, lambda env, inbox=inbox: inbox.append(
                (env.src, env.payload, kernel.now)))
    return kernel, emulator, inboxes


class TestDelivery:
    def test_basic_delivery(self):
        kernel, emulator, inboxes = build()
        emulator.transmit(A, B, "udp", b"hello")
        kernel.run_until(0.1)
        assert inboxes[B] == [(A, b"hello", pytest.approx(0.00107, abs=1e-4))]

    def test_delivery_latency_includes_propagation(self):
        kernel, emulator, inboxes = build(delay=millis(10))
        emulator.transmit(A, B, "udp", b"x")
        kernel.run_until(0.1)
        assert inboxes[B][0][2] > 0.010

    def test_multi_fragment_message_arrives_whole(self):
        kernel, emulator, inboxes = build()
        payload = b"p" * (3 * MTU)
        emulator.transmit(A, B, "udp", payload)
        kernel.run_until(0.1)
        assert inboxes[B][0][1] == payload

    def test_fifo_between_same_pair(self):
        kernel, emulator, inboxes = build()
        for i in range(5):
            emulator.transmit(A, B, "udp", bytes([i]))
        kernel.run_until(0.1)
        assert [m[1] for m in inboxes[B]] == [bytes([i]) for i in range(5)]

    def test_unregistered_destination_blackholed(self):
        kernel, emulator, __ = build()
        result = emulator.transmit(A, replica(9), "udp", b"x")
        assert result == -1
        assert emulator.stats.messages_blackholed == 1

    def test_unregistered_source_rejected(self):
        kernel, emulator, __ = build()
        with pytest.raises(NetworkError):
            emulator.transmit(replica(9), A, "udp", b"x")
        with pytest.raises(NetworkError):
            emulator.register_host(A)

    def test_transmit_delay_postpones_egress(self):
        kernel, emulator, inboxes = build()
        emulator.transmit(A, B, "udp", b"x", delay=0.5)
        kernel.run_until(0.4)
        assert inboxes[B] == []
        kernel.run_until(1.0)
        assert len(inboxes[B]) == 1

    def test_stats_counted(self):
        kernel, emulator, __ = build()
        emulator.transmit(A, B, "udp", b"x")
        kernel.run_until(0.1)
        assert emulator.stats.messages_sent == 1
        assert emulator.stats.messages_delivered == 1


class TestInterception:
    def test_drop_verdict(self):
        kernel, emulator, inboxes = build()
        emulator.set_interceptor(lambda env: Verdict.drop())
        emulator.transmit(A, B, "udp", b"x")
        kernel.run_until(0.1)
        assert inboxes[B] == []
        assert emulator.stats.messages_dropped_by_proxy == 1

    def test_rewrite_divert(self):
        kernel, emulator, inboxes = build()
        emulator.set_interceptor(
            lambda env: Verdict.rewrite([Delivery(C, env.payload)]))
        emulator.transmit(A, B, "udp", b"x")
        kernel.run_until(0.1)
        assert inboxes[B] == []
        assert len(inboxes[C]) == 1

    def test_rewrite_duplicate(self):
        kernel, emulator, inboxes = build()
        emulator.set_interceptor(
            lambda env: Verdict.rewrite([Delivery(B, env.payload)] * 3))
        emulator.transmit(A, B, "udp", b"x")
        kernel.run_until(0.1)
        assert len(inboxes[B]) == 3

    def test_rewrite_delay(self):
        kernel, emulator, inboxes = build()
        emulator.set_interceptor(
            lambda env: Verdict.rewrite(
                [Delivery(B, env.payload, extra_delay=0.3)]))
        emulator.transmit(A, B, "udp", b"x")
        kernel.run_until(0.2)
        assert inboxes[B] == []
        kernel.run_until(0.5)
        assert len(inboxes[B]) == 1

    def test_hold_and_release(self):
        kernel, emulator, inboxes = build()
        emulator.set_interceptor(lambda env: Verdict.hold("tag1"))
        emulator.transmit(A, B, "udp", b"held")
        kernel.run_until(0.1)
        assert inboxes[B] == []
        assert emulator.held_tags() == ["tag1"]
        emulator.set_interceptor(None)
        emulator.release_held("tag1")
        kernel.run_until(0.2)
        assert inboxes[B][0][1] == b"held"

    def test_release_with_rewrite(self):
        kernel, emulator, inboxes = build()
        emulator.set_interceptor(lambda env: Verdict.hold("t"))
        emulator.transmit(A, B, "udp", b"orig")
        emulator.set_interceptor(None)
        emulator.release_held("t", [Delivery(C, b"mutated")])
        kernel.run_until(0.1)
        assert inboxes[C][0][1] == b"mutated"

    def test_release_empty_drops(self):
        kernel, emulator, inboxes = build()
        emulator.set_interceptor(lambda env: Verdict.hold("t"))
        emulator.transmit(A, B, "udp", b"x")
        emulator.release_held("t", [])
        kernel.run_until(0.1)
        assert inboxes[B] == []

    def test_drop_held(self):
        kernel, emulator, __ = build()
        emulator.set_interceptor(lambda env: Verdict.hold("t"))
        emulator.transmit(A, B, "udp", b"x")
        emulator.drop_held("t")
        assert emulator.held_tags() == []

    def test_unknown_held_tag(self):
        kernel, emulator, __ = build()
        with pytest.raises(NetworkError):
            emulator.peek_held("nope")


class TestFreezeResume:
    def test_frozen_blocks_delivery(self):
        kernel, emulator, inboxes = build()
        emulator.transmit(A, B, "udp", b"x")
        emulator.freeze()
        kernel.run_until(0.1)
        assert inboxes[B] == []

    def test_resume_flushes_parked_packets(self):
        kernel, emulator, inboxes = build()
        emulator.transmit(A, B, "udp", b"x")
        emulator.freeze()
        kernel.run_until(0.1)
        emulator.resume_emulation()
        assert len(inboxes[B]) == 1

    def test_transmit_while_frozen_parked(self):
        kernel, emulator, inboxes = build()
        emulator.freeze()
        emulator.transmit(A, B, "udp", b"y")
        kernel.run_until(0.1)
        assert inboxes[B] == []
        emulator.resume_emulation()
        kernel.run_until(0.2)
        assert len(inboxes[B]) == 1


class TestSaveLoad:
    def test_in_flight_messages_survive_reload(self):
        kernel, emulator, __ = build()
        emulator.transmit(A, B, "udp", b"travelling")
        state = emulator.save_state()
        kstate = kernel.save_state()

        kernel2 = SimKernel()
        kernel2.load_state(kstate)
        emulator2 = NetworkEmulator(kernel2, LanTopology())
        got = []
        for node in (A, B, C):
            emulator2.register_host(node)
        emulator2.set_receiver(B, lambda env: got.append(env.payload))
        emulator2.load_state(state)
        kernel2.run_until(0.1)
        assert got == [b"travelling"]

    def test_load_replaces_current_flights(self):
        kernel, emulator, inboxes = build()
        clean = emulator.save_state()
        kclean = kernel.save_state()
        emulator.transmit(A, B, "udp", b"should-vanish")
        kernel.load_state(kclean)
        emulator.load_state(clean)
        kernel.run_until(0.1)
        assert inboxes[B] == []

    def test_held_messages_survive_reload(self):
        kernel, emulator, __ = build()
        emulator.set_interceptor(lambda env: Verdict.hold("t"))
        emulator.transmit(A, B, "udp", b"kept")
        state = emulator.save_state()
        emulator.drop_held("t")
        emulator.load_state(state)
        assert emulator.held_tags() == ["t"]
        assert emulator.peek_held("t").payload == b"kept"

    def test_restore_is_repeatable(self):
        """Restoring the same snapshot twice produces identical deliveries."""
        kernel, emulator, inboxes = build()
        for i in range(3):
            emulator.transmit(A, B, "udp", bytes([i]))
        state = emulator.save_state()
        kstate = kernel.save_state()

        runs = []
        for __ in range(2):
            kernel.load_state(kstate)
            emulator.load_state(state)
            inboxes[B].clear()
            kernel.run_until(0.5)
            runs.append(list(inboxes[B]))
        assert runs[0] == runs[1]


class TestSiteTopology:
    def test_intra_vs_inter_delay(self):
        topo = SiteTopology({A: 0, B: 0, C: 1}, intra_delay=millis(1),
                            inter_delay=millis(40))
        assert topo.path(A, B).delay == millis(1)
        assert topo.path(A, C).delay == millis(40)
        assert topo.path(A, A).delay == 0.0

    def test_unassigned_host_raises(self):
        topo = SiteTopology({A: 0})
        with pytest.raises(NetworkError):
            topo.path(A, B)

    def test_topology_overrides(self):
        topo = Topology(delay=millis(2))
        topo.set_path(A, B, millis(9))
        assert topo.path(A, B).delay == millis(9)
        assert topo.path(B, A).delay == millis(2)
