"""PBFT testbed factories.

Two configurations from the paper's evaluation:

* 4 replicas (f = 1), one client — the default for normal-case attacks,
  with the malicious node either the initial primary (replica 0) or a
  backup (replica 1).
* 7 replicas (f = 2) with a standing Pre-Prepare drop by the malicious
  primary so that view changes occur, used "to find attacks on View-Change
  messages"; a second compromised node (a backup) is whose ViewChange
  traffic the proxy manipulates.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.actions import DropAction
from repro.controller.harness import TestbedFactory, TestbedInstance
from repro.runtime.cpu import CpuCostModel
from repro.systems.common.auth import Authenticator
from repro.systems.common.config import BftConfig
from repro.systems.common.testbed import build_testbed
from repro.systems.pbft.client import PbftClient
from repro.systems.pbft.replica import PbftReplica
from repro.systems.pbft.schema import PBFT_CODEC, PBFT_SCHEMA

#: extra CPU a Status message costs its receiver (log scan over the window)
STATUS_PROCESSING_COST = 0.0004


def pbft_testbed(malicious: str = "primary", f: int = 1,
                 verify_signatures: bool = False,
                 config: Optional[BftConfig] = None,
                 warmup: float = 3.0, window: float = 6.0,
                 message_types=None) -> TestbedFactory:
    """Factory for the 4-replica (f=1) PBFT deployment.

    ``malicious`` selects which replica the proxy controls: ``"primary"``
    (replica 0, the initial primary) or ``"backup"`` (replica 1).
    """
    if malicious not in ("primary", "backup"):
        raise ValueError(f"malicious must be 'primary' or 'backup', "
                         f"got {malicious!r}")
    cfg = config or BftConfig(f=f, verify_signatures=verify_signatures)
    malicious_index = 0 if malicious == "primary" else 1

    def factory(seed: int) -> TestbedInstance:
        auth = Authenticator("pbft-deployment")
        cost_model = CpuCostModel(
            verify_signatures=cfg.verify_signatures)
        return build_testbed(
            name=f"pbft-f{cfg.f}-malicious-{malicious}",
            schema=PBFT_SCHEMA, codec=PBFT_CODEC,
            replica_factory=lambda i: PbftReplica(i, cfg, auth),
            client_factory=lambda i: PbftClient(i, cfg, auth),
            n_replicas=cfg.n, n_clients=cfg.clients,
            malicious_indices=[malicious_index],
            seed=seed, warmup=warmup, window=window,
            cost_model=cost_model,
            type_costs={"Status": STATUS_PROCESSING_COST},
            message_types=message_types)

    return factory


def pbft_view_change_testbed(config: Optional[BftConfig] = None,
                             warmup: float = 3.0,
                             window: float = 6.0) -> TestbedFactory:
    """The paper's 7-server configuration for View-Change attacks.

    f = 2; the malicious set is {replica 0 (initial primary), replica 1}.
    The primary's standing Pre-Prepare drop forces a view change shortly
    after the warmup, producing ViewChange traffic from the malicious
    backup for the search to intercept.
    """
    cfg = config or BftConfig(f=2)

    def factory(seed: int) -> TestbedInstance:
        auth = Authenticator("pbft-deployment")
        cost_model = CpuCostModel(verify_signatures=cfg.verify_signatures)
        return build_testbed(
            name="pbft-f2-view-change",
            schema=PBFT_SCHEMA, codec=PBFT_CODEC,
            replica_factory=lambda i: PbftReplica(i, cfg, auth),
            client_factory=lambda i: PbftClient(i, cfg, auth),
            n_replicas=cfg.n, n_clients=cfg.clients,
            malicious_indices=[0, 1],
            seed=seed, warmup=warmup, window=window,
            cost_model=cost_model,
            type_costs={"Status": STATUS_PROCESSING_COST},
            message_types=["ViewChange"],
            background_policy=[("PrePrepare", DropAction(1.0))])

    return factory
