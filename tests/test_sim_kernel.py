"""Tests for the simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SimulationError
from repro.sim.events import PRIORITY_NETWORK, PRIORITY_TIMER
from repro.sim.kernel import SimKernel


class TestScheduling:
    def test_starts_at_zero(self):
        assert SimKernel().now == 0.0

    def test_events_run_in_time_order(self):
        k = SimKernel()
        out = []
        k.schedule(0.3, out.append, "c")
        k.schedule(0.1, out.append, "a")
        k.schedule(0.2, out.append, "b")
        k.run_until(1.0)
        assert out == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self):
        k = SimKernel()
        out = []
        for tag in "abcde":
            k.schedule(0.5, out.append, tag)
        k.run_until(1.0)
        assert out == list("abcde")

    def test_priority_breaks_ties(self):
        k = SimKernel()
        out = []
        k.schedule(0.5, out.append, "timer", priority=PRIORITY_TIMER)
        k.schedule(0.5, out.append, "net", priority=PRIORITY_NETWORK)
        k.run_until(1.0)
        assert out == ["net", "timer"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimKernel().schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        k = SimKernel()
        k.schedule(1.0, lambda: None)
        k.run_until(2.0)
        with pytest.raises(SimulationError):
            k.schedule_at(1.5, lambda: None)

    def test_clock_advances_to_deadline_without_events(self):
        k = SimKernel()
        k.run_until(5.0)
        assert k.now == 5.0

    def test_events_after_deadline_not_run(self):
        k = SimKernel()
        out = []
        k.schedule(2.0, out.append, "late")
        k.run_until(1.0)
        assert out == []
        assert k.now == 1.0
        k.run_until(3.0)
        assert out == ["late"]

    def test_run_for_is_relative(self):
        k = SimKernel()
        k.run_for(1.5)
        k.run_for(1.5)
        assert k.now == 3.0

    def test_events_scheduled_during_run(self):
        k = SimKernel()
        out = []

        def chain(n):
            out.append(n)
            if n < 3:
                k.schedule(0.1, chain, n + 1)

        k.schedule(0.1, chain, 1)
        k.run_until(1.0)
        assert out == [1, 2, 3]

    def test_drain_runs_everything(self):
        k = SimKernel()
        out = []
        for i in range(5):
            k.schedule(i * 0.1, out.append, i)
        assert k.drain() == 5
        assert out == [0, 1, 2, 3, 4]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        k = SimKernel()
        out = []
        handle = k.schedule(0.5, out.append, "x")
        handle.cancel()
        k.run_until(1.0)
        assert out == []

    def test_handle_active_flag(self):
        k = SimKernel()
        handle = k.schedule(0.5, lambda: None)
        assert handle.active
        handle.cancel()
        assert not handle.active

    def test_pending_skips_cancelled(self):
        k = SimKernel()
        h = k.schedule(0.5, lambda: None)
        k.schedule(0.6, lambda: None)
        assert k.pending() == 2
        h.cancel()
        assert k.pending() == 1

    def test_peek_time_skips_cancelled(self):
        k = SimKernel()
        h = k.schedule(0.5, lambda: None)
        k.schedule(0.7, lambda: None)
        h.cancel()
        assert k.peek_time() == pytest.approx(0.7)


class TestInterrupts:
    def test_interrupt_stops_run(self):
        k = SimKernel()
        k.schedule(0.2, lambda: k.interrupt("stop", payload=7))
        k.schedule(0.5, lambda: None)
        intr = k.run_until(1.0)
        assert intr is not None
        assert intr.reason == "stop"
        assert intr.payload == 7
        assert k.now == pytest.approx(0.2)

    def test_run_resumes_after_interrupt(self):
        k = SimKernel()
        out = []
        k.schedule(0.2, lambda: k.interrupt("stop"))
        k.schedule(0.5, out.append, "later")
        assert k.run_until(1.0).reason == "stop"
        assert k.run_until(1.0) is None
        assert out == ["later"]

    def test_interrupt_consumed_once(self):
        k = SimKernel()
        k.interrupt("one")
        assert k.take_interrupt().reason == "one"
        assert k.take_interrupt() is None


class TestSaveLoad:
    def test_save_load_clock(self):
        k = SimKernel()
        k.schedule(1.0, lambda: None)
        k.run_until(2.0)
        state = k.save_state()
        k2 = SimKernel()
        k2.load_state(state)
        assert k2.now == 2.0
        assert k2.pending() == 0

    def test_load_clears_queue(self):
        k = SimKernel()
        state = k.save_state()
        out = []
        k.schedule(0.5, out.append, "x")
        k.load_state(state)
        k.run_until(1.0)
        assert out == []


class TestPropertyOrdering:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=50))
    def test_execution_times_sorted(self, delays):
        k = SimKernel()
        fired = []
        for d in delays:
            k.schedule(d, lambda d=d: fired.append(k.now))
        k.run_until(101.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
