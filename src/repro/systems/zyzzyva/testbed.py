"""Zyzzyva testbed factory (4 replicas, f = 1, one client)."""

from __future__ import annotations

from typing import Optional

from repro.controller.harness import TestbedFactory, TestbedInstance
from repro.runtime.cpu import CpuCostModel
from repro.systems.common.auth import Authenticator
from repro.systems.common.config import BftConfig
from repro.systems.common.testbed import build_testbed
from repro.systems.zyzzyva.client import ZyzzyvaClient
from repro.systems.zyzzyva.replica import ZyzzyvaReplica
from repro.systems.zyzzyva.schema import ZYZZYVA_CODEC, ZYZZYVA_SCHEMA

#: message types the benign execution exercises (the search skips view
#: change types that never appear without a standing fault)
ZYZZYVA_ACTIVE_TYPES = ["Request", "OrderRequest", "SpecResponse", "Commit",
                        "LocalCommit"]


def zyzzyva_testbed(malicious: str = "backup",
                    config: Optional[BftConfig] = None,
                    warmup: float = 3.0, window: float = 6.0,
                    message_types=None) -> TestbedFactory:
    """``malicious`` is ``"primary"`` (replica 0) or ``"backup"`` (replica 1)."""
    if malicious not in ("primary", "backup"):
        raise ValueError(f"malicious must be 'primary' or 'backup', "
                         f"got {malicious!r}")
    cfg = config or BftConfig()
    malicious_index = 0 if malicious == "primary" else 1
    types = message_types if message_types is not None else (
        list(ZYZZYVA_ACTIVE_TYPES))

    def factory(seed: int) -> TestbedInstance:
        auth = Authenticator("zyzzyva-deployment")
        cost_model = CpuCostModel(verify_signatures=cfg.verify_signatures)
        # Zyzzyva clients are thin: they compare response digests, no
        # protocol state machine, so their per-message cost is small.
        client_costs = CpuCostModel(base_cost=0.0001,
                                    verify_signatures=cfg.verify_signatures)
        return build_testbed(
            name=f"zyzzyva-malicious-{malicious}",
            schema=ZYZZYVA_SCHEMA, codec=ZYZZYVA_CODEC,
            replica_factory=lambda i: ZyzzyvaReplica(i, cfg, auth),
            client_factory=lambda i: ZyzzyvaClient(i, cfg, auth),
            n_replicas=cfg.n, n_clients=cfg.clients,
            malicious_indices=[malicious_index],
            seed=seed, warmup=warmup, window=window,
            cost_model=cost_model, client_cost_model=client_costs,
            message_types=types)

    return factory
