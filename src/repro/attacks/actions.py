"""Malicious message actions (Section II-B).

Two families:

* **Delivery actions** — dropping, delaying, diverting, duplicating; applied
  to where/when a message is delivered, no knowledge of the format needed.
* **Lying actions** — typed mutation of one message field via a
  :class:`~repro.attacks.strategies.LyingStrategy`; requires the message
  format description (the wire schema) but not the protocol semantics.

Every action maps an intercepted message to a list of
:class:`~repro.netem.emulator.Delivery` objects (empty list = dropped) and
serializes to a plain record so that attack scenarios can be stored,
compared, and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import ProxyError
from repro.common.ids import NodeId
from repro.common.rng import RandomStream
from repro.netem.emulator import Delivery
from repro.netem.packets import MessageEnvelope
from repro.wire.codec import ProtocolCodec
from repro.attacks.strategies import LyingStrategy

# Cluster keys used by the weighted-greedy algorithm to group actions that
# tend to behave alike regardless of message type.
CLUSTER_DROP = "drop"
CLUSTER_DELAY = "delay"
CLUSTER_DIVERT = "divert"
CLUSTER_DUPLICATE = "duplicate"
CLUSTER_LIE_BOUNDARY = "lie-boundary"   # min/max/spanning
CLUSTER_LIE_RANDOM = "lie-random"
CLUSTER_LIE_RELATIVE = "lie-relative"   # add/sub/mul


@dataclass
class ActionContext:
    """Everything an action may consult while being applied."""

    codec: ProtocolCodec
    rng: RandomStream
    all_nodes: Sequence[NodeId]


class MaliciousAction:
    """Base class: one way to misbehave on messages of some type."""

    cluster = "none"

    def describe(self) -> str:
        raise NotImplementedError

    def apply(self, envelope: MessageEnvelope,
              ctx: ActionContext) -> List[Delivery]:
        raise NotImplementedError

    # ------------------------------------------------------------- records

    def to_record(self) -> tuple:
        raise NotImplementedError

    @staticmethod
    def from_record(record: tuple) -> "MaliciousAction":
        kind = record[0]
        cls = _ACTION_KINDS.get(kind)
        if cls is None:
            raise ProxyError(f"unknown action kind {kind!r}")
        return cls._from_record(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.describe()}>"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, MaliciousAction)
                and self.to_record() == other.to_record())

    def __hash__(self) -> int:
        return hash(self.to_record())


class DropAction(MaliciousAction):
    """Drop the message (probabilistically)."""

    cluster = CLUSTER_DROP

    def __init__(self, probability: float = 1.0) -> None:
        if not 0.0 < probability <= 1.0:
            raise ProxyError(f"drop probability {probability} out of (0, 1]")
        self.probability = probability

    def describe(self) -> str:
        return f"Drop {self.probability:.0%}"

    def apply(self, envelope: MessageEnvelope,
              ctx: ActionContext) -> List[Delivery]:
        if self.probability >= 1.0 or ctx.rng.random() < self.probability:
            return []
        return [Delivery(envelope.dst, envelope.payload)]

    def to_record(self) -> tuple:
        return ("drop", self.probability)

    @classmethod
    def _from_record(cls, record: tuple) -> "DropAction":
        return cls(record[1])


class DelayAction(MaliciousAction):
    """Inject a fixed delay before the message leaves the malicious node."""

    cluster = CLUSTER_DELAY

    def __init__(self, delay: float) -> None:
        if delay <= 0:
            raise ProxyError(f"delay must be positive, got {delay}")
        self.delay = delay

    def describe(self) -> str:
        return f"Delay {self.delay:g}s"

    def apply(self, envelope: MessageEnvelope,
              ctx: ActionContext) -> List[Delivery]:
        return [Delivery(envelope.dst, envelope.payload, extra_delay=self.delay)]

    def to_record(self) -> tuple:
        return ("delay", self.delay)

    @classmethod
    def _from_record(cls, record: tuple) -> "DelayAction":
        return cls(record[1])


class DivertAction(MaliciousAction):
    """Deliver the message to a node other than the intended destination.

    The replacement destination is the next node (in node order) after the
    original destination, skipping the sender — deterministic, so a divert
    scenario replays identically across branches.
    """

    cluster = CLUSTER_DIVERT

    def describe(self) -> str:
        return "Divert"

    def apply(self, envelope: MessageEnvelope,
              ctx: ActionContext) -> List[Delivery]:
        nodes = [n for n in ctx.all_nodes
                 if n != envelope.dst and n != envelope.src]
        if not nodes:
            return [Delivery(envelope.dst, envelope.payload)]
        ordered = sorted(nodes)
        after = [n for n in ordered if n > envelope.dst]
        target = after[0] if after else ordered[0]
        return [Delivery(target, envelope.payload)]

    def to_record(self) -> tuple:
        return ("divert",)

    @classmethod
    def _from_record(cls, record: tuple) -> "DivertAction":
        return cls()


class DuplicateAction(MaliciousAction):
    """Send ``copies`` copies of the message instead of one."""

    cluster = CLUSTER_DUPLICATE

    def __init__(self, copies: int) -> None:
        if copies < 2:
            raise ProxyError(f"duplicate needs >= 2 copies, got {copies}")
        self.copies = copies

    def describe(self) -> str:
        return f"Dup x{self.copies}"

    def apply(self, envelope: MessageEnvelope,
              ctx: ActionContext) -> List[Delivery]:
        return [Delivery(envelope.dst, envelope.payload)
                for __ in range(self.copies)]

    def to_record(self) -> tuple:
        return ("duplicate", self.copies)

    @classmethod
    def _from_record(cls, record: tuple) -> "DuplicateAction":
        return cls(record[1])


class LyingAction(MaliciousAction):
    """Replace one scalar field with a strategy-derived value."""

    def __init__(self, field: str, strategy: LyingStrategy) -> None:
        self.field = field
        self.strategy = strategy

    @property
    def cluster(self) -> str:  # type: ignore[override]
        from repro.attacks.strategies import (ABS_RANDOM, REL_ADD, REL_MUL,
                                              REL_SUB)
        if self.strategy.kind == ABS_RANDOM:
            return CLUSTER_LIE_RANDOM
        if self.strategy.kind in (REL_ADD, REL_SUB, REL_MUL):
            return CLUSTER_LIE_RELATIVE
        return CLUSTER_LIE_BOUNDARY

    def describe(self) -> str:
        return f"Lie {self.field}={self.strategy.describe()}"

    def apply(self, envelope: MessageEnvelope,
              ctx: ActionContext) -> List[Delivery]:
        spec = ctx.codec.peek_type(envelope.payload)
        if spec is None:
            return [Delivery(envelope.dst, envelope.payload)]
        field_spec = spec.field_named(self.field)
        message = ctx.codec.decode(envelope.payload)
        lied = self.strategy.lie(field_spec.scalar, message[self.field], ctx.rng)
        mutated = ctx.codec.mutate(envelope.payload, self.field, lied)
        return [Delivery(envelope.dst, mutated)]

    def to_record(self) -> tuple:
        return ("lie", self.field, self.strategy.to_record())

    @classmethod
    def _from_record(cls, record: tuple) -> "LyingAction":
        return cls(record[1], LyingStrategy.from_record(tuple(record[2])))


_ACTION_KINDS = {
    "drop": DropAction,
    "delay": DelayAction,
    "divert": DivertAction,
    "duplicate": DuplicateAction,
    "lie": LyingAction,
}


@dataclass(frozen=True)
class AttackScenario:
    """One entry of the attack-scenario list: a message type plus an action."""

    message_type: str
    action: MaliciousAction

    def describe(self) -> str:
        return f"{self.action.describe()} {self.message_type}"

    @property
    def cluster(self) -> str:
        return self.action.cluster

    def to_record(self) -> tuple:
        return (self.message_type, self.action.to_record())

    @classmethod
    def from_record(cls, record: tuple) -> "AttackScenario":
        return cls(record[0], MaliciousAction.from_record(tuple(record[1])))
