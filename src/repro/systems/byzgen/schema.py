"""Byzantine Generals wire protocol (classroom target, Section V-D)."""

from __future__ import annotations

from repro.wire import ProtocolCodec, ProtocolSchema, parse_schema

BYZGEN_SCHEMA_TEXT = """
protocol byzgen

message Order = 1 {
    round:     u32
    value:     u8
    commander: u16
    sent_at:   u64
}

message Relay = 2 {
    round:   u32
    value:   u8
    relayer: u16
}

message Decision = 3 {
    round: u32
    value: u8
    node:  u16
}
"""

BYZGEN_SCHEMA: ProtocolSchema = parse_schema(BYZGEN_SCHEMA_TEXT)
BYZGEN_CODEC = ProtocolCodec(BYZGEN_SCHEMA)
