"""Lying strategies over typed message fields (Section II-B).

"An attacker can lie about a field based on absolute and relative values.
For absolute value based lying, we assume min, max, random and spanning
where spanning means values from a set which spans the range of the data
type.  For relative value based lying, we assume addition, subtraction and
multiplication of the original value."

A strategy maps (field type, original value, rng) to the lied value.  The
result is wrapped into the field's representable range the way a raw C store
would wrap, so e.g. ``sub 1`` on an unsigned sequence number of 0 produces
the huge positive value an attacker would actually put on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.common.errors import ProxyError
from repro.common.rng import RandomStream
from repro.wire.types import ScalarType

Number = Union[int, float, bool]

ABS_MIN = "min"
ABS_MAX = "max"
ABS_RANDOM = "random"
ABS_SPANNING = "spanning"
REL_ADD = "add"
REL_SUB = "sub"
REL_MUL = "mul"

ABSOLUTE_STRATEGIES = (ABS_MIN, ABS_MAX, ABS_RANDOM, ABS_SPANNING)
RELATIVE_STRATEGIES = (REL_ADD, REL_SUB, REL_MUL)
ALL_STRATEGIES = ABSOLUTE_STRATEGIES + RELATIVE_STRATEGIES


@dataclass(frozen=True)
class LyingStrategy:
    """One concrete way to lie about one field.

    ``operand`` parameterizes the strategy: the summand/factor for relative
    strategies, or the index into the type's spanning set for ``spanning``.
    """

    kind: str
    operand: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_STRATEGIES:
            raise ProxyError(f"unknown lying strategy {self.kind!r}")

    def describe(self) -> str:
        if self.kind in (REL_ADD, REL_SUB, REL_MUL):
            return f"{self.kind} {self.operand:g}"
        if self.kind == ABS_SPANNING:
            return f"spanning[{int(self.operand)}]"
        return self.kind

    def lie(self, field_type: ScalarType, original: Number,
            rng: RandomStream) -> Number:
        if self.kind == ABS_MIN:
            value = field_type.min_value
        elif self.kind == ABS_MAX:
            value = field_type.max_value
        elif self.kind == ABS_RANDOM:
            if field_type.is_bool:
                value = bool(rng.randint(0, 1))
            elif field_type.is_integer:
                value = rng.randint(int(field_type.min_value),
                                    int(field_type.max_value))
            else:
                value = rng.uniform(-1e9, 1e9)
        elif self.kind == ABS_SPANNING:
            span = field_type.spanning_values()
            value = span[int(self.operand) % len(span)]
        elif self.kind == REL_ADD:
            value = _as_number(original) + self.operand
        elif self.kind == REL_SUB:
            value = _as_number(original) - self.operand
        else:  # REL_MUL
            value = _as_number(original) * self.operand
        return field_type.wrap(value)

    # ------------------------------------------------------------- records

    def to_record(self) -> tuple:
        return (self.kind, self.operand)

    @classmethod
    def from_record(cls, record: tuple) -> "LyingStrategy":
        return cls(record[0], record[1])


def _as_number(value: Number) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    return value


def default_strategies(field_type: ScalarType) -> List[LyingStrategy]:
    """The standard strategy set the action space enumerates for a field."""
    strategies = [LyingStrategy(ABS_MIN), LyingStrategy(ABS_MAX),
                  LyingStrategy(ABS_RANDOM)]
    span_count = len(field_type.spanning_values())
    strategies.extend(LyingStrategy(ABS_SPANNING, i) for i in range(span_count))
    if not field_type.is_bool:
        strategies.extend([
            LyingStrategy(REL_ADD, 1), LyingStrategy(REL_SUB, 1),
            LyingStrategy(REL_MUL, 2), LyingStrategy(REL_MUL, -1),
        ])
    return strategies
