"""Weighted greedy attack search — the paper's new algorithm (Fig. 2(c)).

Observations it builds on:

* certain *categories* of malicious action are effective regardless of
  message type, so actions are clustered (delay, drop, duplicate, divert,
  boundary lies, relative lies, random lies) and clusters carry weights;
* the user ultimately wants *all* attacks, not the strongest one first, so
  time-to-find matters more than ordering.

The algorithm tries actions in descending cluster weight and **stops the
moment it encounters an action whose performance damage exceeds Δ**,
reporting it as an attack and bumping the cluster's weight so later message
types try that category sooner.  Only when no action clears Δ does it fall
back to greedy behaviour and evaluate everything, keeping the worst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.attacks.actions import (CLUSTER_DELAY, CLUSTER_DIVERT,
                                   CLUSTER_DROP, CLUSTER_DUPLICATE,
                                   CLUSTER_LIE_BOUNDARY, CLUSTER_LIE_RANDOM,
                                   CLUSTER_LIE_RELATIVE, AttackScenario,
                                   MaliciousAction)
from repro.controller.supervisor import ScenarioQuarantined
from repro.search.base import SearchAlgorithm, is_attack_sample
from repro.search.results import AttackFinding, SearchReport

#: Preloaded cluster weights.  "The weight of each cluster can be preloaded"
#: — these reflect the prior the paper's authors accumulated: delivery
#: timing attacks (delay/drop) are the most broadly effective, duplication
#: next, boundary-value lies find crashes, diversion and arbitrary lies
#: rarely beat them.
DEFAULT_WEIGHTS: Dict[str, float] = {
    CLUSTER_DELAY: 1.00,
    CLUSTER_DROP: 0.90,
    CLUSTER_DUPLICATE: 0.80,
    CLUSTER_LIE_BOUNDARY: 0.70,
    CLUSTER_LIE_RELATIVE: 0.50,
    CLUSTER_DIVERT: 0.40,
    CLUSTER_LIE_RANDOM: 0.30,
}

#: weight bump applied to a cluster whose action was confirmed as an attack
WEIGHT_BUMP = 0.25


@dataclass
class ClusterWeights:
    """Mutable cluster weights with the learning rule."""

    weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def weight(self, cluster: str) -> float:
        return self.weights.get(cluster, 0.1)

    def bump(self, cluster: str, amount: float = WEIGHT_BUMP) -> None:
        self.weights[cluster] = self.weight(cluster) + amount

    def order_actions(self, actions: Sequence[MaliciousAction]
                      ) -> List[MaliciousAction]:
        """Stable sort: descending cluster weight, enumeration order within."""
        indexed = list(enumerate(actions))
        indexed.sort(key=lambda pair: (-self.weight(pair[1].cluster), pair[0]))
        return [action for __, action in indexed]


class WeightedGreedySearch(SearchAlgorithm):
    """Cluster-weighted ordering with early stop on the first attack found."""

    name = "weighted-greedy"

    def __init__(self, *args, weights: Optional[ClusterWeights] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.weights = weights or ClusterWeights()

    def _run_pass(self, message_types: Optional[Sequence[str]] = None,
                  exclude: Optional[Set[tuple]] = None) -> SearchReport:
        exclude = exclude or set()
        try:
            self._start_run()
        except ScenarioQuarantined as q:
            # The platform could not even produce a warm testbed; report an
            # empty (but intact) pass rather than killing the hunt.
            report = self._make_report()
            report.quarantined.append(self._quarantine_entry(q, "*", None))
            return self._finalize_report(report)
        report = self._make_report()
        space = self._space()

        for message_type in self._search_types(message_types):
            actions = [a for a in space.actions_for(message_type)
                       if self._exclude_key(AttackScenario(message_type, a))
                       not in exclude]
            if not actions:
                continue
            try:
                ctx = self._acquire_context(message_type)
            except ScenarioQuarantined as q:
                report.quarantined.append(
                    self._quarantine_entry(q, message_type, None))
                continue
            if ctx is None:
                report.types_without_injection.append(message_type)
                continue
            report.injection_points += 1

            ordered = self.weights.order_actions(actions)
            worst: Optional[AttackFinding] = None
            found = False
            for action in ordered:
                try:
                    sample = self._measure_action(ctx, action)
                except ScenarioQuarantined as q:
                    report.quarantined.append(
                        self._quarantine_entry(q, message_type, action))
                    continue
                report.scenarios_evaluated += 1
                # ctx.baseline tracks any mid-type rebuild, so damage is
                # always computed against the same world the sample saw.
                baseline = ctx.baseline
                damage = self.threshold.damage(baseline, sample)
                crashed = sample.crashed_nodes > baseline.crashed_nodes
                finding = AttackFinding(
                    AttackScenario(message_type, action), baseline, sample,
                    damage=1.0 if crashed else damage,
                    crashes=sample.crashed_nodes,
                    found_at=self.ledger.total())
                if is_attack_sample(self.threshold, baseline, sample):
                    # Stop immediately: this action is an attack.  Learn.
                    self.weights.bump(action.cluster)
                    report.findings.append(finding)
                    found = True
                    break
                if worst is None or finding.damage > worst.damage:
                    worst = finding
            if not found and worst is not None:
                # No action cleared Δ: all actions were evaluated and the
                # worst is chosen (greedy fallback), but it is recorded as a
                # weak selection, not a confirmed attack.
                worst.found_at = self.ledger.total()
                report.weak_selections.append(worst)
        return self._finalize_report(report)
