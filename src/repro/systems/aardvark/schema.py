"""Aardvark wire protocol: PBFT's message formats under its own protocol id.

Aardvark's wire protocol is PBFT's (it is a hardened PBFT); the schema is
re-parsed under the ``aardvark`` protocol name so tooling distinguishes the
two deployments.
"""

from __future__ import annotations

from repro.wire import ProtocolCodec, ProtocolSchema, parse_schema
from repro.systems.pbft.schema import PBFT_SCHEMA_TEXT

AARDVARK_SCHEMA_TEXT = PBFT_SCHEMA_TEXT.replace(
    "protocol pbft", "protocol aardvark", 1)

AARDVARK_SCHEMA: ProtocolSchema = parse_schema(AARDVARK_SCHEMA_TEXT)
AARDVARK_CODEC = ProtocolCodec(AARDVARK_SCHEMA)
