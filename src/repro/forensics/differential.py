"""Benign-vs-attack differential analysis.

Both branches start from the *same* injection-point snapshot, so their
chronologies are identical up to the injected action; everything after
the first divergence is the attack's effect.  :func:`diff_branches`
aligns the two chronologies (FIFO matching on event identity, with a
second content-blind pass that pairs mutated payloads), locates that
first divergence, and attributes the downstream damage: per-node
delivery deltas per message type, suppressed protocol phases, crash
chains, and per-window performance timelines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.forensics.causality import DELIVER, CausalRecorder

#: virtual-time slack below which two matched events count as simultaneous
TIME_EPSILON = 1e-9

ABSENT = "absent"        # benign event never happened under attack
MUTATED = "mutated"      # same message, different payload content
DELAYED = "delayed"      # same event, shifted in virtual time
EXTRA = "extra"          # attack produced an event with no benign twin
NONE = "none"            # chronologies are identical


@dataclass(frozen=True)
class Divergence:
    """The first point where the attack execution departs the baseline."""

    kind: str                        # absent | mutated | delayed | extra | none
    event_kind: str = ""             # send | egress | deliver | handle
    msg_seq: int = -1
    message_type: str = ""
    src: str = ""
    dst: str = ""
    benign_time: Optional[float] = None
    attack_time: Optional[float] = None

    @property
    def found(self) -> bool:
        return self.kind != NONE

    def describe(self) -> str:
        if not self.found:
            return "no divergence: attack chronology matches baseline"
        when = (f"t={self.benign_time:.4f}" if self.benign_time is not None
                else f"t={self.attack_time:.4f}")
        tail = ""
        if self.kind == DELAYED and self.attack_time is not None \
                and self.benign_time is not None:
            tail = f" (+{self.attack_time - self.benign_time:.4f}s)"
        return (f"{self.kind}: {self.message_type} (seq {self.msg_seq}) "
                f"{self.event_kind} {self.src}->{self.dst} {when}{tail}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "event_kind": self.event_kind,
            "msg_seq": self.msg_seq,
            "message_type": self.message_type,
            "src": self.src,
            "dst": self.dst,
            "benign_time": self.benign_time,
            "attack_time": self.attack_time,
        }


@dataclass(frozen=True)
class DeliveryDelta:
    """Delivery-count change for one (node, message type) pair."""

    node: str
    message_type: str
    benign: int
    attack: int

    @property
    def delta(self) -> int:
        return self.attack - self.benign

    def to_dict(self) -> dict:
        return {"node": self.node, "message_type": self.message_type,
                "benign": self.benign, "attack": self.attack,
                "delta": self.delta}


@dataclass(frozen=True)
class PerfPoint:
    """One bucket of a performance timeline."""

    start: float
    throughput: float
    completed: int
    latency_avg: float

    def to_dict(self) -> dict:
        return {"start": self.start, "throughput": self.throughput,
                "completed": self.completed, "latency_avg": self.latency_avg}


@dataclass
class PerfTimeline:
    """Bucketed throughput/latency series over one observation window."""

    start: float
    end: float
    bucket: float
    overall: List[PerfPoint] = field(default_factory=list)
    per_node: Dict[str, List[PerfPoint]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "start": self.start, "end": self.end, "bucket": self.bucket,
            "overall": [p.to_dict() for p in self.overall],
            "per_node": {node: [p.to_dict() for p in series]
                         for node, series in sorted(self.per_node.items())},
        }


def perf_timeline(metrics, start: float, end: float,
                  buckets: int = 6) -> PerfTimeline:
    """Per-bucket (and per-node) UPDATE_DONE series from the collector."""
    from repro.metrics.collector import UPDATE_DONE
    timeline = PerfTimeline(start, end, 0.0)
    if end <= start or buckets <= 0:
        return timeline
    width = (end - start) / buckets
    timeline.bucket = width
    events = [e for e in metrics.events(UPDATE_DONE) if start <= e.time <= end]
    by_node: Dict[str, List] = {}
    for event in events:
        by_node.setdefault(f"{event.node[1]}{event.node[0]}",
                           []).append(event)

    def series(evts) -> List[PerfPoint]:
        out = []
        for i in range(buckets):
            lo = start + i * width
            hi = end if i == buckets - 1 else lo + width
            hit = [e for e in evts if lo <= e.time <= hi]
            values = [e.value for e in hit]
            out.append(PerfPoint(
                lo, len(hit) / width if width > 0 else 0.0, len(hit),
                sum(values) / len(values) if values else 0.0))
        return out

    timeline.overall = series(events)
    timeline.per_node = {node: series(evts)
                         for node, evts in sorted(by_node.items())}
    return timeline


@dataclass
class DifferentialResult:
    """Everything the benign-vs-attack alignment produced."""

    divergence: Divergence
    delivery_deltas: List[DeliveryDelta] = field(default_factory=list)
    suppressed_types: List[str] = field(default_factory=list)
    #: benign descendants of the divergent message missing under attack
    lost_descendants: int = 0
    benign_events: int = 0
    attack_events: int = 0
    matched_events: int = 0


def _align(benign: List, attack: List) -> Tuple[list, list, list, list]:
    """FIFO-match the chronologies; returns (pairs, mutated, absent, extra).

    ``pairs``/``mutated`` are (benign_index, attack_index) tuples; the
    others are index lists into their own chronology.  Matching is
    deterministic: events pair in first-in-first-out order per identity
    key, so duplicated messages consume matches one copy at a time.
    """
    remaining: Dict[tuple, deque] = {}
    for j, event in enumerate(attack):
        remaining.setdefault(event.identity(), deque()).append(j)
    pairs, unmatched_benign = [], []
    taken = [False] * len(attack)
    for i, event in enumerate(benign):
        queue = remaining.get(event.identity())
        if queue:
            j = queue.popleft()
            taken[j] = True
            pairs.append((i, j))
        else:
            unmatched_benign.append(i)
    # Second pass, content-blind: a benign event whose twin exists with a
    # different payload digest is a mutation, not an absence.
    loose: Dict[tuple, deque] = {}
    for j, event in enumerate(attack):
        if not taken[j]:
            loose.setdefault(event.loose_identity(), deque()).append(j)
    mutated, absent = [], []
    for i in unmatched_benign:
        queue = loose.get(benign[i].loose_identity())
        if queue:
            j = queue.popleft()
            taken[j] = True
            mutated.append((i, j))
        else:
            absent.append(i)
    extra = [j for j in range(len(attack)) if not taken[j]]
    return pairs, mutated, absent, extra


def first_divergence(benign: CausalRecorder,
                     attack: CausalRecorder) -> Divergence:
    """Locate the first point where the attack chronology departs."""
    pairs, mutated, absent, extra = _align(benign.events, attack.events)

    candidates: List[Tuple[float, int, int, Divergence]] = []

    def benign_side(i: int, kind: str, j: Optional[int]) -> None:
        event = benign.events[i]
        attack_time = attack.events[j].time if j is not None else None
        candidates.append((event.time, 0, i, Divergence(
            kind, event.kind, event.msg_seq, event.message_type,
            event.src, event.dst, event.time, attack_time)))

    for i in absent:
        benign_side(i, ABSENT, None)
    for i, j in mutated:
        benign_side(i, MUTATED, j)
    for i, j in pairs:
        if abs(attack.events[j].time - benign.events[i].time) > TIME_EPSILON:
            benign_side(i, DELAYED, j)
    for j in extra:
        event = attack.events[j]
        candidates.append((event.time, 1, j, Divergence(
            EXTRA, event.kind, event.msg_seq, event.message_type,
            event.src, event.dst, None, event.time)))
    if not candidates:
        return Divergence(NONE)
    # Earliest in virtual time wins; ties prefer the benign-side anomaly
    # (something missing explains more than something added), then the
    # earliest position in its own chronology.
    candidates.sort(key=lambda c: (c[0], c[1], c[2]))
    return candidates[0][3]


def _delivery_counts(recorder: CausalRecorder) -> Dict[Tuple[str, str], int]:
    counts: Dict[Tuple[str, str], int] = {}
    for event in recorder.events:
        if event.kind == DELIVER:
            key = (event.dst, event.message_type)
            counts[key] = counts.get(key, 0) + 1
    return counts


def diff_branches(benign: CausalRecorder,
                  attack: CausalRecorder) -> DifferentialResult:
    """Full differential: divergence plus downstream-effect attribution."""
    divergence = first_divergence(benign, attack)
    pairs, mutated, absent, extra = _align(benign.events, attack.events)
    result = DifferentialResult(
        divergence=divergence,
        benign_events=len(benign.events),
        attack_events=len(attack.events),
        matched_events=len(pairs))

    benign_counts = _delivery_counts(benign)
    attack_counts = _delivery_counts(attack)
    for key in sorted(set(benign_counts) | set(attack_counts)):
        b, a = benign_counts.get(key, 0), attack_counts.get(key, 0)
        if b != a:
            result.delivery_deltas.append(
                DeliveryDelta(key[0], key[1], b, a))

    benign_types: Dict[str, int] = {}
    attack_types: Dict[str, int] = {}
    for (__, mtype), count in benign_counts.items():
        benign_types[mtype] = benign_types.get(mtype, 0) + count
    for (__, mtype), count in attack_counts.items():
        attack_types[mtype] = attack_types.get(mtype, 0) + count
    result.suppressed_types = sorted(
        mtype for mtype, count in benign_types.items()
        if count > 0 and attack_types.get(mtype, 0) == 0)

    if divergence.found and divergence.msg_seq >= 0:
        benign_graph = benign.graph()
        attacked_seqs = {e.msg_seq for e in attack.events
                        if e.kind == DELIVER}
        result.lost_descendants = sum(
            1 for seq in benign_graph.descendants(divergence.msg_seq)
            if seq not in attacked_seqs)
    return result
