"""The controller: orchestrates executions, branching, and measurement.

The controller "is a separate process that communicates with the network
emulator and each individual VM" (Section IV-A).  :class:`AttackHarness`
is that controller: it boots a testbed, runs it to attack injection points,
takes distributed snapshots, branches once per candidate action, measures
the observation window, and charges every second of platform time to a
:class:`~repro.controller.costs.CostLedger`.

Target systems plug in through a :class:`TestbedInstance` factory — a
callable that, given a seed, builds a booted-ready world with its malicious
proxy, schema, warmup duration, and observation window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.attacks.actions import MaliciousAction
from repro.attacks.proxy import INJECTION_POINT, MaliciousProxy
from repro.common.errors import SearchError
from repro.common.ids import NodeId
from repro.controller.branching import DistributedSnapshotter, WorldSnapshot
from repro.controller.costs import (BOOT, EXECUTION, SNAPSHOT_RESTORE,
                                    SNAPSHOT_SAVE, CostLedger)
from repro.controller.monitor import (AttackThreshold, PerfSample,
                                      PerformanceMonitor)
from repro.controller.supervisor import OP_BOOT, OP_PROXY, FaultPlan
from repro.runtime.world import World
from repro.telemetry.tracer import NULL_SPAN, Tracer
from repro.vm.snapshots import SnapshotStore
from repro.wire.schema import ProtocolSchema


@dataclass
class TestbedInstance:
    """One built (not yet booted) deployment of a target system."""

    name: str
    world: World
    proxy: MaliciousProxy
    schema: ProtocolSchema
    malicious: List[NodeId]
    warmup: float = 3.0
    window: float = 6.0
    #: message types the search should consider (defaults to whole schema)
    message_types: Optional[List[str]] = None

    def search_types(self) -> List[str]:
        if self.message_types is not None:
            return list(self.message_types)
        return self.schema.message_names()


TestbedFactory = Callable[[int], TestbedInstance]


@dataclass
class InjectionPoint:
    """Where an attack scenario begins: first send of the target type."""

    message_type: str
    time: float
    src: NodeId
    dst: NodeId
    snapshot: WorldSnapshot


class AttackHarness:
    """Drives one testbed instance through branch-and-measure cycles."""

    #: how long to wait for a message of the target type before giving up
    DEFAULT_MAX_WAIT = 30.0

    def __init__(self, factory: TestbedFactory, seed: int = 0,
                 threshold: Optional[AttackThreshold] = None,
                 shared_pages: bool = True,
                 delta_snapshots: bool = False,
                 ledger: Optional[CostLedger] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 fault_schedule=None,
                 watchdog_limit: Optional[int] = None,
                 tracer: Optional[Tracer] = None,
                 log_events: bool = False,
                 injection_cache: bool = False,
                 log_max_records: Optional[int] = None,
                 snapshot_budget=None) -> None:
        self.factory = factory
        self.seed = seed
        self.threshold = threshold or AttackThreshold()
        self.shared_pages = shared_pages
        #: injection-point snapshots store only pages changed since the
        #: warm snapshot (cheaper saves; see SnapshotManager.save_delta)
        self.delta_snapshots = delta_snapshots
        self.ledger = ledger or CostLedger()
        #: deterministic platform fault injection (None: no faults)
        self.fault_plan = fault_plan
        #: environmental fault schedule armed on every testbed before
        #: warmup (chaos layer; None: a pristine environment)
        self.fault_schedule = fault_schedule
        #: events-per-window cap installed on each instance's kernel
        self.watchdog_limit = watchdog_limit
        #: platform-side tracer (never rewound by restores); None disables
        self.tracer = tracer
        #: enable each instance's EventLog so records can be exported
        self.log_events = log_events
        #: ring-buffer cap applied to each instance's EventLog when the
        #: log is enabled (None: full retention — what forensics asks for)
        self.log_max_records = log_max_records
        #: memoize each type's injection point against the warm snapshot
        #: (the deterministic world reproduces it, so re-seeking from the
        #: warm state only re-pays execution for an identical answer)
        self.injection_cache = injection_cache
        #: optional :class:`~repro.store.budget.SnapshotBudget` bounding the
        #: injection-point cache by stored bytes; evicted entries rebuild
        #: deterministically on demand, charged to the budget's own ledger
        self.snapshot_budget = snapshot_budget
        self.instance: Optional[TestbedInstance] = None
        self.snapshotter: Optional[DistributedSnapshotter] = None
        self.monitor: Optional[PerformanceMonitor] = None
        self.warm_snapshot: Optional[WorldSnapshot] = None
        #: (message_type, warm epoch) -> InjectionPoint
        self._injection_points = SnapshotStore(
            budget=snapshot_budget,
            size_of=lambda point: point.snapshot.cluster_snapshot
            .stored_bytes())
        #: bumped by every (re)build, so cache entries keyed against an old
        #: warm snapshot can never leak into a rebuilt world
        self._warm_epoch = 0

    # ------------------------------------------------------------- lifecycle

    def _span(self, name: str, **args):
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer.span(name, **args)
        return NULL_SPAN

    def _wire_telemetry(self, instance: TestbedInstance) -> None:
        """Attach the platform tracer and flip on the world's observers."""
        world = instance.world
        if self.log_events:
            world.log.enabled = True
            if self.log_max_records is not None:
                world.log.max_records = self.log_max_records
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.attach_clock(lambda: world.kernel.now)
            world.instruments.enabled = True
            world.kernel.tracer = self.tracer
            instance.proxy.tracer = self.tracer

    def start_run(self, take_warm_snapshot: bool = True) -> TestbedInstance:
        """Build, boot, and warm up a fresh instance of the testbed."""
        if self.fault_plan is not None:
            self.fault_plan.check(OP_BOOT)
        self._warm_epoch += 1
        self._injection_points.clear()
        self.instance = self.factory(self.seed)
        world = self.instance.world
        self._wire_telemetry(self.instance)
        if self.watchdog_limit is not None:
            world.set_watchdog(self.watchdog_limit)
        with self._span("harness.boot", testbed=self.instance.name,
                        seed=self.seed) as span:
            boot_time = world.boot()
            span.set(boot_time=boot_time, nodes=len(world.nodes))
        self.ledger.charge(BOOT, boot_time)
        if self.fault_schedule is not None and not self.fault_schedule.empty:
            # Arm the chaos layer before warmup so the warm snapshot — and
            # everything branched from it — lives inside the perturbed
            # environment, with pending fault events in injector state.
            from repro.faults.injector import FaultInjector
            injector = FaultInjector(world, self.fault_schedule)
            world.install_fault_injector(injector)
            injector.arm()
        self.snapshotter = DistributedSnapshotter(
            world, shared_pages=self.shared_pages,
            fault_plan=self.fault_plan, tracer=self.tracer)
        self.monitor = PerformanceMonitor(world.metrics)
        with self._span("harness.warmup", duration=self.instance.warmup):
            self._run(self.instance.warmup)
        if take_warm_snapshot:
            self.warm_snapshot = self.take_snapshot()
        return self.instance

    def _require_instance(self) -> TestbedInstance:
        if self.instance is None:
            raise SearchError("harness has no running instance; call start_run")
        return self.instance

    @property
    def world(self) -> World:
        return self._require_instance().world

    @property
    def proxy(self) -> MaliciousProxy:
        return self._require_instance().proxy

    def _run(self, duration: float):
        """Run the world for ``duration``, charging execution time.

        The charge lands even when the run raises (e.g. a watchdog trip):
        the platform spent that time whether or not the window completed.
        """
        start = self.world.kernel.now
        try:
            return self.world.run_for(duration)
        finally:
            self.ledger.charge(EXECUTION, self.world.kernel.now - start)

    # -------------------------------------------------------------- snapshot

    def take_snapshot(self) -> WorldSnapshot:
        delta_base = None
        if self.delta_snapshots and self.warm_snapshot is not None:
            delta_base = self.warm_snapshot.cluster_snapshot
        snapshot = self.snapshotter.save(delta_base=delta_base)
        self.ledger.charge(SNAPSHOT_SAVE, snapshot.save_cost)
        return snapshot

    def restore(self, snapshot: WorldSnapshot) -> None:
        cost = self.snapshotter.restore(snapshot)
        self.ledger.charge(SNAPSHOT_RESTORE, cost)

    # ------------------------------------------------------------ injection

    def cached_injection(self, message_type: str) -> Optional[InjectionPoint]:
        """The memoized injection point for ``message_type``, if any.

        Only entries taken against the *current* warm snapshot qualify; a
        rebuild bumps the warm epoch, invalidating everything cached
        against the dead world.
        """
        if not self.injection_cache:
            return None
        return self._injection_points.get((message_type, self._warm_epoch))

    def evicted_injection(self, message_type: str) -> bool:
        """Whether this type's cache entry was evicted by the byte budget
        (a capacity miss: the deterministic world can rebuild it)."""
        return self._injection_points.was_evicted(
            (message_type, self._warm_epoch))

    def rebuild_injection(self, message_type: str,
                          max_wait: Optional[float] = None
                          ) -> Optional[InjectionPoint]:
        """Re-derive a budget-evicted injection point from the warm state.

        The deterministic world reproduces the identical point, so the
        only difference from a cache hit is where the time goes: every
        charge (warm restore, seek execution, snapshot save) lands on the
        *budget's* side-channel ledger, keeping the report ledger — and
        therefore the report JSON — byte-identical to an unbudgeted run.
        Returns None unless this is genuinely a capacity miss.
        """
        if self.snapshot_budget is None \
                or not self.evicted_injection(message_type):
            return None
        instance = self._require_instance()
        ledger = self.ledger
        self.ledger = sub = CostLedger()
        try:
            self.restore(self.warm_snapshot)
            instance.proxy.clear_policy()
            point = self.run_to_injection(message_type, max_wait=max_wait)
        finally:
            self.ledger = ledger
            self.snapshot_budget.note_rebuild(sub.total())
        return point

    def run_to_injection(self, message_type: str,
                         max_wait: Optional[float] = None
                         ) -> Optional[InjectionPoint]:
        """Arm the proxy and run until the target type is intercepted.

        Returns the injection point (with the world snapshotted while the
        message is held inside the emulator), or None if no message of that
        type was sent within ``max_wait`` — the wasted execution is charged,
        as it would be on the real platform.
        """
        instance = self._require_instance()
        wait = max_wait if max_wait is not None else self.DEFAULT_MAX_WAIT
        deadline = self.world.kernel.now + wait
        if self.fault_plan is not None:
            self.fault_plan.check(OP_PROXY)
        instance.proxy.arm(message_type)
        with self._span("harness.seek", message_type=message_type,
                        max_wait=wait) as span:
            try:
                while True:
                    start = self.world.kernel.now
                    try:
                        interrupt = self.world.run_until(deadline)
                    finally:
                        self.ledger.charge(EXECUTION,
                                           self.world.kernel.now - start)
                    if interrupt is None:
                        instance.proxy.disarm()
                        span.set(found=False)
                        return None
                    if interrupt.reason != INJECTION_POINT:
                        continue
                    info = interrupt.payload
                    snapshot = self.take_snapshot()
                    span.set(found=True, time=info["time"])
                    point = InjectionPoint(info["message_type"], info["time"],
                                           info["src"], info["dst"], snapshot)
                    if self.injection_cache:
                        self._injection_points.put(
                            (message_type, self._warm_epoch), point)
                    return point
            except BaseException:
                # An exception mid-seek (watchdog trip, snapshot fault...)
                # must not leave the proxy armed or the injection message
                # stranded.
                instance.proxy.abort_injection()
                raise

    # ----------------------------------------------------------- branching

    def branch_measure(self, injection: InjectionPoint,
                       action: Optional[MaliciousAction]) -> PerfSample:
        """Measure one branch: restore, apply ``action``, run the window.

        ``action`` None measures the baseline branch (the held message is
        released unmodified and no policy is installed).
        """
        instance = self._require_instance()
        with self._span("harness.branch",
                        message_type=injection.message_type,
                        action=type(action).__name__ if action else "baseline"):
            try:
                self.restore(injection.snapshot)
                instance.proxy.disarm()
                instance.proxy.clear_policy()
                if action is not None:
                    instance.proxy.set_policy(injection.message_type, action)
                instance.proxy.release_held(action)
                with self._span("harness.measure", window=instance.window):
                    self._run(instance.window)
            finally:
                # Whatever happened — clean restore-and-measure or a platform
                # fault anywhere in the branch — the proxy ends disarmed,
                # with no policy installed and no held message stranded.
                instance.proxy.clear_policy()
                instance.proxy.abort_injection()
            crashed = len(self.world.crashed_nodes())
            return self.monitor.sample(injection.time,
                                       injection.time + instance.window,
                                       crashed_nodes=crashed)

    # -------------------------------------------------------------- measure

    def measure_window(self, window: Optional[float] = None) -> PerfSample:
        """Run and measure a window from 'now' (no branching)."""
        instance = self._require_instance()
        w = window if window is not None else instance.window
        start = self.world.kernel.now
        with self._span("harness.measure", window=w):
            self._run(w)
        crashed = len(self.world.crashed_nodes())
        return self.monitor.sample(start, start + w, crashed_nodes=crashed)
