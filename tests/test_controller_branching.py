"""Tests for distributed snapshots and execution branching.

The load-bearing property for the whole platform: restoring a snapshot
rewinds the entire world (nodes, network, clocks, randomness, metrics), and
re-running from it is exactly repeatable — the controller compares branches,
so branch determinism is correctness, not a nicety.
"""

import pytest

from repro.attacks.actions import DelayAction, DropAction
from repro.common.errors import SnapshotError
from repro.common.ids import replica
from repro.controller.branching import DistributedSnapshotter
from repro.controller.harness import AttackHarness
from repro.systems.paxos.testbed import paxos_testbed
from repro.systems.pbft.testbed import pbft_testbed


def world_digest(world):
    """A digest over every node's full state."""
    import hashlib
    import pickle
    h = hashlib.blake2b(digest_size=16)
    for node_id in sorted(world.nodes):
        h.update(pickle.dumps(world.nodes[node_id].snapshot_state(),
                              protocol=4))
    h.update(pickle.dumps(world.metrics.save_state(), protocol=4))
    h.update(repr(world.kernel.now).encode())
    return h.digest()


@pytest.fixture(scope="module")
def harness():
    h = AttackHarness(paxos_testbed(warmup=1.0, window=1.5), seed=3)
    h.start_run()
    return h


class TestSnapshotterBasics:
    def test_requires_booted_world(self):
        instance = paxos_testbed()(0)
        with pytest.raises(SnapshotError):
            DistributedSnapshotter(instance.world)

    def test_save_returns_costs(self, harness):
        snap = harness.snapshotter.save()
        assert snap.save_cost > 0
        assert snap.restore_cost > 0
        assert snap.restore_cost < snap.save_cost
        assert snap.taken_at == harness.world.kernel.now

    def test_save_leaves_world_running(self, harness):
        harness.snapshotter.save()
        assert not harness.world.emulator.frozen
        assert not harness.world.cluster.all_paused


class TestRewind:
    def test_restore_rewinds_clock_and_state(self):
        h = AttackHarness(paxos_testbed(warmup=1.0), seed=1)
        h.start_run()
        snap = h.take_snapshot()
        t0 = h.world.kernel.now
        d0 = world_digest(h.world)
        h.world.run_for(1.0)
        assert h.world.kernel.now > t0
        h.restore(snap)
        assert h.world.kernel.now == t0
        assert world_digest(h.world) == d0

    def test_branch_execution_is_repeatable(self):
        h = AttackHarness(paxos_testbed(warmup=1.0), seed=2)
        h.start_run()
        snap = h.take_snapshot()

        digests, throughputs = [], []
        for __ in range(3):
            h.restore(snap)
            h.world.run_for(1.5)
            digests.append(world_digest(h.world))
            throughputs.append(h.world.metrics.throughput(
                snap.taken_at, snap.taken_at + 1.5))
        assert digests[0] == digests[1] == digests[2]
        assert throughputs[0] == throughputs[1] == throughputs[2]
        assert throughputs[0] > 0

    def test_different_branches_can_diverge(self):
        h = AttackHarness(pbft_testbed(warmup=1.0, window=1.5), seed=2)
        inst = h.start_run()
        injection = h.run_to_injection("PrePrepare")
        assert injection is not None
        baseline = h.branch_measure(injection, None)
        attacked = h.branch_measure(injection, DelayAction(1.0))
        assert baseline.throughput > 0
        assert attacked.throughput < baseline.throughput / 2

    def test_branches_do_not_contaminate_each_other(self):
        h = AttackHarness(pbft_testbed(warmup=1.0, window=1.5), seed=2)
        h.start_run()
        injection = h.run_to_injection("PrePrepare")
        before = h.branch_measure(injection, None)
        h.branch_measure(injection, DropAction(1.0))
        after = h.branch_measure(injection, None)
        assert after.throughput == pytest.approx(before.throughput)


class TestHarness:
    def test_run_to_injection_returns_point(self):
        h = AttackHarness(pbft_testbed(warmup=1.0, window=1.0), seed=4)
        h.start_run()
        injection = h.run_to_injection("PrePrepare")
        assert injection is not None
        assert injection.message_type == "PrePrepare"
        assert injection.src == replica(0)
        assert injection.time <= h.world.kernel.now

    def test_run_to_injection_times_out_for_unsent_type(self):
        h = AttackHarness(pbft_testbed(warmup=0.5, window=1.0), seed=4)
        h.start_run()
        before = h.ledger.total()
        injection = h.run_to_injection("ViewChange", max_wait=2.0)
        assert injection is None
        # the wasted execution is charged
        assert h.ledger.total() >= before + 2.0

    def test_ledger_categories_populated(self):
        h = AttackHarness(pbft_testbed(warmup=1.0, window=1.0), seed=4)
        h.start_run()
        injection = h.run_to_injection("PrePrepare")
        h.branch_measure(injection, None)
        assert h.ledger.get("boot") > 0
        assert h.ledger.get("execution") > 0
        assert h.ledger.get("snapshot_save") > 0
        assert h.ledger.get("snapshot_restore") > 0

    def test_measure_window_reports_crashes(self):
        from repro.attacks.actions import LyingAction
        from repro.attacks.strategies import LyingStrategy
        h = AttackHarness(pbft_testbed(warmup=1.0, window=1.5,
                                       malicious="primary"), seed=4)
        inst = h.start_run(take_warm_snapshot=False)
        inst.proxy.set_policy("PrePrepare",
                              LyingAction("big_reqs", LyingStrategy("min")))
        sample = h.measure_window()
        assert sample.crashed_nodes == 3
