"""Tests for VirtualMachine and VmCluster."""

import pytest

from repro.common.errors import SnapshotError
from repro.vm.machine import VirtualMachine
from repro.vm.manager import VmCluster
from repro.vm.memory import OsImage

SMALL = OsImage(name="tiny", resident_mb=1, unique_mb=1)


class DummyApp:
    def __init__(self, value=0):
        self.value = value
        self.history = []

    def snapshot_state(self):
        return {"value": self.value, "history": list(self.history)}

    def restore_state(self, state):
        self.value = state["value"]
        self.history = list(state["history"])


class TestVirtualMachine:
    def test_lifecycle(self):
        vm = VirtualMachine("vm0", SMALL)
        assert not vm.running
        vm.boot(DummyApp())
        assert vm.running and not vm.paused
        vm.pause()
        assert vm.paused
        vm.resume()
        assert not vm.paused
        vm.shutdown()
        assert not vm.running

    def test_pause_requires_running(self):
        vm = VirtualMachine("vm0", SMALL)
        with pytest.raises(SnapshotError):
            vm.pause()
        with pytest.raises(SnapshotError):
            vm.resume()

    def test_sync_requires_paused(self):
        vm = VirtualMachine("vm0", SMALL)
        vm.boot(DummyApp())
        with pytest.raises(SnapshotError):
            vm.sync_app_pages()

    def test_sync_and_restore_app(self):
        vm = VirtualMachine("vm0", SMALL)
        app = DummyApp(7)
        app.history = ["a", "b"]
        vm.boot(app)
        vm.pause()
        size = vm.sync_app_pages()
        assert size > 0
        app.value = 99
        app.history.append("c")
        vm.restore_app()
        assert app.value == 7
        assert app.history == ["a", "b"]

    def test_state_digest_tracks_state(self):
        vm = VirtualMachine("vm0", SMALL)
        app = DummyApp(1)
        vm.boot(app)
        d1 = vm.state_digest()
        app.value = 2
        d2 = vm.state_digest()
        assert d1 != d2
        app.value = 1
        assert vm.state_digest() == d1

    def test_no_app_sync(self):
        vm = VirtualMachine("vm0", SMALL)
        vm.boot()
        vm.pause()
        assert vm.sync_app_pages() == 0


class TestVmCluster:
    def _cluster(self, n=3):
        cluster = VmCluster([f"vm{i}" for i in range(n)], image=SMALL)
        cluster.boot_all()
        for i, vm in enumerate(cluster.machines()):
            vm.app = DummyApp(i)
        return cluster

    def test_boot_pause_resume(self):
        cluster = self._cluster()
        assert not cluster.all_paused
        cluster.pause_all()
        assert cluster.all_paused
        cluster.resume_all()
        assert not cluster.all_paused

    def test_snapshot_restore_roundtrip(self):
        cluster = self._cluster()
        result = cluster.save_snapshot(shared=True)
        assert result.total_time > 0
        cluster.resume_all()
        for vm in cluster.machines():
            vm.app.value += 100
        cluster.restore_snapshot(result.snapshot)
        assert [vm.app.value for vm in cluster.machines()] == [0, 1, 2]

    def test_snapshot_pauses_if_needed(self):
        cluster = self._cluster()
        result = cluster.save_snapshot(shared=False)
        assert result.pause_time > 0
        assert cluster.all_paused

    def test_shared_beats_plain(self):
        cluster = self._cluster()
        plain = cluster.save_snapshot(shared=False)
        shared = cluster.save_snapshot(shared=True)
        assert shared.snapshot.stored_bytes() < plain.snapshot.stored_bytes()

    def test_unknown_vm_lookup(self):
        cluster = self._cluster()
        with pytest.raises(SnapshotError):
            cluster.vm("missing")

    def test_len(self):
        assert len(self._cluster(4)) == 4
