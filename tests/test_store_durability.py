"""Kill -9 durability: SIGKILLed hunts resume to byte-identical reports.

Each test runs the real CLI in a subprocess with ``REPRO_STORE_CHAOS``
armed, verifies the process dies by SIGKILL mid-hunt, then re-runs with
the same ``--store`` directory and asserts the resumed run's ``--json``
output is byte-for-byte equal to an uninterrupted reference run.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HUNT_ARGS = ["hunt", "pbft", "--types", "PrePrepare", "--seed", "3",
             "--fast", "--no-lying", "--warmup", "1", "--window", "2",
             "--passes", "2", "--max-wait", "5", "--allow-empty"]


class HuntProc:
    def __init__(self, returncode, stdout, stderr):
        self.returncode = returncode
        self.stdout = stdout
        self.stderr = stderr


def run_hunt(extra, chaos=None, timeout=240):
    """Run the CLI in its own process group, capturing output to files.

    A chaos SIGKILL leaves fork-mode worker children orphaned; they
    inherit the parent's stdout/stderr, so pipe-based capture would
    block until the orphans exit.  Files never block, and killing the
    process group afterwards reaps the orphans deterministically.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    if chaos:
        env["REPRO_STORE_CHAOS"] = chaos
    else:
        env.pop("REPRO_STORE_CHAOS", None)
    with tempfile.TemporaryFile() as out, tempfile.TemporaryFile() as err:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro"] + HUNT_ARGS + extra,
            stdout=out, stderr=err, env=env, cwd=REPO,
            start_new_session=True)
        try:
            returncode = proc.wait(timeout=timeout)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
            proc.wait()
        out.seek(0)
        err.seek(0)
        return HuntProc(returncode, out.read().decode(),
                        err.read().decode())


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted run; its JSON bytes are the identity oracle."""
    path = tmp_path_factory.mktemp("reference") / "ref.json"
    proc = run_hunt(["--json", str(path)])
    assert proc.returncode == 0, proc.stderr
    return path.read_bytes()


def assert_sigkilled(proc, flag):
    assert proc.returncode == -signal.SIGKILL, (
        f"expected SIGKILL, got rc={proc.returncode}\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
    assert os.path.exists(flag), "chaos hook never fired"


class TestKillResume:
    def test_crash_mid_hunt_resumes_byte_identical(self, tmp_path,
                                                   reference):
        store, flag = str(tmp_path / "store"), str(tmp_path / "fired")
        killed = run_hunt(["--store", store], chaos=f"crash:3:{flag}")
        assert_sigkilled(killed, flag)
        assert os.path.exists(os.path.join(store, "journal.jsonl"))

        out = tmp_path / "out.json"
        resumed = run_hunt(["--store", store, "--json", str(out)])
        assert resumed.returncode == 0, resumed.stderr
        assert out.read_bytes() == reference
        assert "store:" in resumed.stdout  # side channel, not in the JSON

    def test_torn_journal_tail_truncated_and_resumed(self, tmp_path,
                                                     reference):
        store, flag = str(tmp_path / "store"), str(tmp_path / "fired")
        killed = run_hunt(["--store", store], chaos=f"torn:3:{flag}")
        assert_sigkilled(killed, flag)

        out = tmp_path / "out.json"
        resumed = run_hunt(["--store", store, "--json", str(out)])
        assert resumed.returncode == 0, resumed.stderr
        assert out.read_bytes() == reference
        assert "torn bytes dropped" in resumed.stdout

    def test_corrupt_checkpoint_falls_back_a_generation(self, tmp_path,
                                                        reference):
        store, flag = str(tmp_path / "store"), str(tmp_path / "fired")
        killed = run_hunt(["--store", store], chaos=f"ckpt:2:{flag}")
        assert_sigkilled(killed, flag)

        out = tmp_path / "out.json"
        resumed = run_hunt(["--store", store, "--json", str(out)])
        assert resumed.returncode == 0, resumed.stderr
        assert out.read_bytes() == reference
        assert "checkpoint fallbacks" in resumed.stdout

    def test_crash_resume_with_workers(self, tmp_path, reference):
        store, flag = str(tmp_path / "store"), str(tmp_path / "fired")
        killed = run_hunt(["--store", store, "--workers", "2"],
                          chaos=f"crash:4:{flag}")
        assert_sigkilled(killed, flag)

        out = tmp_path / "out.json"
        resumed = run_hunt(["--store", store, "--workers", "2",
                            "--json", str(out)])
        assert resumed.returncode == 0, resumed.stderr
        assert out.read_bytes() == reference

    def test_resumed_store_json_is_valid(self, tmp_path, reference):
        # The journal itself stays parseable after recovery: every line
        # decodes, and the resumed store dir keeps at most two checkpoint
        # generations.
        from repro.store.journal import decode_line
        from repro.store.runstore import KEPT_GENERATIONS

        store, flag = str(tmp_path / "store"), str(tmp_path / "fired")
        run_hunt(["--store", store], chaos=f"torn:4:{flag}")
        resumed = run_hunt(["--store", store])
        assert resumed.returncode == 0, resumed.stderr

        with open(os.path.join(store, "journal.jsonl"), "rb") as fh:
            lines = fh.read().splitlines()
        assert lines and all(decode_line(line) is not None
                             for line in lines)
        generations = [name for name in os.listdir(store)
                       if name.startswith("checkpoint-")]
        assert 1 <= len(generations) <= KEPT_GENERATIONS
        newest = sorted(generations)[-1]
        with open(os.path.join(store, newest)) as fh:
            envelope = json.load(fh)
        assert envelope["checkpoint"]["written_at_pass"] == 2
