"""The malicious proxy (Sections III-D and IV-B).

The proxy sits inside the network emulator on the path traffic takes as it
leaves each malicious node's VM.  It never touches the application: all
misbehaviour is injected by acting on intercepted messages.  Modes of
operation, both driven by the controller:

* **policy** — a persistent map from message type to
  :class:`~repro.attacks.actions.MaliciousAction`; every matching message
  from a malicious node gets the action.  Used while executing one attack
  scenario (and by the Fig. 5 benchmarks).
* **armed** — watch for the next message of a target type from a malicious
  node; when one appears, *hold* it inside the emulator and interrupt the
  kernel.  This is the attack injection point: the controller snapshots the
  world, then branches — restoring, installing a policy, and releasing the
  held message — once per candidate action.

The proxy also understands "who sent this": it only ever intercepts traffic
of nodes the controller designated malicious, matching the paper's NS3
configuration-file mechanism.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.common.ids import NodeId
from repro.common.rng import RandomStream
from repro.netem.emulator import NetworkEmulator, Verdict
from repro.netem.packets import MessageEnvelope
from repro.wire.codec import ProtocolCodec
from repro.attacks.actions import ActionContext, MaliciousAction

INJECTION_POINT = "injection_point"
HELD_TAG = "injection"


def _held_tag(index: int) -> str:
    return f"{HELD_TAG}:{index}"


class MaliciousProxy:
    """Message interceptor implementing the platform's attack injection."""

    def __init__(self, emulator: NetworkEmulator, codec: ProtocolCodec,
                 malicious: Sequence[NodeId], rng: RandomStream) -> None:
        self.emulator = emulator
        self.codec = codec
        self.malicious: Set[NodeId] = set(malicious)
        self.rng = rng
        self._policy: Dict[str, MaliciousAction] = {}
        self._background: Dict[str, MaliciousAction] = {}
        self._armed_type: Optional[str] = None
        self._arm_after: float = 0.0
        # After the injection point triggers, sibling copies of the same
        # broadcast (sent within the same event) are parked too, so the
        # branch can subject the *whole* send to the candidate action.
        self._holding_type: Optional[str] = None
        self._held_count = 0
        self.intercepted = 0
        self.injections = 0
        self.first_injection_time: Optional[float] = None
        #: optional :class:`~repro.telemetry.tracer.Tracer`; the harness
        #: attaches one so each applied action leaves a ``proxy.action``
        #: instant in the trace (platform-side, never rewound).
        self.tracer = None
        emulator.set_interceptor(self)

    def _instant(self, action: MaliciousAction, message_type: str) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("proxy.action", action=type(action).__name__,
                           message_type=message_type)
        ins = self.emulator.instruments
        if ins is not None and ins.enabled:
            ins.count("proxy.injections")

    def reset_counters(self) -> None:
        self.intercepted = 0
        self.injections = 0
        self.first_injection_time = None

    # -------------------------------------------------------- configuration

    def set_policy(self, message_type: str, action: MaliciousAction) -> None:
        self._policy[message_type] = action

    def clear_policy(self) -> None:
        self._policy.clear()

    def set_background_policy(self, message_type: str,
                              action: MaliciousAction) -> None:
        """Install a fixed environment behaviour that searches never clear.

        Used by testbeds that need a standing fault to reach a protocol
        phase — e.g. a malicious primary that drops Pre-Prepares so that
        view changes occur and ViewChange messages can be attacked (the
        paper's 7-server PBFT configuration).
        """
        self._background[message_type] = action

    @property
    def policy(self) -> Dict[str, MaliciousAction]:
        return dict(self._policy)

    def arm(self, message_type: str, after: float = 0.0) -> None:
        """Watch for the next ``message_type`` sent by a malicious node."""
        self._armed_type = message_type
        self._arm_after = after
        self._holding_type = None
        self._held_count = 0

    def disarm(self) -> None:
        self._armed_type = None
        self._holding_type = None

    def abort_injection(self) -> None:
        """Error cleanup: disarm and drop any parked injection messages.

        Used by the harness's exception paths so a fault mid-branch never
        leaves the proxy armed or a held message stranded in the emulator.
        Safe to call when nothing is armed or held.
        """
        self._armed_type = None
        self._holding_type = None
        for tag in self._injection_tags():
            self.emulator.discard_held(tag)

    @property
    def armed_type(self) -> Optional[str]:
        return self._armed_type

    # ------------------------------------------------------------ intercept

    def _context(self) -> ActionContext:
        return ActionContext(self.codec, self.rng, self.emulator.hosts())

    def __call__(self, envelope: MessageEnvelope) -> Verdict:
        if envelope.src not in self.malicious:
            return Verdict.passthrough()
        spec = self.codec.peek_type(envelope.payload)
        if spec is None:
            return Verdict.passthrough()
        self.intercepted += 1
        ins = self.emulator.instruments
        if ins is not None and ins.enabled:
            ins.count("proxy.intercepted")

        if self._holding_type == spec.name:
            # Sibling copy of the held broadcast: park it alongside.
            self._held_count += 1
            return Verdict.hold(_held_tag(self._held_count))

        if (self._armed_type == spec.name
                and self.emulator.kernel.now >= self._arm_after):
            # Attack injection point: park the message, stop the world.
            self._armed_type = None
            self._holding_type = spec.name
            self._held_count = 1
            self.emulator.kernel.interrupt(INJECTION_POINT, payload={
                "message_type": spec.name,
                "src": envelope.src,
                "dst": envelope.dst,
                "time": self.emulator.kernel.now,
            })
            return Verdict.hold(_held_tag(1))

        action = self._policy.get(spec.name)
        if action is None:
            action = self._background.get(spec.name)
        if action is None:
            return Verdict.passthrough()
        deliveries = action.apply(envelope, self._context())
        self.injections += 1
        self._instant(action, spec.name)
        tap = self.emulator.causal_tap
        if tap is not None:
            tap.on_proxy(envelope.msg_seq, action.describe())
        if self.first_injection_time is None:
            self.first_injection_time = self.emulator.kernel.now
        if not deliveries:
            return Verdict.drop()
        return Verdict.rewrite(deliveries)

    # -------------------------------------------------- held-message release

    def release_held(self, action: Optional[MaliciousAction]) -> None:
        """Release the parked injection-point messages into a branch.

        With ``action`` None the messages pass unmodified (the baseline
        branch); otherwise the action is applied to each of them, exactly
        as it will be applied to every subsequent message of that type via
        the policy.
        """
        self._holding_type = None
        for tag in self._injection_tags():
            if action is None:
                self.emulator.release_held(tag)
                continue
            envelope = self.emulator.peek_held(tag)
            deliveries = action.apply(envelope, self._context())
            self.injections += 1
            spec = self.codec.peek_type(envelope.payload)
            self._instant(action, spec.name if spec else "?")
            tap = self.emulator.causal_tap
            if tap is not None:
                tap.on_proxy(envelope.msg_seq, action.describe())
            self.emulator.release_held(tag, deliveries)

    def _injection_tags(self):
        prefix = HELD_TAG + ":"
        return [t for t in self.emulator.held_tags() if t.startswith(prefix)]

    def has_held(self) -> bool:
        return bool(self._injection_tags())
