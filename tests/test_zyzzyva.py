"""Protocol-level tests for the Zyzzyva implementation."""

import pytest

from repro.attacks.actions import DelayAction, DropAction, LyingAction
from repro.attacks.strategies import LyingStrategy
from repro.common.ids import client, replica
from repro.controller.harness import AttackHarness
from repro.systems.zyzzyva.testbed import zyzzyva_testbed


def run_zyzzyva(malicious="backup", mtype=None, action=None, warmup=1.0,
                window=2.0, seed=1):
    h = AttackHarness(zyzzyva_testbed(malicious=malicious, warmup=warmup,
                                      window=window), seed=seed)
    inst = h.start_run(take_warm_snapshot=False)
    if mtype:
        inst.proxy.set_policy(mtype, action)
    return h.measure_window(), inst


class TestNormalCase:
    def test_fast_path_dominates(self):
        sample, inst = run_zyzzyva()
        cl = inst.world.app(client(0))
        assert cl.fast_completions > 0
        assert cl.slow_completions == 0
        assert sample.throughput > 150

    def test_speculative_latency(self):
        sample, __ = run_zyzzyva()
        assert 0.003 < sample.latency_avg < 0.007

    def test_history_hashes_agree(self):
        __, inst = run_zyzzyva()
        histories = {inst.world.app(replica(i)).history for i in range(4)}
        # replicas within one spec-execution of each other share a prefix;
        # at quiesce points they converge to at most 2 distinct values
        assert len(histories) <= 2

    def test_no_crashes_benign(self):
        __, inst = run_zyzzyva()
        assert inst.world.crashed_nodes() == []


class TestDropSpecResponse:
    def test_slow_path_engages(self):
        __, inst = run_zyzzyva(mtype="SpecResponse", action=DropAction(1.0))
        cl = inst.world.app(client(0))
        assert cl.slow_completions > 0

    def test_latency_increases(self):
        baseline, __ = run_zyzzyva()
        attacked, __ = run_zyzzyva(mtype="SpecResponse",
                                   action=DropAction(1.0))
        assert attacked.latency_avg > baseline.latency_avg * 1.3
        # speculation is lost, but the system still completes updates
        assert attacked.throughput > baseline.throughput * 0.3


class TestLyingAttacks:
    def test_lie_order_request_size_crashes(self):
        sample, inst = run_zyzzyva(malicious="primary", mtype="OrderRequest",
                                   action=LyingAction("msg_size",
                                                      LyingStrategy("min")))
        assert sample.crashed_nodes == 3

    def test_lie_commit_cc_size_crashes(self):
        # the *client* sends Commit; to attack it the proxy must control a
        # replica relaying nothing — instead verify the flaw directly
        from repro.common.errors import SegmentationFault
        from repro.systems.common.config import BftConfig
        from repro.systems.zyzzyva.replica import ZyzzyvaReplica
        replica_app = ZyzzyvaReplica(1, BftConfig())
        with pytest.raises(SegmentationFault):
            replica_app.unchecked_alloc(-5, "commit certificate entries")

    def test_delay_order_request_degrades(self):
        baseline, __ = run_zyzzyva()
        attacked, __ = run_zyzzyva(malicious="primary", mtype="OrderRequest",
                                   action=DelayAction(1.0), window=4.0)
        assert attacked.throughput < baseline.throughput * 0.05


class TestStateRoundTrip:
    def test_replica_snapshot_roundtrip(self):
        __, inst = run_zyzzyva(window=1.0)
        app = inst.world.app(replica(2))
        state = app.snapshot_state()
        import pickle
        app.restore_state(pickle.loads(pickle.dumps(state)))
        assert app.snapshot_state() == state

    def test_client_snapshot_roundtrip(self):
        __, inst = run_zyzzyva(window=1.0)
        cl = inst.world.app(client(0))
        state = cl.snapshot_state()
        import pickle
        cl.restore_state(pickle.loads(pickle.dumps(state)))
        assert cl.snapshot_state() == state
