"""Time accounting for attack finding.

The platform runs systems in real time, so "the order of attacks is less
important than the total time required to find attacks" (Section III-B).
Every second the platform would spend — booting VMs, executing the system,
saving and restoring snapshots — is charged to a ledger, and Table III is a
comparison of ledger totals between the greedy and weighted-greedy
algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

BOOT = "boot"
EXECUTION = "execution"
SNAPSHOT_SAVE = "snapshot_save"
SNAPSHOT_RESTORE = "snapshot_restore"
#: overhead of classifying a platform fault and tearing the attempt down
RETRY = "retry"
#: platform time spent rebuilding a testbed after a persistent fault
#: (boot + warmup + warm snapshot, reattributed from their usual categories)
REBUILD = "rebuild"

CATEGORIES = (BOOT, EXECUTION, SNAPSHOT_SAVE, SNAPSHOT_RESTORE,
              RETRY, REBUILD)


@dataclass
class CostLedger:
    """Accumulated platform time, by category, in (virtual) seconds."""

    by_category: Dict[str, float] = field(default_factory=dict)

    def charge(self, category: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative charge {seconds} for {category}")
        self.by_category[category] = self.by_category.get(category, 0.0) + seconds

    def total(self) -> float:
        return sum(self.by_category.values())

    def get(self, category: str) -> float:
        return self.by_category.get(category, 0.0)

    def snapshot_total(self) -> float:
        return self.get(SNAPSHOT_SAVE) + self.get(SNAPSHOT_RESTORE)

    def mark(self) -> float:
        """Current total, for measuring a span: total() - mark."""
        return self.total()

    def merge(self, other: "CostLedger") -> None:
        for category, seconds in other.by_category.items():
            self.charge(category, seconds)

    def describe(self) -> str:
        # Supervision categories only appear once something was charged to
        # them, so fault-free runs keep the familiar four-column output.
        parts = [f"{c}={self.by_category.get(c, 0.0):.1f}s" for c in CATEGORIES
                 if c not in (RETRY, REBUILD)
                 or self.by_category.get(c, 0.0) > 0]
        return f"total={self.total():.1f}s ({', '.join(parts)})"


@dataclass
class WorkerAttribution:
    """Platform time one parallel worker spent, by category.

    The merged report's ledger is byte-identical to a serial run (replayed
    from recorded charges), so the per-worker split lives here as a side
    channel: it shows where the sharded work actually went without
    perturbing the serial-equivalent accounting.
    """

    worker: int
    #: message types (or scenario shards) this worker was pinned to
    shards: List[str] = field(default_factory=list)
    ledger: CostLedger = field(default_factory=CostLedger)
    #: real seconds the worker spent processing its tasks
    wall_seconds: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "worker": self.worker,
            "shards": list(self.shards),
            "by_category": dict(self.ledger.by_category),
            "total": self.ledger.total(),
            "wall_seconds": self.wall_seconds,
        }

    def describe(self) -> str:
        shards = ", ".join(self.shards) or "(idle)"
        return (f"worker {self.worker}: {shards} — "
                f"{self.ledger.describe()}, wall {self.wall_seconds:.1f}s")
