"""Steward replica — hierarchical BFT for wide-area networks (Amir et al.).

Two-level protocol, as deployed here with one leader site and one or more
remote sites, each a 3f+1 BFT group:

* **Intra-site (leader site)** — the global leader pre-prepares client
  requests inside its site; 2f Prepares let it threshold-sign a Proposal.
* **Wide area** — the Proposal crosses the WAN to each remote site's
  representative, which fans it out locally; site members return CCSUnion
  threshold shares; the representative combines 2f+1 shares into a
  threshold-signed Accept and returns it.  A majority of remote-site
  Accepts globally orders the update, which the leader site executes and
  answers to the client.

Fault masking (the behaviour that surprised the paper's authors on the
Drop-Accept attack): the leader retransmits an unanswered Proposal every
``proposal_retry`` seconds, and a remote-site member that sees the *same*
Proposal again concludes its representative may be faulty and sends the
Accept itself.  Progress therefore continues at the retransmission rate
(~0.4 upd/s) instead of triggering a view change.

Threshold cryptography is expensive: every GlobalViewChange and CCSUnion a
replica receives pays an RSA-threshold verification, which is what makes
duplicating those messages devastating (0.27 upd/s in the paper).

Intentional implementation flaws: ``Status.nmsgs`` and ``CCSUnion.nshares``
are trusted allocation sizes; a ``GlobalViewChange`` whose view number jumps
far ahead makes the receiver allocate the whole pending-view range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.ids import NodeId, client, replica
from repro.systems.common.auth import Authenticator
from repro.systems.common.replica import BaseReplica, digest_of
from repro.wire.codec import Message

PROPOSAL_RETRY_TIMER = "proposal-retry"
GVC_HEARTBEAT_TIMER = "gvc-heartbeat"
STATUS_TIMER = "status"


@dataclass(frozen=True)
class StewardConfig:
    """Sizing/timing of a Steward deployment (duck-compatible with BftConfig
    where the shared client machinery needs it)."""

    sites: int = 2
    site_f: int = 1
    clients: int = 1
    verify_signatures: bool = False
    client_retry: float = 0.4
    proposal_retry: float = 2.0
    status_interval: float = 2.0
    gvc_interval: float = 0.5

    def __post_init__(self) -> None:
        if self.sites < 2:
            raise ConfigError("Steward needs at least two sites")

    @property
    def site_n(self) -> int:
        return 3 * self.site_f + 1

    @property
    def n(self) -> int:
        return self.sites * self.site_n

    @property
    def site_quorum(self) -> int:
        return 2 * self.site_f + 1

    @property
    def prepare_quorum(self) -> int:
        return 2 * self.site_f

    @property
    def reply_quorum(self) -> int:
        return self.site_f + 1

    @property
    def accept_majority(self) -> int:
        """Remote-site accepts needed to globally order."""
        return (self.sites - 1) // 2 + 1

    def site_of(self, index: int) -> int:
        return index // self.site_n

    def rep_of_site(self, site: int) -> int:
        return site * self.site_n

    def site_members(self, site: int) -> List[int]:
        base = site * self.site_n
        return list(range(base, base + self.site_n))


class StewardReplica(BaseReplica):
    """One Steward replica (leader-site or remote-site)."""

    def __init__(self, index: int, config: StewardConfig,
                 auth: Optional[Authenticator] = None) -> None:
        # BaseReplica wants a BftConfig; we only use its view arithmetic,
        # which we override below, so stash the Steward config directly.
        super(BaseReplica, self).__init__()
        self.index = index
        self.config = config
        self.auth = auth or Authenticator("shared-system-key")
        self.view = 0
        self.global_view = 0
        self.site = config.site_of(index)
        self.next_seq = 0
        self.last_exec = 0
        # leader-site ordering state: seq -> entry
        self.log: Dict[int, Dict[str, Any]] = {}
        self.assigned: Dict[Tuple[int, int], int] = {}
        self.reply_cache: Dict[int, int] = {}
        # remote-site state: seq -> {"proposal": fields, "shares": [idx],
        #                            "accept_sent": bool, "seen": int}
        self.remote: Dict[int, Dict[str, Any]] = {}
        self.executed_count = 0

    # ----------------------------------------------------------- site roles

    @property
    def is_leader_site(self) -> bool:
        return self.site == 0

    @property
    def is_global_leader(self) -> bool:
        return self.index == 0

    @property
    def is_representative(self) -> bool:
        return self.index == self.config.rep_of_site(self.site)

    def site_peer_ids(self) -> List[NodeId]:
        return [replica(i) for i in self.config.site_members(self.site)
                if i != self.index]

    # ---------------------------------------------------------------- start

    def on_start(self) -> None:
        self.set_timer(STATUS_TIMER, self.config.status_interval,
                       periodic=True)
        if self.is_representative:
            self.set_timer(GVC_HEARTBEAT_TIMER, self.config.gvc_interval,
                           periodic=True)

    def on_timer(self, name: str) -> None:
        if name == STATUS_TIMER:
            self._send_status()
        elif name == GVC_HEARTBEAT_TIMER:
            self._send_gvc()
        elif name == PROPOSAL_RETRY_TIMER:
            self._retry_proposals()

    def on_message(self, src: NodeId, message: Message) -> None:
        handler = getattr(self, f"_on_{message.type_name.lower()}", None)
        if handler is not None:
            handler(src, message)

    # Request (leader site) --------------------------------------------------

    def _on_request(self, src: NodeId, msg: Message) -> None:
        if not self.is_leader_site:
            return
        cli, ts = msg["client"], msg["timestamp"]
        if self.reply_cache.get(cli, 0) >= ts:
            return
        if not self.is_global_leader:
            # leader-site backup: relay to the leader
            self.send(replica(0), Message("Request", dict(msg.fields)))
            return
        key = (cli, ts)
        seq = self.assigned.get(key)
        if seq is not None:
            entry = self.log.get(seq)
            if entry is not None and not entry["ordered"]:
                self._send_preprepare(entry, seq)
            return
        self.next_seq += 1
        seq = self.next_seq
        self.assigned[key] = seq
        entry = {
            "digest": digest_of(msg["payload"]), "payload": msg["payload"],
            "timestamp": ts, "client": cli, "prepares": [self.index],
            "proposal_sent": False, "accepts": [], "ordered": False,
        }
        self.log[seq] = entry
        self._send_preprepare(entry, seq)
        if not self.node.timer_pending(PROPOSAL_RETRY_TIMER):
            self.set_timer(PROPOSAL_RETRY_TIMER, self.config.proposal_retry)

    def _send_preprepare(self, entry: Dict[str, Any], seq: int) -> None:
        fields = {
            "view": self.view, "seq": seq, "digest": entry["digest"],
            "timestamp": entry["timestamp"], "client": entry["client"],
            "payload": entry["payload"],
            "sig": self.auth.sign(self.view, seq, entry["digest"]),
        }
        for peer in self.site_peer_ids():
            self.send(peer, Message("PrePrepare", fields))

    def _on_preprepare(self, src: NodeId, msg: Message) -> None:
        if not self.is_leader_site or self.is_global_leader:
            return
        if src != replica(0):
            return
        if not self.check_auth(msg["sig"], msg["view"], msg["seq"],
                               msg["digest"]):
            return
        self.send(replica(0), Message("Prepare", {
            "view": msg["view"], "seq": msg["seq"], "digest": msg["digest"],
            "replica": self.index,
            "sig": self.auth.sign(msg["view"], msg["seq"], self.index),
        }))

    def _on_prepare(self, src: NodeId, msg: Message) -> None:
        if not self.is_global_leader:
            return
        entry = self.log.get(msg["seq"])
        if entry is None or entry["digest"] != msg["digest"]:
            return
        if msg["replica"] not in entry["prepares"]:
            entry["prepares"].append(msg["replica"])
        if (len(entry["prepares"]) > self.config.prepare_quorum
                and not entry["proposal_sent"]):
            entry["proposal_sent"] = True
            self._send_proposal(msg["seq"], entry)

    def _send_proposal(self, seq: int, entry: Dict[str, Any],
                       to_all_members: bool = False) -> None:
        fields = {
            "global_view": self.global_view, "seq": seq,
            "digest": entry["digest"], "timestamp": entry["timestamp"],
            "client": entry["client"], "payload": entry["payload"],
            "site": self.site,
            "sig": self.auth.sign(self.global_view, seq, entry["digest"]),
        }
        for site in range(self.config.sites):
            if site == self.site:
                continue
            if to_all_members:
                for member in self.config.site_members(site):
                    self.send(replica(member), Message("Proposal", fields))
            else:
                self.send(replica(self.config.rep_of_site(site)),
                          Message("Proposal", fields))

    def _retry_proposals(self) -> None:
        outstanding = [
            (seq, entry) for seq, entry in sorted(self.log.items())
            if entry["proposal_sent"] and not entry["ordered"]]
        for seq, entry in outstanding:
            # Retransmissions go to every member of the remote sites, not
            # just the representative — the fault-masking path that keeps
            # Drop-Accept from triggering a view change.
            self._send_proposal(seq, entry, to_all_members=True)
        if outstanding:
            self.set_timer(PROPOSAL_RETRY_TIMER, self.config.proposal_retry)

    # Remote site -------------------------------------------------------------

    def _on_proposal(self, src: NodeId, msg: Message) -> None:
        if self.is_leader_site:
            return
        if not self.check_auth(msg["sig"], msg["global_view"], msg["seq"],
                               msg["digest"]):
            return
        seq = msg["seq"]
        entry = self.remote.setdefault(seq, {
            "proposal": None, "shares": [], "accept_sent": False, "seen": 0})
        entry["proposal"] = dict(msg.fields)
        entry["seen"] += 1
        if self.is_representative:
            if entry["seen"] == 1:
                # fan out to the site and contribute our own share
                for peer in self.site_peer_ids():
                    self.send(peer, Message("Proposal", dict(msg.fields)))
                self._send_share(seq, msg["digest"])
            else:
                # leader retransmission reached us again: re-accept directly
                self._send_accept(seq, msg["digest"])
        else:
            if entry["seen"] == 1:
                self._send_share(seq, msg["digest"])
            else:
                # Fault masking: a retransmitted proposal means the
                # representative's Accept may have been lost or withheld —
                # answer the leader site ourselves.
                self._send_accept(seq, msg["digest"])

    def _send_share(self, seq: int, digest: bytes) -> None:
        rep = replica(self.config.rep_of_site(self.site))
        share = digest_of(digest + bytes([self.index]))
        message = Message("CCSUnion", {
            "global_view": self.global_view, "seq": seq,
            "share_idx": self.index, "nshares": 1, "share": share,
            "sig": self.auth.sign(self.global_view, seq, self.index),
        })
        if rep == self.node_id:
            self._record_share(seq, self.index)
        else:
            self.send(rep, message)

    def _on_ccsunion(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: share count trusted from the wire --
        self.unchecked_alloc(msg["nshares"], "threshold shares")
        if not self.check_auth(msg["sig"], msg["global_view"], msg["seq"],
                               msg["share_idx"]):
            return
        if not self.is_representative:
            return
        self._record_share(msg["seq"], msg["share_idx"])

    def _record_share(self, seq: int, share_idx: int) -> None:
        entry = self.remote.get(seq)
        if entry is None or entry["proposal"] is None:
            return
        if share_idx not in entry["shares"]:
            entry["shares"].append(share_idx)
        if (len(entry["shares"]) >= self.config.site_quorum
                and not entry["accept_sent"]):
            entry["accept_sent"] = True
            self._send_accept(seq, entry["proposal"]["digest"])

    def _send_accept(self, seq: int, digest: bytes) -> None:
        self.send(replica(0), Message("Accept", {
            "global_view": self.global_view, "seq": seq, "digest": digest,
            "site": self.site,
            "sig": self.auth.sign(self.global_view, seq, self.site),
        }))

    # Global ordering (leader) -------------------------------------------------

    def _on_accept(self, src: NodeId, msg: Message) -> None:
        if not self.is_global_leader:
            return
        entry = self.log.get(msg["seq"])
        if entry is None or entry["ordered"]:
            return
        if entry["digest"] != msg["digest"]:
            return
        accepting_site = self.config.site_of(src.index)
        if accepting_site not in entry["accepts"]:
            entry["accepts"].append(accepting_site)
        if len(entry["accepts"]) >= self.config.accept_majority:
            entry["ordered"] = True
            fields = {
                "global_view": self.global_view, "seq": msg["seq"],
                "digest": entry["digest"], "timestamp": entry["timestamp"],
                "client": entry["client"], "payload": entry["payload"],
                "sig": self.auth.sign(self.global_view, msg["seq"]),
            }
            for peer in self.site_peer_ids():
                self.send(peer, Message("GlobalOrder", fields))
            self._execute(Message("GlobalOrder", fields))

    def _on_globalorder(self, src: NodeId, msg: Message) -> None:
        if not self.is_leader_site or src != replica(0):
            return
        self._execute(msg)

    def _execute(self, msg: Message) -> None:
        cli, ts = msg["client"], msg["timestamp"]
        if self.reply_cache.get(cli, 0) >= ts:
            return
        self.reply_cache[cli] = ts
        self.last_exec = max(self.last_exec, msg["seq"])
        self.executed_count += 1
        result = digest_of(msg["payload"])[:8]
        self.send(client(cli), Message("Reply", {
            "timestamp": ts, "client": cli, "replica": self.index,
            "result": result,
            "sig": self.auth.sign(ts, cli, self.index, result),
        }))

    # Keepalives ---------------------------------------------------------------

    def _send_status(self) -> None:
        msg = Message("Status", {
            "replica": self.index, "view": self.view,
            "last_exec": self.last_exec, "nmsgs": 0,
            "sig": self.auth.sign(self.index, self.last_exec),
        })
        for peer in self.site_peer_ids():
            self.send(peer, msg)

    def _on_status(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: piggybacked count trusted --
        self.unchecked_alloc(msg["nmsgs"], "piggybacked messages")

    def _send_gvc(self) -> None:
        msg = Message("GlobalViewChange", {
            "global_view": self.global_view, "site": self.site, "nproofs": 0,
            "sig": self.auth.sign(self.global_view, self.site),
        })
        for site in range(self.config.sites):
            rep = self.config.rep_of_site(site)
            if rep != self.index:
                self.send(replica(rep), msg)

    def _on_gvc(self, src: NodeId, msg: Message) -> None:
        self._on_globalviewchange(src, msg)

    def _on_globalviewchange(self, src: NodeId, msg: Message) -> None:
        self.unchecked_alloc(msg["nproofs"], "view-change proofs")
        if msg["global_view"] > self.global_view:
            # -- intentional flaw: allocate the whole pending-view range --
            self.unchecked_alloc(msg["global_view"] - self.global_view,
                                 "pending global views")
            self.global_view = msg["global_view"]

    # ------------------------------------------------------------- snapshot

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "index": self.index, "view": self.view,
            "global_view": self.global_view,
            "next_seq": self.next_seq, "last_exec": self.last_exec,
            "log": {s: _copy_leader_entry(e) for s, e in self.log.items()},
            "assigned": dict(self.assigned),
            "reply_cache": dict(self.reply_cache),
            "remote": {s: _copy_remote_entry(e)
                       for s, e in self.remote.items()},
            "executed_count": self.executed_count,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.index = state["index"]
        self.view = state["view"]
        self.global_view = state["global_view"]
        self.site = self.config.site_of(self.index)
        self.next_seq = state["next_seq"]
        self.last_exec = state["last_exec"]
        self.log = {s: _copy_leader_entry(e)
                    for s, e in state["log"].items()}
        self.assigned = dict(state["assigned"])
        self.reply_cache = dict(state["reply_cache"])
        self.remote = {s: _copy_remote_entry(e)
                       for s, e in state["remote"].items()}
        self.executed_count = state["executed_count"]


def _copy_leader_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(entry)
    out["prepares"] = list(entry["prepares"])
    out["accepts"] = list(entry["accepts"])
    return out


def _copy_remote_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(entry)
    out["shares"] = list(entry["shares"])
    if entry["proposal"] is not None:
        out["proposal"] = dict(entry["proposal"])
    return out
