"""Attack findings and search reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.attacks.actions import AttackScenario
from repro.controller.costs import CostLedger
from repro.controller.monitor import PerfSample
from repro.controller.supervisor import QuarantinedScenario, SupervisorStats
from repro.faults.validation import ValidationReport
from repro.telemetry.summary import TelemetrySummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.health import WorkerHealthReport


@dataclass
class AttackFinding:
    """One discovered performance attack."""

    scenario: AttackScenario
    baseline: PerfSample
    attacked: PerfSample
    damage: float                 # relative throughput loss, 0..1
    crashes: int                  # benign nodes crashed by the action
    found_at: float               # ledger total when the attack was confirmed
    confirmations: int = 1        # times the scenario was (re-)selected

    @property
    def name(self) -> str:
        return self.scenario.describe()

    @property
    def is_crash_attack(self) -> bool:
        return self.crashes > 0

    def describe(self) -> str:
        kind = "CRASH" if self.is_crash_attack else "PERF"
        return (f"[{kind}] {self.name}: {self.baseline.throughput:.1f} -> "
                f"{self.attacked.throughput:.1f} upd/s "
                f"(damage {self.damage:.0%}, found at {self.found_at:.1f}s)")


@dataclass
class SearchReport:
    """Everything a search run produced."""

    algorithm: str
    system: str
    findings: List[AttackFinding] = field(default_factory=list)
    #: worst-but-below-Δ selections (weighted greedy's fallback path)
    weak_selections: List[AttackFinding] = field(default_factory=list)
    ledger: CostLedger = field(default_factory=CostLedger)
    scenarios_evaluated: int = 0
    injection_points: int = 0
    types_without_injection: List[str] = field(default_factory=list)
    #: scenarios set aside as inconclusive after persistent platform faults
    quarantined: List[QuarantinedScenario] = field(default_factory=list)
    #: retries, rebuilds, quarantines, watchdog trips + their event log
    supervisor: SupervisorStats = field(default_factory=SupervisorStats)
    #: per-span-kind totals + instrument digest (None when telemetry is off)
    telemetry: Optional[TelemetrySummary] = None
    #: nodes observed crashed during the search, as "name [kind] reason"
    #: lines — makes a hunt that silently lost a replica visible
    crashed_nodes: List[str] = field(default_factory=list)
    #: robustness validation of the findings (None unless --validate ran)
    validation: Optional[ValidationReport] = None
    #: side channel, like HuntResult.worker_breakdown: what the parallel
    #: executor's self-healing layer did this pass (None when the pass was
    #: serial or clean).  Worker fate depends on wall-clock scheduling, so
    #: this is never serialized into the deterministic report JSON.
    worker_health: Optional["WorkerHealthReport"] = None
    #: forensic :class:`~repro.forensics.explain.AttackExplanation` list
    #: (side channel too: computed post-search on demand, and never part
    #: of the serialized report — the report JSON must stay byte-identical
    #: whether or not --explain ran)
    explanations: Optional[list] = None

    @property
    def total_time(self) -> float:
        return self.ledger.total()

    def finding_named(self, name: str) -> Optional[AttackFinding]:
        for finding in self.findings:
            if finding.name == name:
                return finding
        return None

    def attack_names(self) -> List[str]:
        return [f.name for f in self.findings]

    def describe(self) -> str:
        lines = [f"{self.algorithm} on {self.system}: "
                 f"{len(self.findings)} attacks, "
                 f"{self.scenarios_evaluated} scenarios evaluated, "
                 f"platform time {self.total_time:.1f}s"]
        lines.extend("  " + f.describe() for f in self.findings)
        if self.crashed_nodes:
            lines.append(f"  crashed nodes: {', '.join(self.crashed_nodes)}")
        if self.supervisor.total_events:
            lines.append("  " + self.supervisor.describe())
        lines.extend("  " + q.describe() for q in self.quarantined)
        if self.telemetry is not None:
            lines.append("  " + self.telemetry.one_line())
        if self.worker_health is not None and self.worker_health.eventful:
            lines.append("  " + self.worker_health.one_line())
        if self.explanations:
            lines.extend("  " + e.one_line() for e in self.explanations)
        if self.validation is not None:
            lines.extend("  " + line
                         for line in self.validation.describe().splitlines())
        return "\n".join(lines)
