"""Tests for the durable run store, snapshot budgets, and checkpointing.

The store's contract mirrors the parallel executor's: whatever the journal
replays and whatever the budget evicts, the hunt's serialized result must
stay *byte-identical* to a plain uninterrupted, unbudgeted run.  Process-
kill durability (SIGKILL mid-hunt, torn journal tails, corrupt checkpoint
generations) is exercised separately in ``test_store_durability.py``.
"""

import json
import os

import pytest

from repro.analysis.reports import hunt_result_to_dict
from repro.attacks.space import ActionSpaceConfig
from repro.common.errors import ConfigError
from repro.controller.costs import CostLedger
from repro.search.hunt import (CHECKPOINT_VERSION, HuntResult, hunt,
                               load_checkpoint, migrate_checkpoint,
                               save_checkpoint)
from repro.search.weighted import ClusterWeights
from repro.store.budget import (CACHE_REBUILD, SnapshotBudget, StoreReport,
                                parse_bytes)
from repro.store.journal import (Journal, atomic_write_json, decode_line,
                                 encode_record, recover_journal)
from repro.store.runstore import RunStore
from repro.systems.paxos.testbed import paxos_testbed
from repro.vm.snapshots import SnapshotStore

SPACE = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(1.0,),
                          duplicate_counts=(), include_divert=False,
                          include_lying=False)
FACTORY = paxos_testbed(malicious_index=0, warmup=1.0, window=2.0)


def hunt_json(result) -> str:
    return json.dumps(hunt_result_to_dict(result), sort_keys=True)


# ------------------------------------------------------------------ journal

class TestJournal:
    def test_encode_decode_roundtrip(self):
        record = {"kind": "eval", "type": "Accept", "x": [1, 2.5, None]}
        assert decode_line(encode_record(record).rstrip(b"\n")) == record

    def test_decode_rejects_corruption(self):
        line = encode_record({"kind": "meta"}).rstrip(b"\n")
        assert decode_line(line[:-5]) is None          # torn
        assert decode_line(line.replace(b"meta", b"mete")) is None  # bitrot
        assert decode_line(b"not json at all") is None
        assert decode_line(b'{"crc": 1}') is None      # missing record

    def test_append_recover_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append({"kind": "a", "n": 1})
            journal.append({"kind": "b", "n": 2})
        records, dropped = recover_journal(path)
        assert dropped == 0
        assert [r["kind"] for r in records] == ["a", "b"]

    def test_torn_tail_truncated(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append({"kind": "a"})
            journal.append({"kind": "b"})
        clean_size = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(encode_record({"kind": "c"})[:10])  # torn append
        records, dropped = recover_journal(path)
        assert [r["kind"] for r in records] == ["a", "b"]
        assert dropped == 10
        assert os.path.getsize(path) == clean_size  # truncated in place
        # a re-opened journal sees only the committed prefix
        with Journal(path) as journal:
            assert [r["kind"] for r in journal.records] == ["a", "b"]

    def test_garbage_tail_hides_later_lines(self, tmp_path):
        # Scanning stops at the first invalid line: valid-looking lines
        # after garbage were never acknowledged as committed.
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append({"kind": "a"})
        with open(path, "ab") as fh:
            fh.write(b"garbage line\n")
            fh.write(encode_record({"kind": "z"}))
        records, dropped = recover_journal(path)
        assert [r["kind"] for r in records] == ["a"]
        assert dropped > 0

    def test_atomic_write_json(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"a": 1})
        atomic_write_json(path, {"a": 2})
        assert json.load(open(path)) == {"a": 2}
        assert not os.path.exists(path + ".tmp")


# ------------------------------------------------------------------- budget

class TestParseBytes:
    def test_suffixes(self):
        assert parse_bytes("4096") == 4096
        assert parse_bytes("64k") == 64 * 1024
        assert parse_bytes("2M") == 2 * 1024 * 1024
        assert parse_bytes("1g") == 1 << 30
        assert parse_bytes("1.5k") == 1536

    def test_rejects_bad_specs(self):
        for bad in ("", "abc", "12q", "-5", "0"):
            with pytest.raises(ConfigError):
                parse_bytes(bad)


class TestSnapshotBudget:
    def test_lru_eviction_is_deterministic(self):
        def run_sequence():
            budget = SnapshotBudget(100)
            evicted = []
            for key, size in (("a", 40), ("b", 40), ("c", 40)):
                budget.admit(key, size, evicted.append)
            budget.touch("b")
            budget.admit("d", 40, evicted.append)
            return evicted

        first, second = run_sequence(), run_sequence()
        assert first == second == ["a", "c"]

    def test_newest_entry_survives_its_own_admission(self):
        budget = SnapshotBudget(10)
        evicted = []
        budget.admit("big", 500, evicted.append)
        assert evicted == []
        assert budget.held_bytes == 500
        budget.admit("bigger", 600, evicted.append)
        assert evicted == ["big"]

    def test_rebuild_charges_side_ledger_only(self):
        budget = SnapshotBudget(100)
        budget.note_rebuild(2.5)
        budget.note_rebuild(1.5)
        assert budget.ledger.get(CACHE_REBUILD) == pytest.approx(4.0)
        counters = budget.counters()
        assert counters["snapshot.cache.rebuilds"] == 2
        assert counters["snapshot.cache.rebuild_platform_seconds"] == \
            pytest.approx(4.0)

    def test_counters_track_bytes(self):
        budget = SnapshotBudget(100)
        budget.admit("a", 60, lambda k: None)
        budget.admit("b", 60, lambda k: None)
        budget.miss()
        counters = budget.counters()
        assert counters["snapshot.cache.insertions"] == 2
        assert counters["snapshot.cache.evictions"] == 1
        assert counters["snapshot.cache.bytes_evicted"] == 60
        assert counters["snapshot.cache.bytes_held"] == 60
        assert counters["snapshot.cache.misses"] == 1

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ConfigError):
            SnapshotBudget(0)


class TestSnapshotStore:
    class _Value:
        def __init__(self, n):
            self.n = n

    def test_unbudgeted_store_never_evicts(self):
        store = SnapshotStore()
        for i in range(100):
            store.put(i, self._Value(i))
        assert len(store) == 100
        assert store.get(5).n == 5
        assert not store.was_evicted(5)

    def test_budgeted_store_evicts_and_remembers(self):
        budget = SnapshotBudget(100)
        store = SnapshotStore(budget=budget, size_of=lambda v: 60)
        store.put("a", self._Value(1))
        store.put("b", self._Value(2))
        assert store.get("a") is None
        assert store.was_evicted("a")
        assert not store.was_evicted("b")
        store.put("a", self._Value(3))       # rebuilt and re-admitted
        assert not store.was_evicted("a")
        store.clear()
        assert len(store) == 0
        assert not store.was_evicted("b")


# -------------------------------------------------------------- checkpoints

def _dummy_state():
    return ("paxos", 3, {("Accept", "delay", 1.0)}, ClusterWeights(),
            HuntResult(total_ledger=CostLedger({"boot": 1.0})))


class TestCheckpointSatellites:
    def test_save_checkpoint_is_atomic_and_loadable(self, tmp_path):
        path = str(tmp_path / "ck.json")
        system, seed, excluded, weights, result = _dummy_state()
        save_checkpoint(path, system, seed, excluded, weights, result)
        assert not os.path.exists(path + ".tmp")
        data = load_checkpoint(path)
        assert data["version"] == CHECKPOINT_VERSION
        assert data["system"] == "paxos"
        assert data["written_at_pass"] == 0

    def test_truncated_checkpoint_names_the_path(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text('{"version": 2, "passes": [')  # torn write
        with pytest.raises(ConfigError) as err:
            load_checkpoint(str(path))
        assert str(path) in str(err.value)
        assert "truncated or corrupt" in str(err.value)

    def test_missing_checkpoint_names_the_path(self, tmp_path):
        path = str(tmp_path / "nope.json")
        with pytest.raises(ConfigError) as err:
            load_checkpoint(path)
        assert path in str(err.value)

    def test_non_object_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigError):
            load_checkpoint(str(path))

    def test_v1_checkpoint_migrates_forward(self):
        v1 = {"version": 1, "system": "paxos", "seed": 3, "excluded": [],
              "weights": {}, "ledger": {}, "passes": [{}, {}],
              "complete": False}
        data = migrate_checkpoint(v1)
        assert data["version"] == CHECKPOINT_VERSION
        assert data["written_at_pass"] == 2
        assert v1["version"] == 1  # original untouched

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigError):
            migrate_checkpoint({"version": 99})


class TestStoreCheckpoints:
    def test_generation_swap_and_prune(self, tmp_path):
        store = RunStore(str(tmp_path), seed=1)
        for n in range(4):
            store.save_checkpoint({"n": n})
        names = sorted(f for f in os.listdir(str(tmp_path))
                       if f.startswith("checkpoint-"))
        assert names == ["checkpoint-000003.json", "checkpoint-000004.json"]
        assert store.load_checkpoint() == {"n": 3}
        store.close()

    def test_corrupt_newest_generation_falls_back(self, tmp_path):
        store = RunStore(str(tmp_path), seed=1)
        store.save_checkpoint({"n": 0})
        store.save_checkpoint({"n": 1})
        newest = os.path.join(str(tmp_path), "checkpoint-000002.json")
        size = os.path.getsize(newest)
        with open(newest, "r+b") as fh:
            fh.truncate(size // 2)  # torn at rename time
        assert store.load_checkpoint() == {"n": 0}
        assert store.counters()["store.checkpoint.fallbacks"] == 1
        store.close()

    def test_all_generations_corrupt_returns_none(self, tmp_path):
        store = RunStore(str(tmp_path), seed=1)
        store.save_checkpoint({"n": 0})
        path = os.path.join(str(tmp_path), "checkpoint-000001.json")
        with open(path, "w") as fh:
            fh.write("garbage")
        assert store.load_checkpoint() is None
        store.close()

    def test_new_store_instance_continues_generations(self, tmp_path):
        store = RunStore(str(tmp_path), seed=1)
        store.save_checkpoint({"n": 0})
        store.close()
        store = RunStore(str(tmp_path), seed=1)
        store.save_checkpoint({"n": 1})
        assert store.load_checkpoint() == {"n": 1}
        store.close()


# ----------------------------------------------------------------- runstore

class TestRunStore:
    def test_seed_mismatch_rejected(self, tmp_path):
        store = RunStore(str(tmp_path), seed=1)
        store.close()
        with pytest.raises(ConfigError):
            RunStore(str(tmp_path), seed=2)

    def test_journal_dedupes_replayed_probes(self, tmp_path):
        from repro.parallel.recording import StepTrace
        from repro.parallel.worker import ContextProbe
        store = RunStore(str(tmp_path), seed=1)
        probe = ContextProbe(found=True, trace=StepTrace())
        store.journal_context("Accept", probe)
        store.journal_context("Accept", probe)  # dropped: already durable
        appended = store.journal.appended
        store.close()
        reopened = RunStore(str(tmp_path), seed=1)
        assert appended == 2  # meta + one context
        assert "Accept" in reopened.seeded
        reopened.journal_context("Accept", probe)  # dedupe survives reopen
        assert reopened.journal.appended == 0
        reopened.close()

    def test_store_report_one_line(self):
        report = StoreReport()
        assert not report.eventful
        assert report.one_line() == "store: clean"
        report.merge_counters({"store.resume.evals_seeded": 3,
                               "snapshot.cache.evictions": 2})
        assert report.eventful
        assert "3 evals replayed" in report.one_line()
        assert "2 evictions" in report.one_line()


# --------------------------------------------------------------- hunt-level

class TestDurableHunt:
    @pytest.fixture(scope="class")
    def plain(self):
        return hunt(FACTORY, seed=3, message_types=["Accept"],
                    space_config=SPACE, max_wait=5.0, max_passes=2)

    def test_store_hunt_byte_identical_to_plain(self, tmp_path, plain):
        stored = hunt(FACTORY, seed=3, message_types=["Accept"],
                      space_config=SPACE, max_wait=5.0, max_passes=2,
                      store_dir=str(tmp_path))
        assert hunt_json(stored) == hunt_json(plain)
        assert stored.store_report is not None
        assert os.path.exists(os.path.join(str(tmp_path), "journal.jsonl"))

    def test_rerun_resumes_from_store(self, tmp_path, plain):
        kwargs = dict(seed=3, message_types=["Accept"], space_config=SPACE,
                      max_wait=5.0, max_passes=2, store_dir=str(tmp_path))
        hunt(FACTORY, **kwargs)
        again = hunt(FACTORY, **kwargs)
        assert hunt_json(again) == hunt_json(plain)
        assert again.resumed_passes == 0  # byte-identity pins it
        counters = again.store_report.counters
        assert counters.get("store.resume.passes_restored", 0) > 0

    def test_store_hunt_workers_byte_identical(self, tmp_path, plain):
        stored = hunt(FACTORY, seed=3, message_types=["Accept"],
                      space_config=SPACE, max_wait=5.0, max_passes=2,
                      workers=2, store_dir=str(tmp_path))
        assert hunt_json(stored) == hunt_json(plain)
        resumed = hunt(FACTORY, seed=3, message_types=["Accept"],
                       space_config=SPACE, max_wait=5.0, max_passes=2,
                       workers=2, store_dir=str(tmp_path))
        assert hunt_json(resumed) == hunt_json(plain)

    def test_guards(self, tmp_path):
        kwargs = dict(seed=3, message_types=["Accept"], space_config=SPACE,
                      max_wait=5.0, max_passes=1)
        with pytest.raises(ConfigError):
            hunt(FACTORY, store_dir=str(tmp_path), injection_cache=True,
                 **kwargs)
        with pytest.raises(ConfigError):
            hunt(FACTORY, store_dir=str(tmp_path),
                 checkpoint_path=str(tmp_path / "ck.json"), **kwargs)
        with pytest.raises(ConfigError):
            hunt(FACTORY, snapshot_budget=1024, **kwargs)


class TestBudgetedHunt:
    def test_budgeted_cache_hunt_identical_with_evictions(self):
        kwargs = dict(seed=3, message_types=["Accept", "Heartbeat"],
                      space_config=SPACE, max_wait=5.0, max_passes=2,
                      injection_cache=True)
        unbudgeted = hunt(FACTORY, **kwargs)
        budgeted = hunt(FACTORY, snapshot_budget=1, **kwargs)
        assert hunt_json(budgeted) == hunt_json(unbudgeted)
        counters = budgeted.store_report.counters
        assert counters["snapshot.cache.evictions"] > 0
        assert counters["snapshot.cache.rebuilds"] > 0
        # rebuild time went to the side channel, not the report ledger
        assert counters["snapshot.cache.rebuild_platform_seconds"] > 0

    def test_budgeted_workers_hunt_identical(self):
        # Three cacheable types over two workers: at least one worker
        # holds two contexts, so a 1-byte budget must evict.
        kwargs = dict(seed=3, message_types=["Accept", "Heartbeat", "Learn"],
                      space_config=SPACE, max_wait=5.0, max_passes=2)
        plain = hunt(FACTORY, **kwargs)
        budgeted = hunt(FACTORY, workers=2, snapshot_budget=1, **kwargs)
        assert hunt_json(budgeted) == hunt_json(plain)
        assert budgeted.store_report.counters[
            "snapshot.cache.evictions"] > 0
