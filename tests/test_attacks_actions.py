"""Tests for malicious actions, lying strategies, and the action space."""

import pytest
from hypothesis import given, strategies as st

from repro.attacks.actions import (ActionContext, AttackScenario, DelayAction,
                                   DivertAction, DropAction, DuplicateAction,
                                   LyingAction, MaliciousAction)
from repro.attacks.space import ActionSpace, ActionSpaceConfig
from repro.attacks.strategies import (ALL_STRATEGIES, LyingStrategy,
                                      default_strategies)
from repro.common.errors import ProxyError
from repro.common.ids import replica
from repro.common.rng import RandomStream
from repro.netem.packets import MessageEnvelope
from repro.wire.codec import Message, ProtocolCodec
from repro.wire.schema import ProtocolSchema, make_message
from repro.wire.types import scalar_type

SCHEMA = ProtocolSchema("atk", (
    make_message("Data", 1, [("seq", "i32"), ("weight", "f64"),
                             ("on", "bool"), ("body", "varbytes<u16>")]),
    make_message("Ctl", 2, [("code", "u8")]),
))
CODEC = ProtocolCodec(SCHEMA)
NODES = [replica(i) for i in range(4)]


def ctx(seed=0):
    return ActionContext(CODEC, RandomStream(seed, "t"), NODES)


def env(payload=None, src=0, dst=1):
    if payload is None:
        payload = CODEC.encode(Message("Data", {
            "seq": 10, "weight": 1.5, "on": True, "body": b"xyz"}))
    return MessageEnvelope(1, replica(src), replica(dst), "udp", payload)


class TestDeliveryActions:
    def test_drop_certain(self):
        assert DropAction(1.0).apply(env(), ctx()) == []

    def test_drop_probabilistic_is_deterministic_per_stream(self):
        results_a = [len(DropAction(0.5).apply(env(), ctx_)) for ctx_ in
                     [ActionContext(CODEC, RandomStream(7, "s"), NODES)]
                     for __ in range(20)]
        results_b = [len(DropAction(0.5).apply(env(), ctx_)) for ctx_ in
                     [ActionContext(CODEC, RandomStream(7, "s"), NODES)]
                     for __ in range(20)]
        assert results_a == results_b
        assert 0 in results_a and 1 in results_a

    def test_drop_validation(self):
        with pytest.raises(ProxyError):
            DropAction(0.0)
        with pytest.raises(ProxyError):
            DropAction(1.5)

    def test_delay_preserves_payload(self):
        deliveries = DelayAction(0.7).apply(env(), ctx())
        assert len(deliveries) == 1
        assert deliveries[0].extra_delay == 0.7
        assert deliveries[0].dst == replica(1)

    def test_delay_validation(self):
        with pytest.raises(ProxyError):
            DelayAction(0.0)

    def test_duplicate_count(self):
        deliveries = DuplicateAction(5).apply(env(), ctx())
        assert len(deliveries) == 5
        assert all(d.dst == replica(1) for d in deliveries)

    def test_duplicate_validation(self):
        with pytest.raises(ProxyError):
            DuplicateAction(1)

    def test_divert_deterministic_next_node(self):
        deliveries = DivertAction().apply(env(src=0, dst=1), ctx())
        assert deliveries[0].dst == replica(2)

    def test_divert_wraps_around(self):
        deliveries = DivertAction().apply(env(src=2, dst=3), ctx())
        assert deliveries[0].dst == replica(0)

    def test_divert_never_picks_src_or_dst(self):
        for s in range(3):
            for d in range(3):
                if s == d:
                    continue
                out = DivertAction().apply(env(src=s, dst=d), ctx())[0].dst
                assert out not in (replica(s), replica(d))


class TestLyingAction:
    def test_lie_min_on_int(self):
        action = LyingAction("seq", LyingStrategy("min"))
        payload = action.apply(env(), ctx())[0].payload
        assert CODEC.decode(payload)["seq"] == -2**31

    def test_lie_preserves_other_fields(self):
        action = LyingAction("seq", LyingStrategy("max"))
        decoded = CODEC.decode(action.apply(env(), ctx())[0].payload)
        assert decoded["body"] == b"xyz"
        assert decoded["on"] is True

    def test_relative_strategies(self):
        for kind, operand, expect in (("add", 5, 15), ("sub", 3, 7),
                                      ("mul", 2, 20)):
            action = LyingAction("seq", LyingStrategy(kind, operand))
            decoded = CODEC.decode(action.apply(env(), ctx())[0].payload)
            assert decoded["seq"] == expect

    def test_lie_on_float(self):
        action = LyingAction("weight", LyingStrategy("mul", -1))
        decoded = CODEC.decode(action.apply(env(), ctx())[0].payload)
        assert decoded["weight"] == -1.5

    def test_lie_on_bool(self):
        action = LyingAction("on", LyingStrategy("min"))
        decoded = CODEC.decode(action.apply(env(), ctx())[0].payload)
        assert decoded["on"] is False

    def test_spanning_indexes_spanning_set(self):
        t = scalar_type("i32")
        for i, expect in enumerate(t.spanning_values()):
            action = LyingAction("seq", LyingStrategy("spanning", i))
            decoded = CODEC.decode(action.apply(env(), ctx())[0].payload)
            assert decoded["seq"] == expect

    def test_unknown_message_passes_through(self):
        action = LyingAction("seq", LyingStrategy("min"))
        raw = b"\xff\xff???"
        bogus = MessageEnvelope(1, replica(0), replica(1), "udp", raw)
        assert action.apply(bogus, ctx())[0].payload == raw

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ProxyError):
            LyingStrategy("sneeze")


class TestRecords:
    @pytest.mark.parametrize("action", [
        DropAction(0.5), DelayAction(1.0), DivertAction(),
        DuplicateAction(50), LyingAction("seq", LyingStrategy("mul", 2)),
    ], ids=lambda a: a.describe())
    def test_roundtrip(self, action):
        assert MaliciousAction.from_record(action.to_record()) == action

    def test_scenario_roundtrip(self):
        scenario = AttackScenario("Data", DelayAction(1.0))
        assert AttackScenario.from_record(scenario.to_record()) == scenario

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProxyError):
            MaliciousAction.from_record(("teleport",))

    def test_describe(self):
        assert AttackScenario("Data", DelayAction(1.0)).describe() == \
            "Delay 1s Data"
        assert DropAction(0.5).describe() == "Drop 50%"
        assert DuplicateAction(50).describe() == "Dup x50"


class TestClusters:
    def test_delivery_clusters(self):
        assert DropAction(0.5).cluster == "drop"
        assert DelayAction(1.0).cluster == "delay"
        assert DivertAction().cluster == "divert"
        assert DuplicateAction(2).cluster == "duplicate"

    def test_lying_clusters(self):
        assert LyingAction("s", LyingStrategy("min")).cluster == "lie-boundary"
        assert LyingAction("s", LyingStrategy("spanning", 1)).cluster == \
            "lie-boundary"
        assert LyingAction("s", LyingStrategy("random")).cluster == "lie-random"
        assert LyingAction("s", LyingStrategy("add", 1)).cluster == \
            "lie-relative"


class TestActionSpace:
    def test_delivery_action_count(self):
        space = ActionSpace(SCHEMA)
        # 2 delays + 2 drops + 2 dups + divert
        assert len(space.delivery_actions()) == 7

    def test_lying_enumeration_covers_scalar_fields(self):
        space = ActionSpace(SCHEMA)
        lies = space.lying_actions(SCHEMA.message_named("Data"))
        fields = {a.field for a in lies}
        assert fields == {"seq", "weight", "on"}  # varbytes excluded

    def test_strategy_counts_per_type(self):
        i32 = scalar_type("i32")
        strategies = default_strategies(i32)
        # min, max, random + 7 spanning + add/sub/mul2/mul-1
        assert len(strategies) == 3 + len(i32.spanning_values()) + 4

    def test_bool_has_no_relative_strategies(self):
        strategies = default_strategies(scalar_type("bool"))
        assert all(s.kind not in ("add", "sub", "mul") for s in strategies)

    def test_all_scenarios_counts(self):
        space = ActionSpace(SCHEMA)
        summary = space.summary()
        assert summary["Ctl"] == 7 + len(space.lying_actions(
            SCHEMA.message_named("Ctl")))
        assert space.size() == sum(summary.values())
        assert len(space.all_scenarios()) == space.size()

    def test_config_trims_space(self):
        cfg = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(),
                                duplicate_counts=(), include_divert=False,
                                include_lying=False)
        space = ActionSpace(SCHEMA, cfg)
        assert [a.describe() for a in space.actions_for("Data")] == ["Delay 1s"]

    @given(st.sampled_from(ALL_STRATEGIES),
           st.integers(min_value=-100, max_value=100))
    def test_all_strategies_always_encodable(self, kind, operand):
        if kind == "spanning":
            operand = abs(operand)
        strategy = LyingStrategy(kind, operand)
        action = LyingAction("seq", strategy)
        payload = action.apply(env(), ctx())[0].payload
        CODEC.decode(payload)  # must never produce an unencodable message
