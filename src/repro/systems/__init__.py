"""The target systems the paper evaluates Turret on."""
