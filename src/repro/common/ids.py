"""Identifier types used across the platform.

Node identifiers are small integers (as in the BFT literature where replicas
are numbered 0..n-1); the helpers here wrap them with roles so log output and
assertions stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class NodeId:
    """Identity of a participant in the distributed system under test."""

    index: int
    role: str = "replica"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.role}{self.index}"


def replica(i: int) -> NodeId:
    return NodeId(i, "replica")


def client(i: int) -> NodeId:
    return NodeId(i, "client")


@dataclass(frozen=True, order=True)
class FlowId:
    """A unidirectional application-level flow between two nodes."""

    src: NodeId
    dst: NodeId

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.src}->{self.dst}"
