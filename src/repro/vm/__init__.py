"""Virtualization substrate: guests, KSM, page-sharing-aware snapshots."""

from repro.vm.ksm import KsmDaemon, KsmStats, SharedPageEntry
from repro.vm.machine import VirtualMachine
from repro.vm.manager import ClusterSaveResult, VmCluster
from repro.vm.memory import GuestMemory, OsImage, Page
from repro.vm.snapshots import (ClusterSnapshot, PageRecord, SharedPageMap,
                                SnapshotManager, VmSnapshot)
from repro.vm.timing import VmTimingModel

__all__ = [
    "KsmDaemon", "KsmStats", "SharedPageEntry", "VirtualMachine",
    "ClusterSaveResult", "VmCluster", "GuestMemory", "OsImage", "Page",
    "ClusterSnapshot", "PageRecord", "SharedPageMap", "SnapshotManager",
    "VmSnapshot", "VmTimingModel",
]
