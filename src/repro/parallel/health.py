"""Self-healing for the parallel worker pool.

The executor's workers are ordinary processes: they can crash (the OOM
killer, a segfault in a native extension, an operator's stray ``kill``) or
hang (a runaway loop, a wedged syscall).  Either fate used to abort the
entire hunt — unacceptable for campaign-length searches.  This module turns
worker fate into a recoverable event:

* **deadlines** — result collection polls with a wall-clock deadline scaled
  to the task's size instead of blocking on ``recv()`` forever;
* **crash and hang detection** — a dead pipe (``EOFError`` /
  ``BrokenPipeError`` on send *or* recv) or a blown deadline marks the
  worker failed; the process is killed and reaped;
* **deterministic replay** — a worker is a pure function of
  ``(worker_index, factory, seed, params)`` and a task is a pure function
  of its shard, so a respawned worker re-runs the lost task from scratch
  and records *the same traces* the dead worker would have recorded.  The
  merged report therefore stays byte-identical to the serial run, and the
  startup-trace cross-check extends to replayed workers for free;
* **bounded restarts** — each worker slot has a retry budget with capped
  exponential backoff; an exhausted slot is retired and its shard is
  reassigned round-robin to the survivors.  When no survivors remain the
  executor degrades to the in-process prober instead of aborting;
* **poison quarantine** — a task that kills ``poison_crashes`` workers is
  handed to the supervision ledger as a quarantined unit, through the same
  ``EVENT_QUARANTINE`` machinery serial passes use, so one pathological
  scenario cannot sink a hunt;
* **telemetry** — restarts, timeouts, reassignments, and per-worker
  liveness are tracked in an :class:`InstrumentRegistry` and surfaced as a
  :class:`WorkerHealthReport`.

The health report is a **side channel**, like
:class:`~repro.controller.costs.WorkerAttribution`: worker fate depends on
wall-clock scheduling, so it must stay out of the deterministic report —
serializing it into the merged JSON would break the byte-identity contract
the whole parallel layer is built on.  It is rendered in human-facing text
and markdown, and exported as its own JSON artifact via
``--worker-health``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.attacks.actions import AttackScenario
from repro.parallel.recording import StepTrace
from repro.parallel.worker import (BaselineProbe, ContextProbe, ScenarioProbe,
                                   TypeProbe, WorkerReturn)
from repro.telemetry.instruments import InstrumentRegistry
from repro.telemetry.tracer import Tracer

#: worker failure kinds
FAIL_CRASH = "crash"          # dead pipe: EOF/BrokenPipe on recv or send
FAIL_TIMEOUT = "timeout"      # per-task deadline expired; process killed


@dataclass
class HealthPolicy:
    """Tunable knobs of the self-healing layer.

    ``task_timeout`` is *per work unit* (a message type or a brute-force
    scenario): a shard of five types gets five times the deadline of a
    shard of one, so a big shard on a slow box is not mistaken for a hang.
    ``None`` disables hang detection (crash detection via the pipe is
    always on).
    """

    #: wall-clock seconds allowed per work unit; None = no deadline
    task_timeout: Optional[float] = None
    #: respawns allowed per worker slot before it is retired
    worker_retries: int = 2
    #: degrade to the in-process prober when every worker is gone
    #: (False: raise SearchError instead)
    degrade: bool = True
    #: crashes a single task may cause before it is quarantined as poison
    poison_crashes: int = 3
    #: exponential-backoff base/cap between respawns of the same slot
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: result-collection poll tick
    poll_interval: float = 0.25

    def deadline_for(self, units: int) -> Optional[float]:
        """Wall-clock budget for a task of ``units`` work units."""
        if self.task_timeout is None:
            return None
        return self.task_timeout * max(1, units)

    def backoff_for(self, restarts: int) -> float:
        """Sleep before the ``restarts``-th respawn of a slot (0-based)."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** restarts))


@dataclass
class WorkerHealth:
    """One worker slot's fate over the executor's lifetime."""

    worker: int
    restarts: int = 0
    crashes: int = 0
    timeouts: int = 0
    tasks_replayed: int = 0
    units_reassigned: int = 0     # work units handed away after retirement
    alive: bool = True
    retired: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker, "restarts": self.restarts,
            "crashes": self.crashes, "timeouts": self.timeouts,
            "tasks_replayed": self.tasks_replayed,
            "units_reassigned": self.units_reassigned,
            "alive": self.alive, "retired": self.retired,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkerHealth":
        return cls(data["worker"], data.get("restarts", 0),
                   data.get("crashes", 0), data.get("timeouts", 0),
                   data.get("tasks_replayed", 0),
                   data.get("units_reassigned", 0),
                   data.get("alive", True), data.get("retired", False))


@dataclass
class WorkerHealthReport:
    """What the self-healing layer did across a pass or a whole hunt."""

    workers: List[WorkerHealth] = field(default_factory=list)
    #: poison tasks handed to the quarantine ledger, as human-readable labels
    quarantined_tasks: List[str] = field(default_factory=list)
    #: the pool collapsed and the executor fell back to in-process probing
    degraded: bool = False
    #: recovery decisions in order, as human-readable lines
    events: List[str] = field(default_factory=list)
    #: instrument snapshot (``parallel.worker.*`` counters and gauges)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    @property
    def restarts(self) -> int:
        return sum(w.restarts for w in self.workers)

    @property
    def crashes(self) -> int:
        return sum(w.crashes for w in self.workers)

    @property
    def timeouts(self) -> int:
        return sum(w.timeouts for w in self.workers)

    @property
    def reassignments(self) -> int:
        return sum(1 for w in self.workers if w.units_reassigned)

    @property
    def eventful(self) -> bool:
        """Did any worker ever misbehave?  Clean runs stay silent so a
        parallel run's human output matches a serial run's."""
        return bool(self.crashes or self.timeouts or self.restarts
                    or self.quarantined_tasks or self.degraded)

    def one_line(self) -> str:
        parts = [f"{self.crashes} crashes", f"{self.timeouts} timeouts",
                 f"{self.restarts} restarts",
                 f"{self.reassignments} reassigned workers",
                 f"{len(self.quarantined_tasks)} poison quarantines"]
        line = "worker health: " + ", ".join(parts)
        if self.degraded:
            line += " — pool collapsed, degraded to in-process"
        return line

    def markdown_lines(self) -> List[str]:
        lines = ["", "## Worker health", "",
                 f"* crashes: {self.crashes} (timeouts: {self.timeouts})",
                 f"* restarts: {self.restarts}",
                 f"* poison quarantines: {len(self.quarantined_tasks)}"]
        if self.degraded:
            lines.append("* **pool collapsed — degraded to in-process "
                         "execution**")
        if self.workers:
            lines.append("")
            lines.append("| worker | restarts | crashes | timeouts "
                         "| replayed | status |")
            lines.append("|---|---|---|---|---|---|")
            for w in self.workers:
                status = ("retired" if w.retired
                          else "alive" if w.alive else "down")
                lines.append(f"| {w.worker} | {w.restarts} | {w.crashes} "
                             f"| {w.timeouts} | {w.tasks_replayed} "
                             f"| {status} |")
        for label in self.quarantined_tasks:
            lines.append(f"* quarantined: {label}")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "restarts": self.restarts, "crashes": self.crashes,
            "timeouts": self.timeouts,
            "reassignments": self.reassignments,
            "degraded": self.degraded,
            "quarantined_tasks": list(self.quarantined_tasks),
            "workers": [w.to_dict() for w in self.workers],
            "events": list(self.events),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkerHealthReport":
        return cls(
            workers=[WorkerHealth.from_dict(w)
                     for w in data.get("workers", [])],
            quarantined_tasks=list(data.get("quarantined_tasks", [])),
            degraded=data.get("degraded", False),
            events=list(data.get("events", [])),
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})))


class HealthMonitor:
    """Bookkeeping for the executor's recovery decisions.

    The monitor owns its own always-on :class:`InstrumentRegistry` rather
    than the world-side one: worker fate is platform state (never rewound,
    never serialized into the deterministic report), exactly like the
    tracer.  Spans for kill/respawn/replay go to the executor's tracer at
    the call sites; the monitor records the counters and the narrative.
    """

    def __init__(self, policy: HealthPolicy, workers: int,
                 tracer: Optional[Tracer] = None) -> None:
        self.policy = policy
        self.pool_size = workers
        self.tracer = tracer
        self.registry = InstrumentRegistry(enabled=True)
        self._workers: Dict[int, WorkerHealth] = {}
        self._task_crashes: Dict[object, int] = {}
        self._quarantined: List[str] = []
        self._events: List[str] = []
        self._degraded = False

    # ------------------------------------------------------------- recording

    def state(self, worker: int) -> WorkerHealth:
        health = self._workers.get(worker)
        if health is None:
            health = self._workers[worker] = WorkerHealth(worker)
        return health

    def _note(self, line: str) -> None:
        self._events.append(line)

    def record_spawn(self, worker: int) -> None:
        self.state(worker).alive = True
        self.registry.gauge(f"parallel.worker.{worker}.alive", 1)

    def record_failure(self, worker: int, kind: str, detail: str) -> None:
        health = self.state(worker)
        health.alive = False
        if kind == FAIL_TIMEOUT:
            health.timeouts += 1
            self.registry.count("parallel.worker.timeouts")
        health.crashes += 1
        self.registry.count("parallel.worker.crashes")
        self.registry.gauge(f"parallel.worker.{worker}.alive", 0)
        self._note(f"worker {worker} {kind}: {detail}")

    def allow_restart(self, worker: int) -> bool:
        return self.state(worker).restarts < self.policy.worker_retries

    def record_restart(self, worker: int) -> float:
        """Count one respawn of ``worker``; return the backoff to sleep."""
        health = self.state(worker)
        delay = self.policy.backoff_for(health.restarts)
        health.restarts += 1
        self.registry.count("parallel.worker.restarts")
        self._note(f"worker {worker} respawned "
                   f"(restart {health.restarts}/{self.policy.worker_retries},"
                   f" backoff {delay:.2f}s)")
        return delay

    def record_replay(self, worker: int, units: int) -> None:
        self.state(worker).tasks_replayed += 1
        self.registry.count("parallel.task.replays")
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant("executor.task.replay", worker=worker,
                                units=units)

    def retire(self, worker: int) -> None:
        health = self.state(worker)
        if not health.retired:
            health.retired = True
            self.registry.count("parallel.worker.retirements")
            self._note(f"worker {worker} retired "
                       f"(restart budget {self.policy.worker_retries} spent)")

    def is_retired(self, worker: int) -> bool:
        health = self._workers.get(worker)
        return health is not None and health.retired

    def record_reassignment(self, worker: int, target: int,
                            units: int) -> None:
        self.state(worker).units_reassigned += max(1, units)
        self.registry.count("parallel.task.reassignments")
        self._note(f"worker {worker} shard ({units} units) reassigned "
                   f"to worker {target}")
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant("executor.task.reassign", worker=worker,
                                target=target, units=units)

    def note_task_crash(self, key: object) -> int:
        """Count one worker killed by this task; return the running total."""
        count = self._task_crashes.get(key, 0) + 1
        self._task_crashes[key] = count
        return count

    def is_poison(self, key: object) -> bool:
        return self._task_crashes.get(key, 0) >= self.policy.poison_crashes

    def record_quarantine(self, label: str, crashes: int) -> None:
        self._quarantined.append(label)
        self.registry.count("parallel.task.quarantines")
        self._note(f"poison task quarantined after killing {crashes} "
                   f"workers: {label}")

    def record_degraded(self) -> None:
        self._degraded = True
        self.registry.count("parallel.pool.collapses")
        self._note("worker pool collapsed; degraded to in-process probing")

    # --------------------------------------------------------------- reading

    @property
    def eventful(self) -> bool:
        return self.report().eventful

    def report(self) -> WorkerHealthReport:
        return WorkerHealthReport(
            workers=[self._workers[w] for w in sorted(self._workers)],
            quarantined_tasks=list(self._quarantined),
            degraded=self._degraded,
            events=list(self._events),
            counters=self.registry.counters(),
            gauges=self.registry.gauges())

    def report_if_eventful(self) -> Optional[WorkerHealthReport]:
        report = self.report()
        return report if report.eventful else None


# -------------------------------------------------------- poison quarantine

def quarantined_return(worker: int, task: tuple, reason: str,
                       attempts: int) -> WorkerReturn:
    """Synthesize the :class:`WorkerReturn` of a poison task.

    Every unit in the task's shard collapses to a quarantined probe whose
    trace carries no charges — just the ``EVENT_WORKER_FAULT`` +
    ``EVENT_QUARANTINE`` events the merge replays into the supervision
    ledger, exactly where a serial pass would have recorded a scenario
    that burned its retry budget.
    """
    quarantined = (reason, attempts)
    op = f"worker:{worker}"
    ret = WorkerReturn(worker=worker)
    if task[0] == "probe":
        for message_type in task[1]:
            trace = StepTrace.quarantine_only(op, message_type, reason,
                                              attempts)
            ret.types.append(TypeProbe(
                message_type,
                ContextProbe(found=False, trace=trace,
                             quarantined=quarantined)))
        return ret
    records, include_baseline = task[1], task[2]
    if include_baseline:
        ret.baseline = BaselineProbe(
            None, StepTrace.quarantine_only(op, "baseline", reason, attempts),
            quarantined)
    for record in records:
        label = AttackScenario.from_record(record).describe()
        ret.scenarios.append(ScenarioProbe(
            record, None, None,
            StepTrace.quarantine_only(op, label, reason, attempts),
            quarantined))
    return ret


def task_key(task: tuple) -> tuple:
    """Stable identity of a task for poison counting: the same shard
    replayed (or reassigned) after a crash keeps the same key."""
    if task[0] == "probe":
        return ("probe", tuple(task[1]), task[2])
    return ("brute", tuple(task[1]), task[2])


def task_units(task: tuple) -> int:
    """Work units in a task, for deadline scaling: message types for
    probe tasks, scenarios (plus the baseline) for brute tasks."""
    if task[0] == "probe":
        return max(1, len(task[1]))
    return max(1, len(task[1]) + (1 if task[2] else 0))


def describe_task(task: tuple) -> str:
    if task[0] == "probe":
        return f"probe shard [{', '.join(task[1])}]" if task[1] \
            else "probe shard (startup only)"
    extra = " + baseline" if task[2] else ""
    return f"brute shard ({len(task[1])} scenarios{extra})"


__all__ = [
    "FAIL_CRASH",
    "FAIL_TIMEOUT",
    "HealthMonitor",
    "HealthPolicy",
    "WorkerHealth",
    "WorkerHealthReport",
    "describe_task",
    "quarantined_return",
    "task_key",
    "task_units",
]
