"""Analysis tooling: report persistence/rendering, traffic, timelines."""

from repro.analysis.reports import (excluded_scenarios, load_report,
                                    render_markdown, report_from_dict,
                                    report_to_dict, save_report)
from repro.analysis.timeline import CrashEvent, Timeline
from repro.analysis.traffic import TrafficTap, TypeStats

__all__ = ["excluded_scenarios", "load_report", "render_markdown",
           "report_from_dict", "report_to_dict", "save_report", "CrashEvent",
           "Timeline", "TrafficTap", "TypeStats"]
