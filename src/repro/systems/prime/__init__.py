"""Prime — pre-ordering BFT with leader monitoring (target system)."""

from repro.systems.prime.client import PrimeClient
from repro.systems.prime.replica import PrimeReplica
from repro.systems.prime.schema import (PRIME_CODEC, PRIME_SCHEMA,
                                        PRIME_SCHEMA_TEXT)
from repro.systems.prime.testbed import PRIME_ACTIVE_TYPES, prime_testbed

__all__ = ["PrimeClient", "PrimeReplica", "PRIME_CODEC", "PRIME_SCHEMA",
           "PRIME_SCHEMA_TEXT", "PRIME_ACTIVE_TYPES", "prime_testbed"]
