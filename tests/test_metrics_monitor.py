"""Tests for the metrics collector and the performance monitor/Δ rule."""

import pytest

from repro.common.ids import client, replica
from repro.metrics.collector import UPDATE_DONE, MetricsCollector
from repro.controller.monitor import (AttackThreshold, PerfSample,
                                      PerformanceMonitor)


def collector_with_updates(times):
    metrics = MetricsCollector()
    for t in times:
        metrics.record(t, client(0), UPDATE_DONE, 0.005)
    return metrics


class TestCollector:
    def test_throughput_window(self):
        metrics = collector_with_updates([0.1 * i for i in range(100)])
        assert metrics.throughput(0.0, 9.9) == pytest.approx(100 / 9.9)

    def test_window_boundaries_inclusive(self):
        metrics = collector_with_updates([1.0, 2.0, 3.0])
        assert metrics.count_in(UPDATE_DONE, 1.0, 3.0) == 3
        assert metrics.count_in(UPDATE_DONE, 1.5, 2.5) == 1

    def test_empty_window(self):
        metrics = collector_with_updates([1.0])
        assert metrics.throughput(2.0, 3.0) == 0.0
        assert metrics.latency_stats(2.0, 3.0) == (0.0, 0.0, 0.0)

    def test_degenerate_window(self):
        metrics = collector_with_updates([1.0])
        assert metrics.throughput(1.0, 1.0) == 0.0

    def test_latency_stats(self):
        metrics = MetricsCollector()
        for i, lat in enumerate([0.001, 0.005, 0.003]):
            metrics.record(float(i), client(0), UPDATE_DONE, lat)
        lo, avg, hi = metrics.latency_stats(0.0, 10.0)
        assert lo == 0.001 and hi == 0.005
        assert avg == pytest.approx(0.003)

    def test_named_filtering(self):
        metrics = MetricsCollector()
        metrics.record(1.0, replica(0), "other", 1.0)
        metrics.record(1.0, client(0), UPDATE_DONE, 1.0)
        assert len(metrics.events(UPDATE_DONE)) == 1
        assert metrics.count_in("other", 0.0, 2.0) == 1

    def test_save_load(self):
        metrics = collector_with_updates([1.0, 2.0])
        state = metrics.save_state()
        other = MetricsCollector()
        other.load_state(state)
        assert other.count_in(UPDATE_DONE, 0.0, 3.0) == 2

    def test_last_event_time(self):
        metrics = collector_with_updates([1.0, 4.0])
        assert metrics.last_event_time() == 4.0
        assert MetricsCollector().last_event_time() is None

    def test_inverted_window_counts_zero(self):
        metrics = collector_with_updates([1.0, 2.0])
        assert metrics.count_in(UPDATE_DONE, 3.0, 1.0) == 0
        assert metrics.throughput(3.0, 1.0) == 0.0


def sample(throughput, crashed=0):
    return PerfSample(0.0, 6.0, throughput, 0.001, 0.002, 0.003, crashed)


class TestThreshold:
    def test_damage_fraction(self):
        rule = AttackThreshold(delta=0.25)
        assert rule.damage(sample(100), sample(50)) == pytest.approx(0.5)
        assert rule.damage(sample(100), sample(100)) == 0.0

    def test_improvement_clamped_to_zero(self):
        rule = AttackThreshold()
        assert rule.damage(sample(100), sample(150)) == 0.0

    def test_is_attack_above_delta(self):
        rule = AttackThreshold(delta=0.25)
        assert rule.is_attack(sample(100), sample(70))
        assert not rule.is_attack(sample(100), sample(80))

    def test_crash_is_always_attack(self):
        rule = AttackThreshold(delta=0.25)
        assert rule.is_attack(sample(100), sample(100, crashed=1))

    def test_crash_rule_can_be_disabled(self):
        rule = AttackThreshold(delta=0.25, crash_is_attack=False)
        assert not rule.is_attack(sample(100), sample(100, crashed=1))

    def test_zero_baseline(self):
        rule = AttackThreshold()
        assert rule.damage(sample(0), sample(0)) == 0.0
        assert rule.damage(sample(0), sample(0, crashed=2)) == 1.0


class TestMonitor:
    def test_sample_composition(self):
        metrics = collector_with_updates([0.5 * i for i in range(20)])
        monitor = PerformanceMonitor(metrics)
        s = monitor.sample(0.0, 9.5, crashed_nodes=1)
        assert s.throughput == pytest.approx(20 / 9.5)
        assert s.crashed_nodes == 1
        assert s.window == pytest.approx(9.5)

    def test_describe_readable(self):
        s = sample(42.0, crashed=2)
        text = s.describe()
        assert "42.00" in text and "crashed" in text

    def test_empty_window_sample_is_well_defined(self):
        monitor = PerformanceMonitor(MetricsCollector())
        s = monitor.sample(5.0, 8.0)
        assert s.empty
        assert s.completed == 0
        assert s.throughput == 0.0
        assert (s.latency_min, s.latency_avg, s.latency_max) == (0, 0, 0)
        assert (s.latency_p50, s.latency_p95, s.latency_p99) == (0, 0, 0)
        assert "empty window" in s.describe()

    def test_completed_counts_updates(self):
        metrics = collector_with_updates([0.5, 1.0, 1.5])
        monitor = PerformanceMonitor(metrics)
        s = monitor.sample(0.0, 2.0)
        assert s.completed == 3
        assert not s.empty

    def test_empty_baselines_never_divide_by_zero(self):
        rule = AttackThreshold(delta=0.25)
        monitor = PerformanceMonitor(MetricsCollector())
        empty = monitor.sample(0.0, 2.0)
        assert rule.damage(empty, empty) == 0.0
        assert not rule.is_attack(empty, empty)
        assert rule.damage(empty, monitor.sample(0.0, 2.0,
                                                 crashed_nodes=1)) == 1.0
