"""Shared machinery for the attack-finding algorithms.

Every algorithm talks to the platform through the supervised helpers here:
:meth:`SearchAlgorithm._start_run`, :meth:`_acquire_context`, and
:meth:`_measure_action` wrap the harness operations in the
:class:`~repro.controller.supervisor.ScenarioSupervisor`'s
classify-retry-quarantine logic, so a transient platform fault (failed
snapshot, watchdog trip, injected fault) costs a bounded retry — with a
fresh testbed rebuild charged to the ``rebuild`` ledger category — instead
of aborting the whole pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.attacks.actions import AttackScenario, MaliciousAction
from repro.attacks.space import ActionSpace, ActionSpaceConfig
from repro.common.errors import ProxyError
from repro.controller.costs import REBUILD, CostLedger
from repro.controller.harness import (AttackHarness, InjectionPoint,
                                      TestbedFactory)
from repro.controller.monitor import AttackThreshold, PerfSample
from repro.controller.supervisor import (FaultPlan, QuarantinedScenario,
                                         ScenarioQuarantined,
                                         ScenarioSupervisor)
from repro.search.results import SearchReport
from repro.telemetry.progress import ProgressLine
from repro.telemetry.summary import summarize
from repro.telemetry.tracer import NULL_SPAN, Tracer


def is_attack_sample(threshold: AttackThreshold, baseline: PerfSample,
                     sample: PerfSample) -> bool:
    """The branch-and-measure attack rule shared by weighted greedy and the
    parallel prober: a crash of an additional benign node is always an
    attack, otherwise the damage threshold decides.  Keeping it in one
    place is what lets a worker's early stop mirror the serial walk."""
    return (sample.crashed_nodes > baseline.crashed_nodes
            or threshold.is_attack(baseline, sample))


@dataclass
class TypeContext:
    """Everything needed to branch one message type: injection + baseline.

    ``stale`` flips to True when the testbed was rebuilt underneath us (the
    old snapshot belongs to a dead world); the next supervised measurement
    transparently re-acquires the injection point and baseline.
    """

    message_type: str
    injection: InjectionPoint
    baseline: PerfSample
    stale: bool = False


class SearchAlgorithm:
    """Base class: holds the harness, the action space, and the report."""

    name = "search"

    def __init__(self, factory: TestbedFactory, seed: int = 0,
                 threshold: Optional[AttackThreshold] = None,
                 space_config: Optional[ActionSpaceConfig] = None,
                 max_wait: Optional[float] = None,
                 shared_pages: bool = True,
                 delta_snapshots: bool = False,
                 fault_plan: Optional[FaultPlan] = None,
                 fault_schedule=None,
                 watchdog_limit: Optional[int] = None,
                 max_retries: int = 2,
                 tracer: Optional[Tracer] = None,
                 progress: Optional[ProgressLine] = None,
                 log_events: bool = False,
                 injection_cache: bool = False,
                 reuse_testbed: bool = False,
                 ledger: Optional[CostLedger] = None,
                 snapshot_budget=None) -> None:
        self.factory = factory
        self.seed = seed
        self.threshold = threshold or AttackThreshold()
        self.space_config = space_config
        self.max_wait = max_wait
        self.shared_pages = shared_pages
        self.delta_snapshots = delta_snapshots
        self.fault_plan = fault_plan
        #: environmental FaultSchedule armed on every testbed (chaos layer)
        self.fault_schedule = fault_schedule
        self.watchdog_limit = watchdog_limit
        #: platform-side tracer shared with the harness (None: no tracing)
        self.tracer = tracer
        #: where this run's spans start in a (possibly shared) tracer
        self._span_mark = tracer.mark() if tracer is not None else 0
        self.progress = progress or ProgressLine()
        self.log_events = log_events
        #: memoize injection points against the warm snapshot (see
        #: AttackHarness.cached_injection); later passes of a hunt restore
        #: the cached branch snapshot instead of re-seeking
        self.injection_cache = injection_cache
        #: byte budget (a :class:`~repro.store.budget.SnapshotBudget`)
        #: bounding the injection-point snapshot cache; None = unbounded
        self.snapshot_budget = snapshot_budget
        #: keep the booted testbed across run() calls instead of re-booting
        #: every pass — the enabler for cross-pass injection-cache hits
        self.reuse_testbed = reuse_testbed
        self.ledger = ledger if ledger is not None else CostLedger()
        #: crashed nodes observed during this pass: name -> summary line
        self._crashed_seen: dict = {}
        self.harness = self._fresh_harness()
        self.supervisor = ScenarioSupervisor(self.ledger,
                                             max_retries=max_retries)
        #: the in-progress (or last finished) report — lets a caller print
        #: partial results after a KeyboardInterrupt
        self.report: Optional[SearchReport] = None

    # --------------------------------------------------------------- helpers

    def _fresh_harness(self) -> AttackHarness:
        return AttackHarness(self.factory, self.seed, self.threshold,
                             shared_pages=self.shared_pages,
                             delta_snapshots=self.delta_snapshots,
                             ledger=self.ledger,
                             fault_plan=self.fault_plan,
                             fault_schedule=self.fault_schedule,
                             watchdog_limit=self.watchdog_limit,
                             tracer=self.tracer,
                             log_events=self.log_events,
                             injection_cache=self.injection_cache,
                             snapshot_budget=self.snapshot_budget)

    def _note_crashes(self) -> None:
        """Record every currently crashed node (with its cause) so the
        report can surface a hunt that silently lost a replica."""
        instance = self.harness.instance
        if instance is None:
            return
        for line in instance.world.crashed_node_summaries():
            name = line.split(" ", 1)[0]
            self._crashed_seen[name] = line

    def _span(self, name: str, **args):
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer.span(name, **args)
        return NULL_SPAN

    def _progress_tick(self) -> None:
        """Refresh the live status line (no-op unless progress is enabled)."""
        progress = self.progress
        if not progress.enabled:
            return
        report = self.report
        evaluated = report.scenarios_evaluated if report is not None else 0
        found = len(report.findings) if report is not None else 0
        stats = self.supervisor.stats
        total = self.ledger.total()
        share = self.ledger.snapshot_total() / total if total else 0.0
        text = (f"{evaluated} scenarios · {found} attacks · "
                f"{stats.retries} retries · {stats.quarantines} quarantined"
                f" · snapshots {share:.0%} of platform time")
        progress.update(text)

    def _make_report(self) -> SearchReport:
        instance = self.harness.instance
        system = instance.name if instance is not None else "unknown"
        report = SearchReport(self.name, system, ledger=self.ledger)
        self._crashed_seen = {}
        self.report = report
        return report

    def _finalize_report(self, report: SearchReport) -> SearchReport:
        self._note_crashes()
        report.crashed_nodes = sorted(self._crashed_seen.values())
        report.supervisor.merge(self.supervisor.stats)
        self.supervisor.stats = type(self.supervisor.stats)()
        if self.tracer is not None and self.tracer.enabled:
            world = (self.harness.instance.world
                     if self.harness.instance is not None else None)
            report.telemetry = summarize(
                self.tracer,
                world.instruments if world is not None else None,
                since=self._span_mark)
        return report

    def _space(self) -> ActionSpace:
        return ActionSpace(self.harness.instance.schema, self.space_config)

    def _search_types(self,
                      message_types: Optional[Sequence[str]]) -> List[str]:
        if message_types is not None:
            return list(message_types)
        return self.harness.instance.search_types()

    @staticmethod
    def _exclude_key(scenario: AttackScenario) -> tuple:
        return scenario.to_record()

    # ------------------------------------------------------ supervised plane

    def _start_run(self) -> None:
        """Boot (or re-boot) the testbed under supervision.

        With ``reuse_testbed`` a warm testbed from a previous run() is kept
        alive: later hunt passes skip boot+warmup entirely and their
        injection-point cache entries stay valid.
        """
        if (self.reuse_testbed and self.harness.instance is not None
                and self.harness.warm_snapshot is not None):
            return
        self.supervisor.run("start_run", self.harness.start_run)

    def _rebuild_testbed(self) -> None:
        """Replace the testbed with a fresh build of the same factory+seed.

        All platform time the rebuild consumes (boot, warmup execution,
        warm snapshot) is reattributed to the ledger's ``rebuild`` category
        via a temporary sub-ledger.
        """
        sub = CostLedger()
        self.harness.ledger = sub
        try:
            self.harness.start_run()
        finally:
            self.harness.ledger = self.ledger
            self.ledger.charge(REBUILD, sub.total())

    def _seek_injection(self, message_type: str) -> Optional[InjectionPoint]:
        """Rewind to the warm state and run until the type is intercepted.

        A cached injection point (``injection_cache``) skips the rewind and
        the seek entirely: ``branch_measure`` restores the cached branch
        snapshot itself, so no execution or snapshot time is re-charged.
        """
        cached = self.harness.cached_injection(message_type)
        if cached is not None:
            return cached
        # A budget-evicted entry is a *capacity* miss: rebuild it from the
        # warm state with every charge routed to the budget's side-channel
        # ledger, so the report ledger matches an unbudgeted run's exactly.
        rebuilt = self.harness.rebuild_injection(message_type,
                                                 max_wait=self.max_wait)
        if rebuilt is not None:
            return rebuilt
        self.harness.restore(self.harness.warm_snapshot)
        self.harness.proxy.clear_policy()
        return self.harness.run_to_injection(message_type,
                                             max_wait=self.max_wait)

    def _acquire_context(self, message_type: str) -> Optional[TypeContext]:
        """Supervised injection-seek plus baseline branch.

        Returns None when the type never appears within ``max_wait`` (an
        honest no-injection-point outcome, charged as wasted execution).
        Raises :class:`ScenarioQuarantined` when persistent platform faults
        prevented the platform from even finding out.
        """
        def attempt() -> Optional[TypeContext]:
            injection = self._seek_injection(message_type)
            if injection is None:
                return None
            baseline = self.harness.branch_measure(injection, None)
            return TypeContext(message_type, injection, baseline)

        result = self.supervisor.run(f"injection:{message_type}", attempt,
                                     rebuild=self._rebuild_testbed,
                                     scenario=message_type)
        self._note_crashes()
        self._progress_tick()
        return result

    def _refresh_context(self, ctx: TypeContext) -> None:
        """Re-acquire a context after the testbed was rebuilt."""
        injection = self._seek_injection(ctx.message_type)
        if injection is None:
            # Deterministic worlds reproduce their injection points; losing
            # one after a rebuild is itself a (transient) platform anomaly.
            raise ProxyError(
                f"injection point for {ctx.message_type} lost after rebuild")
        ctx.injection = injection
        ctx.baseline = self.harness.branch_measure(injection, None)
        ctx.stale = False

    def _measure_action(self, ctx: TypeContext,
                        action: Optional[MaliciousAction]) -> PerfSample:
        """Supervised branch-measure of one action against ``ctx``.

        Transparently re-acquires the injection point and baseline when a
        retry rebuilt the testbed.  Raises :class:`ScenarioQuarantined`
        after persistent failures.
        """
        def attempt() -> PerfSample:
            if ctx.stale:
                self._refresh_context(ctx)
            return self.harness.branch_measure(ctx.injection, action)

        def rebuild() -> None:
            self._rebuild_testbed()
            ctx.stale = True

        label = (f"{ctx.message_type}"
                 if action is None
                 else f"{action.describe()} {ctx.message_type}")
        with self._span("search.scenario", message_type=ctx.message_type,
                        scenario=label) as span:
            sample = self.supervisor.run(f"branch:{ctx.message_type}",
                                         attempt, rebuild=rebuild,
                                         scenario=label)
            span.set(throughput=sample.throughput,
                     crashed=sample.crashed_nodes)
        self._note_crashes()
        self._progress_tick()
        return sample

    @staticmethod
    def _quarantine_entry(quarantined: ScenarioQuarantined,
                          message_type: str,
                          action: Optional[MaliciousAction]
                          ) -> QuarantinedScenario:
        return QuarantinedScenario(
            message_type,
            None if action is None else action.to_record(),
            reason=str(quarantined.cause),
            attempts=quarantined.attempts)

    # ------------------------------------------------- legacy direct helpers

    def _injection_for(self, message_type: str) -> Optional[InjectionPoint]:
        return self._seek_injection(message_type)

    def _evaluate(self, injection: InjectionPoint,
                  action: Optional[MaliciousAction]) -> PerfSample:
        return self.harness.branch_measure(injection, action)

    # ------------------------------------------------------------------ run

    def _begin_run(self) -> None:
        """Reset per-run state before a pass starts.

        Two leaks this guards against:

        * a pass aborted mid-run (KeyboardInterrupt, quarantine storm)
          would otherwise carry its retry/quarantine counters into the
          next pass's report, double-counting them — ``supervisor.stats``
          used to be reset only in :meth:`_finalize_report`;
        * with ``reuse_testbed`` the same search instance runs several
          passes, so each run needs a fresh ledger (rebound on the harness
          and supervisor) and its own span mark.
        """
        if self.ledger.by_category:
            self.ledger = CostLedger()
            self.harness.ledger = self.ledger
            self.supervisor.ledger = self.ledger
        self.supervisor.stats = type(self.supervisor.stats)()
        if self.tracer is not None:
            self._span_mark = self.tracer.mark()

    def run(self, message_types: Optional[Sequence[str]] = None,
            exclude: Optional[Set[tuple]] = None,
            **kwargs) -> SearchReport:
        """Template method: one ``search.pass`` span around the algorithm.

        Subclasses implement :meth:`_run_pass`; the wrapper exists so every
        algorithm gets the same span (and its summary args) for free.
        """
        self._begin_run()
        with self._span("search.pass", algorithm=self.name) as span:
            report = self._run_pass(message_types=message_types,
                                    exclude=exclude, **kwargs)
            span.set(findings=len(report.findings),
                     scenarios=report.scenarios_evaluated)
        # Re-summarize now that the pass span itself has closed, so the
        # report's telemetry includes it.
        return self._finalize_report(report)

    def _run_pass(self, message_types: Optional[Sequence[str]] = None,
                  exclude: Optional[Set[tuple]] = None,
                  **kwargs) -> SearchReport:
        raise NotImplementedError
