"""Shared infrastructure: errors, deterministic RNG, ids, units, logging."""

from repro.common.errors import (AssertionViolation, CodecError, ConfigError,
                                 NetworkError, ProxyError, SchemaParseError,
                                 SearchError, SegmentationFault,
                                 SimulationError, SnapshotError,
                                 TargetSystemFault, TransportError,
                                 TurretError, WireFormatError)
from repro.common.ids import FlowId, NodeId, client, replica
from repro.common.logging import EventLog, LogRecord
from repro.common.rng import RandomStream, RngRegistry, derive_seed
from repro.common.units import (GIB, KIB, MIB, PAGE_SIZE, mbit_per_sec,
                                micros, millis, pages_for)

__all__ = [
    "AssertionViolation", "CodecError", "ConfigError", "NetworkError",
    "ProxyError", "SchemaParseError", "SearchError", "SegmentationFault",
    "SimulationError", "SnapshotError", "TargetSystemFault", "TransportError",
    "TurretError", "WireFormatError", "FlowId", "NodeId", "client", "replica",
    "EventLog", "LogRecord", "RandomStream", "RngRegistry", "derive_seed",
    "GIB", "KIB", "MIB", "PAGE_SIZE", "mbit_per_sec", "micros", "millis",
    "pages_for",
]
