"""Fig. 5 — PBFT throughput under the discovered attacks.

(a) benign vs Delay Pre-Prepare (0.5 s / 1 s) vs Drop Pre-Prepare (50% /
    100%): delaying below the view-change timeout starves the system
    (158.3 -> 1.08 upd/s in the paper); dropping 100% is *recovered* by a
    view change while dropping 50% is not (4.95 upd/s).
(b) Delay Status 1 s: stale status messages trigger retransmission storms
    (158.3 -> 131 upd/s).
(c) Duplication x50 of Pre-Prepare / Prepare / Commit / Status
    (37.9 / 36.8 / 43.1 / 126.3 upd/s).
"""

import pytest

from repro.attacks.actions import DelayAction, DropAction, DuplicateAction
from repro.controller.harness import AttackHarness
from repro.systems.pbft.testbed import pbft_testbed

from reporting import report, run_once

WINDOW = 6.0
SEED = 1


def run_policy(malicious, mtype, action, window=WINDOW):
    harness = AttackHarness(
        pbft_testbed(malicious=malicious, warmup=3.0, window=window),
        seed=SEED)
    instance = harness.start_run(take_warm_snapshot=False)
    if mtype is not None:
        instance.proxy.set_policy(mtype, action)
    sample = harness.measure_window(window)
    return sample, harness


@pytest.mark.benchmark(group="fig5")
def test_fig5a_preprepare_attacks(benchmark):
    def run():
        out = {}
        out["benign"], __ = run_policy("primary", None, None)
        out["delay 0.5s"], __ = run_policy("primary", "PrePrepare",
                                           DelayAction(0.5))
        out["delay 1s"], __ = run_policy("primary", "PrePrepare",
                                         DelayAction(1.0))
        out["drop 50%"], __ = run_policy("primary", "PrePrepare",
                                         DropAction(0.5))
        # drop 100%: measure the window *after* the view change recovers
        __, harness = run_policy("primary", "PrePrepare", DropAction(1.0),
                                 window=7.0)
        out["drop 100% (recovered)"] = harness.measure_window(4.0)
        return out

    out = run_once(benchmark, run)
    paper = {"benign": "158.3", "delay 0.5s": "~2", "delay 1s": "1.08",
             "drop 50%": "4.95", "drop 100% (recovered)": "recovers"}
    report("FIG5(a): PBFT throughput under Pre-Prepare attacks (upd/s)",
           ["scenario", "measured", "paper"],
           [[k, f"{s.throughput:.2f}", paper[k]] for k, s in out.items()])

    benign = out["benign"].throughput
    assert benign > 100                                   # paper 158.3
    assert out["delay 1s"].throughput < 2.0               # paper 1.08
    assert out["delay 0.5s"].throughput < 4.0
    assert out["drop 50%"].throughput < benign * 0.08     # paper 4.95/158
    # the crossover: total drop recovers via view change, 50% does not
    assert out["drop 100% (recovered)"].throughput > \
        out["drop 50%"].throughput * 5


@pytest.mark.benchmark(group="fig5")
def test_fig5b_delay_status(benchmark):
    def run():
        benign, __ = run_policy("backup", None, None)
        attacked, harness = run_policy("backup", "Status", DelayAction(1.0))
        from repro.common.ids import replica
        retrans = sum(
            harness.world.app(replica(i)).retransmissions_sent
            for i in (0, 2, 3))
        return benign, attacked, retrans

    benign, attacked, retrans = run_once(benchmark, run)
    report("FIG5(b): PBFT throughput under Delay Status 1s (upd/s)",
           ["scenario", "measured", "paper"],
           [["benign", f"{benign.throughput:.2f}", "158.3"],
            ["delay Status 1s", f"{attacked.throughput:.2f}", "131"],
            ["retransmissions", retrans, "(storm)"]])
    # a mild-but-real degradation driven by retransmission storms
    loss = 1 - attacked.throughput / benign.throughput
    assert 0.05 < loss < 0.35        # paper: 17%
    assert retrans > 100


@pytest.mark.benchmark(group="fig5")
def test_fig5c_duplication(benchmark):
    cases = [("PrePrepare", "primary", "37.9"),
             ("Prepare", "backup", "36.8"),
             ("Commit", "backup", "43.1"),
             ("Status", "backup", "126.3")]

    def run():
        benign, __ = run_policy("primary", None, None)
        out = {"benign": benign}
        for mtype, malicious, __paper in cases:
            out[mtype], __ = run_policy(malicious, mtype,
                                        DuplicateAction(50))
        return out

    out = run_once(benchmark, run)
    rows = [["benign", f"{out['benign'].throughput:.2f}", "158.3"]]
    rows += [[f"dup {m} x50", f"{out[m].throughput:.2f}", p]
             for m, __, p in cases]
    report("FIG5(c): PBFT throughput under duplication x50 (upd/s)",
           ["scenario", "measured", "paper"], rows)

    benign = out["benign"].throughput
    # consensus-message duplication is devastating (~4x loss in the paper)
    for mtype in ("PrePrepare", "Prepare", "Commit"):
        assert out[mtype].throughput < benign * 0.45
    # periodic Status duplication hurts far less (126.3/158.3 in the paper)
    assert out["Status"].throughput > benign * 0.75
    assert out["Status"].throughput > out["PrePrepare"].throughput * 2
