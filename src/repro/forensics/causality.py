"""Causal message tracing: the emulator tap and the happens-before graph.

The network emulator and each node expose a handful of lineage hooks (see
``NetworkEmulator.causal_tap``): every send records which message's handler
induced it, every egress/delivery/handler invocation is timestamped with
virtual time, and the malicious proxy annotates the actions it applied.
:class:`CausalRecorder` implements that tap interface and accumulates one
execution's chronology; :class:`CausalGraph` turns it into a cross-node
happens-before graph (message → messages its handler induced).

The tap is pure bookkeeping: it draws no randomness, schedules nothing,
and is never serialized with world state — attaching it cannot perturb
the deterministic execution it observes, and when it is absent (the
default) every hook site is a single attribute test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Callable, Dict, List, Optional

from repro.netem.packets import MessageEnvelope

#: chronology event kinds, in the order one message moves through them
SEND = "send"         # transmit() saw the message (pre-proxy intent)
EGRESS = "egress"     # the message was submitted to leave its host
DELIVER = "deliver"   # the reassembled message reached its destination
HANDLE = "handle"     # a node's application handler ran for the message


def payload_digest(payload: bytes) -> str:
    """Short stable content digest used to detect mutated messages."""
    return blake2b(payload, digest_size=8).hexdigest()


@dataclass(frozen=True)
class CausalEvent:
    """One step of one message's life, with its virtual timestamp."""

    kind: str
    time: float
    msg_seq: int
    src: str
    dst: str
    message_type: str
    digest: str

    def identity(self) -> tuple:
        """Full alignment key: everything but the timestamp."""
        return (self.kind, self.msg_seq, self.src, self.dst,
                self.message_type, self.digest)

    def loose_identity(self) -> tuple:
        """Alignment key ignoring content — matches mutated payloads."""
        return (self.kind, self.msg_seq, self.src, self.dst,
                self.message_type)

    def describe(self) -> str:
        where = self.src if self.kind in (SEND, EGRESS) else self.dst
        return (f"{self.message_type} (seq {self.msg_seq}) "
                f"{self.kind} at {where} t={self.time:.4f}")


@dataclass(frozen=True)
class CausalEdge:
    """Happens-before: ``parent_seq``'s handler induced ``child_seq``."""

    parent_seq: int
    child_seq: int
    node: str          # where the inducing handler ran


class CausalRecorder:
    """Implements the emulator's causal-tap interface for one execution.

    Attach with ``emulator.causal_tap = recorder`` and detach by setting
    it back to None; the recorder needs the world codec (to name message
    types) and a virtual-clock callable.
    """

    def __init__(self, codec, clock: Callable[[], float]) -> None:
        self.codec = codec
        self.clock = clock
        self.events: List[CausalEvent] = []
        self.edges: List[CausalEdge] = []
        #: proxy action annotations: msg_seq -> descriptions, in order
        self.proxy_notes: Dict[int, List[str]] = {}
        #: interceptor verdict observed at send time: msg_seq -> kind
        self.verdicts: Dict[int, str] = {}
        #: node whose handler is currently running (edge attribution)
        self._handling_node: str = "?"

    # ------------------------------------------------------------- tap hooks

    def _type_name(self, payload: bytes) -> str:
        spec = self.codec.peek_type(payload)
        return spec.name if spec is not None else "?"

    def _record(self, kind: str, envelope: MessageEnvelope,
                time: Optional[float] = None) -> None:
        self.events.append(CausalEvent(
            kind, self.clock() if time is None else time, envelope.msg_seq,
            str(envelope.src), str(envelope.dst),
            self._type_name(envelope.payload),
            payload_digest(envelope.payload)))

    def on_send(self, envelope: MessageEnvelope, cause: Optional[int],
                verdict_kind: str) -> None:
        self._record(SEND, envelope)
        self.verdicts[envelope.msg_seq] = verdict_kind
        if cause is not None:
            self.edges.append(CausalEdge(cause, envelope.msg_seq,
                                         self._handling_node))

    def on_egress(self, envelope: MessageEnvelope, delay: float,
                  via_device: bool) -> None:
        # Timestamp with the *effective* egress time: a proxy delay action
        # shifts this, which is exactly the divergence it introduces.
        self._record(EGRESS, envelope, time=self.clock() + delay)

    def on_deliver(self, envelope: MessageEnvelope) -> None:
        self._record(DELIVER, envelope)

    def on_handle(self, cause: Optional[int], node_id, type_name: str) -> None:
        self._handling_node = str(node_id)
        if cause is None:
            return
        self.events.append(CausalEvent(
            HANDLE, self.clock(), cause, "", str(node_id), type_name, ""))

    def on_release(self, envelope: MessageEnvelope, deliveries) -> None:
        copies = "pass" if deliveries is None else str(len(deliveries))
        self.proxy_notes.setdefault(envelope.msg_seq, []).append(
            f"released:{copies}")

    def on_proxy(self, msg_seq: int, description: str) -> None:
        self.proxy_notes.setdefault(msg_seq, []).append(description)

    # --------------------------------------------------------------- queries

    def deliveries(self) -> List[CausalEvent]:
        return [e for e in self.events if e.kind == DELIVER]

    def graph(self) -> "CausalGraph":
        return CausalGraph.from_recorder(self)


@dataclass
class CausalGraph:
    """Cross-node happens-before graph over one execution's messages."""

    #: msg_seq -> first event observed for that message (its birth)
    messages: Dict[int, CausalEvent] = field(default_factory=dict)
    #: msg_seq -> sequences its handler induced, in send order
    children: Dict[int, List[int]] = field(default_factory=dict)
    edges: List[CausalEdge] = field(default_factory=list)
    proxy_notes: Dict[int, List[str]] = field(default_factory=dict)

    @classmethod
    def from_recorder(cls, recorder: CausalRecorder) -> "CausalGraph":
        graph = cls(edges=list(recorder.edges),
                    proxy_notes={k: list(v)
                                 for k, v in recorder.proxy_notes.items()})
        for event in recorder.events:
            graph.messages.setdefault(event.msg_seq, event)
        for edge in recorder.edges:
            graph.children.setdefault(edge.parent_seq, []).append(
                edge.child_seq)
        return graph

    def descendants(self, msg_seq: int) -> List[int]:
        """Every message transitively induced by ``msg_seq``, in BFS order."""
        seen = set()
        order: List[int] = []
        frontier = list(self.children.get(msg_seq, ()))
        while frontier:
            seq = frontier.pop(0)
            if seq in seen:
                continue
            seen.add(seq)
            order.append(seq)
            frontier.extend(self.children.get(seq, ()))
        return order

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    @property
    def message_count(self) -> int:
        return len(self.messages)
