"""Shared configuration for the BFT systems under test."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class BftConfig:
    """Sizing and timing of one BFT deployment.

    The defaults mirror the paper's evaluation: f = 1 (4 replicas), one
    closed-loop client, recovery timers of 5 seconds ("the systems we tested
    had timers of 5 seconds to start their recovery protocols"), and digital
    signature verification off ("in order to explore lying attacks ... we
    turn off the verification of digital signatures").
    """

    f: int = 1
    clients: int = 1
    verify_signatures: bool = False
    #: client retransmits an unanswered request after this many seconds
    client_retry: float = 0.15
    #: replica progress timer before starting the recovery protocol
    recovery_timeout: float = 5.0
    #: period of the status/keepalive protocol
    status_interval: float = 0.5
    #: executions between checkpoints
    checkpoint_interval: int = 256
    #: most missing sequence numbers a status reply will retransmit
    retransmit_window: int = 400

    def __post_init__(self) -> None:
        if self.f < 1:
            raise ConfigError("f must be at least 1")
        if self.clients < 1:
            raise ConfigError("need at least one client")

    @property
    def n(self) -> int:
        """Replica count for the classic 3f+1 bound."""
        return 3 * self.f + 1

    @property
    def quorum(self) -> int:
        """2f+1, the intersection quorum."""
        return 2 * self.f + 1

    @property
    def prepared_quorum(self) -> int:
        """2f matching prepares (plus the pre-prepare) prove preparedness."""
        return 2 * self.f

    @property
    def reply_quorum(self) -> int:
        """f+1 matching replies convince a client."""
        return self.f + 1
