"""Tests for guest memory and the OS image page model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SnapshotError
from repro.common.units import PAGE_SIZE
from repro.vm.memory import GuestMemory, OsImage, synthetic_digest


class TestOsImage:
    def test_default_split(self):
        image = OsImage()
        assert image.shared_pages == 48 * 256
        assert image.unique_pages == 58 * 256

    def test_synthetic_digest_deterministic(self):
        assert synthetic_digest("img", 3) == synthetic_digest("img", 3)
        assert synthetic_digest("img", 3) != synthetic_digest("img", 4)
        assert synthetic_digest("a", 3) != synthetic_digest("b", 3)


class TestPagePopulation:
    def test_os_pages_resident_after_boot(self):
        image = OsImage(resident_mb=1, unique_mb=1)
        mem = GuestMemory("vm0", image)
        assert mem.resident_pages() == image.shared_pages + image.unique_pages

    def test_shared_pages_identical_across_vms(self):
        image = OsImage(resident_mb=1, unique_mb=1)
        a = GuestMemory("vm0", image)
        b = GuestMemory("vm1", image)
        for pfn in range(image.shared_pages):
            assert a.page(pfn).digest == b.page(pfn).digest

    def test_unique_pages_differ_across_vms(self):
        image = OsImage(resident_mb=1, unique_mb=1)
        a = GuestMemory("vm0", image)
        b = GuestMemory("vm1", image)
        pfn = image.shared_pages  # first unique page
        assert a.page(pfn).digest != b.page(pfn).digest

    def test_missing_page_raises(self):
        mem = GuestMemory("vm0", OsImage(resident_mb=1, unique_mb=1))
        with pytest.raises(SnapshotError):
            mem.page(10 ** 9)


class TestAppState:
    def _mem(self):
        return GuestMemory("vm0", OsImage(resident_mb=1, unique_mb=1))

    def test_write_read_roundtrip(self):
        mem = self._mem()
        blob = b"state" * 1000
        mem.write_app_state(blob)
        padded = mem.read_app_state()
        assert padded[:len(blob)] == blob
        assert len(padded) % PAGE_SIZE == 0

    def test_page_count_matches_blob(self):
        mem = self._mem()
        mem.write_app_state(b"x" * (PAGE_SIZE * 2 + 1))
        assert mem.app_page_count() == 3

    def test_shrinking_state_releases_pages(self):
        mem = self._mem()
        mem.write_app_state(b"x" * (PAGE_SIZE * 5))
        before = mem.resident_pages()
        mem.write_app_state(b"x" * PAGE_SIZE)
        assert mem.resident_pages() == before - 4
        assert mem.app_page_count() == 1

    def test_rewrite_marks_dirty_only_changed_pages(self):
        mem = self._mem()
        blob = b"a" * PAGE_SIZE + b"b" * PAGE_SIZE
        mem.write_app_state(blob)
        mem.clear_dirty()
        mem.write_app_state(b"a" * PAGE_SIZE + b"c" * PAGE_SIZE)
        assert len(mem.dirty_pfns()) == 1

    def test_empty_state(self):
        mem = self._mem()
        mem.write_app_state(b"")
        assert mem.app_page_count() == 0
        assert mem.read_app_state() == b""

    @settings(max_examples=30)
    @given(st.binary(min_size=1, max_size=3 * PAGE_SIZE))
    def test_roundtrip_property(self, blob):
        mem = GuestMemory("vmX", OsImage(resident_mb=1, unique_mb=1))
        mem.write_app_state(blob)
        assert mem.read_app_state()[:len(blob)] == blob


class TestDirtyTracking:
    def test_touch_marks_dirty(self):
        mem = GuestMemory("vm0", OsImage(resident_mb=1, unique_mb=1))
        mem.clear_dirty()
        mem.touch(0)
        assert 0 in mem.dirty_pfns()

    def test_touch_nonresident_ignored(self):
        mem = GuestMemory("vm0", OsImage(resident_mb=1, unique_mb=1))
        mem.clear_dirty()
        mem.touch(10 ** 9)
        assert mem.dirty_pfns() == set()


class TestExportLoad:
    def test_export_load_roundtrip(self):
        mem = GuestMemory("vm0", OsImage(resident_mb=1, unique_mb=1))
        mem.write_app_state(b"hello" * 500)
        pages, app_count = mem.export_pages()
        other = GuestMemory("vm0", OsImage(resident_mb=1, unique_mb=1))
        other.load_pages(pages, app_count)
        assert other.read_app_state() == mem.read_app_state()
        assert other.resident_pages() == mem.resident_pages()
