"""Tests for the binary message codec, including property-based round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CodecError
from repro.wire.codec import Message, ProtocolCodec
from repro.wire.schema import make_message, ProtocolSchema
from repro.wire.types import SCALAR_TYPES

SCHEMA = ProtocolSchema("t", (
    make_message("Kitchen", 1, [
        ("flag", "bool"), ("tiny", "i8"), ("little", "u8"),
        ("short", "i16"), ("ushort", "u16"), ("word", "i32"),
        ("uword", "u32"), ("big", "i64"), ("ubig", "u64"),
        ("ratio", "f32"), ("precise", "f64"),
        ("mac", "bytes[4]"), ("blob", "varbytes<u16>"),
    ]),
    make_message("Tiny", 2, [("x", "u8")]),
    make_message("NoFields", 3, []),
))
CODEC = ProtocolCodec(SCHEMA)


def kitchen(**overrides):
    values = SCHEMA.message_named("Kitchen").default_values()
    values["mac"] = b"abcd"
    values.update(overrides)
    return Message("Kitchen", values)


class TestEncodeDecode:
    def test_roundtrip_defaults(self):
        msg = kitchen()
        assert CODEC.decode(CODEC.encode(msg)).fields == msg.fields

    def test_roundtrip_extremes(self):
        msg = kitchen(tiny=-128, little=255, short=-32768, ushort=65535,
                      word=-2**31, uword=2**32 - 1, big=-2**63,
                      ubig=2**64 - 1, flag=True, blob=b"x" * 1000)
        decoded = CODEC.decode(CODEC.encode(msg))
        assert decoded.fields == msg.fields

    def test_no_fields_message(self):
        msg = Message("NoFields", {})
        encoded = CODEC.encode(msg)
        assert len(encoded) == 2  # just the type tag
        assert CODEC.decode(encoded).type_name == "NoFields"

    def test_peek_type(self):
        encoded = CODEC.encode(Message("Tiny", {"x": 9}))
        assert CODEC.peek_type(encoded).name == "Tiny"

    def test_peek_unknown_type(self):
        assert CODEC.peek_type(b"\xff\xff rest") is None

    def test_peek_truncated(self):
        assert CODEC.peek_type(b"\x01") is None

    def test_missing_field_raises(self):
        with pytest.raises(CodecError):
            CODEC.encode(Message("Tiny", {}))

    def test_wrong_bytes_length_raises(self):
        with pytest.raises(CodecError):
            CODEC.encode(kitchen(mac=b"abc"))

    def test_varbytes_type_check(self):
        with pytest.raises(CodecError):
            CODEC.encode(kitchen(blob="not-bytes"))

    def test_trailing_bytes_raise(self):
        encoded = CODEC.encode(Message("Tiny", {"x": 1})) + b"\x00"
        with pytest.raises(CodecError):
            CODEC.decode(encoded)

    def test_truncated_raises(self):
        encoded = CODEC.encode(kitchen())
        with pytest.raises(CodecError):
            CODEC.decode(encoded[:-3])

    def test_unknown_type_raises(self):
        with pytest.raises(CodecError):
            CODEC.decode(b"\x63\x00")

    def test_varbytes_over_length_prefix(self):
        with pytest.raises(CodecError):
            CODEC.encode(kitchen(blob=b"x" * 70000))


class TestMutate:
    def test_mutate_scalar(self):
        encoded = CODEC.encode(kitchen(word=10))
        mutated = CODEC.mutate(encoded, "word", -5)
        assert CODEC.decode(mutated)["word"] == -5

    def test_mutate_wraps_like_c(self):
        encoded = CODEC.encode(kitchen())
        mutated = CODEC.mutate(encoded, "little", 300)
        assert CODEC.decode(mutated)["little"] == 44

    def test_mutate_preserves_other_fields(self):
        msg = kitchen(blob=b"payload", big=77)
        mutated = CODEC.decode(CODEC.mutate(CODEC.encode(msg), "word", 1))
        assert mutated["blob"] == b"payload"
        assert mutated["big"] == 77

    def test_mutate_non_scalar_rejected(self):
        with pytest.raises(CodecError):
            CODEC.mutate(CODEC.encode(kitchen()), "mac", 1)

    def test_mutate_unknown_field_rejected(self):
        with pytest.raises(Exception):
            CODEC.mutate(CODEC.encode(kitchen()), "nope", 1)


def _value_for(label):
    t = SCALAR_TYPES.get(label)
    if label == "bool":
        return st.booleans()
    if t is not None and t.is_integer:
        return st.integers(min_value=int(t.min_value),
                           max_value=int(t.max_value))
    if label == "f32":
        return st.floats(width=32, allow_nan=False)
    return st.floats(allow_nan=False)


@st.composite
def kitchen_messages(draw):
    values = {}
    for f in SCHEMA.message_named("Kitchen").fields:
        if f.kind == "scalar":
            values[f.name] = draw(_value_for(f.scalar.name))
        elif f.kind == "bytes":
            values[f.name] = draw(st.binary(min_size=f.fixed_len,
                                            max_size=f.fixed_len))
        else:
            values[f.name] = draw(st.binary(max_size=200))
    return Message("Kitchen", values)


class TestPropertyRoundTrip:
    @settings(max_examples=200)
    @given(kitchen_messages())
    def test_encode_decode_identity(self, msg):
        decoded = CODEC.decode(CODEC.encode(msg))
        assert decoded.type_name == msg.type_name
        for name, value in msg.fields.items():
            if isinstance(value, float):
                assert decoded[name] == pytest.approx(value, rel=1e-6) or \
                    decoded[name] == value
            else:
                assert decoded[name] == value

    @given(kitchen_messages(), st.integers(min_value=-2**70, max_value=2**70))
    def test_mutation_always_decodable(self, msg, lie):
        encoded = CODEC.encode(msg)
        mutated = CODEC.mutate(encoded, "word", lie)
        decoded = CODEC.decode(mutated)
        assert -2**31 <= decoded["word"] <= 2**31 - 1
