"""Parallel hunt execution: shard, record, merge deterministically."""

from repro.parallel.executor import ScenarioExecutor
from repro.parallel.health import (HealthMonitor, HealthPolicy, WorkerHealth,
                                   WorkerHealthReport)
from repro.parallel.merge import merge_brute, merge_greedy, merge_weighted
from repro.parallel.recording import (RecordingLedger, RecordingSupervisor,
                                      StepRecorder, StepTrace)
from repro.parallel.worker import ProbeParams, WorkerProber

__all__ = [
    "ScenarioExecutor",
    "HealthMonitor",
    "HealthPolicy",
    "WorkerHealth",
    "WorkerHealthReport",
    "ProbeParams",
    "WorkerProber",
    "RecordingLedger",
    "RecordingSupervisor",
    "StepRecorder",
    "StepTrace",
    "merge_brute",
    "merge_greedy",
    "merge_weighted",
]
