"""Zyzzyva — speculative BFT (target system, Section V-C)."""

from repro.systems.zyzzyva.client import ZyzzyvaClient
from repro.systems.zyzzyva.replica import ZyzzyvaReplica
from repro.systems.zyzzyva.schema import (ZYZZYVA_CODEC, ZYZZYVA_SCHEMA,
                                          ZYZZYVA_SCHEMA_TEXT)
from repro.systems.zyzzyva.testbed import (ZYZZYVA_ACTIVE_TYPES,
                                           zyzzyva_testbed)

__all__ = ["ZyzzyvaClient", "ZyzzyvaReplica", "ZYZZYVA_CODEC",
           "ZYZZYVA_SCHEMA", "ZYZZYVA_SCHEMA_TEXT", "ZYZZYVA_ACTIVE_TYPES",
           "zyzzyva_testbed"]
