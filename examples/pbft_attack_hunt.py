#!/usr/bin/env python3
"""Exhaustive attack hunt against PBFT — the paper's case study (Sec. V-B).

Repeats the weighted-greedy search the way the paper describes its use:
"the user will repeat the attack finding process again after finding the
strongest attack — until the method does not find any more attacks."  Each
pass excludes everything already found; the hunt covers both the
malicious-primary and malicious-backup configurations plus the 7-replica
view-change configuration.

Run:  python examples/pbft_attack_hunt.py          (takes a few minutes)
      python examples/pbft_attack_hunt.py --fast   (trimmed action space)
"""

import sys

from repro.attacks.space import ActionSpaceConfig
from repro.controller.monitor import AttackThreshold
from repro.search import WeightedGreedySearch
from repro.systems.pbft import pbft_testbed, pbft_view_change_testbed

PASSES = 3


def hunt(name, factory, message_types, space, threshold):
    """Run weighted-greedy passes until no new attacks appear."""
    found = []
    exclude = set()
    for pass_no in range(1, PASSES + 1):
        search = WeightedGreedySearch(factory, seed=11, threshold=threshold,
                                      space_config=space)
        report = search.run(message_types=message_types, exclude=exclude)
        if not report.findings:
            break
        for finding in report.findings:
            exclude.add(finding.scenario.to_record())
            found.append((pass_no, finding))
        print(f"  pass {pass_no}: "
              f"{', '.join(f.name for f in report.findings)} "
              f"(platform time {report.total_time:.0f}s)")
    return found


def main() -> None:
    fast = "--fast" in sys.argv
    space = ActionSpaceConfig(
        delays=(1.0,) if fast else (0.5, 1.0),
        drop_probabilities=(0.5, 1.0),
        duplicate_counts=(50,) if fast else (2, 50),
        include_divert=not fast,
        include_lying=True)
    threshold = AttackThreshold(delta=0.08)

    campaigns = [
        ("malicious primary", pbft_testbed("primary", warmup=2.0, window=3.0),
         ["PrePrepare"]),
        ("malicious backup", pbft_testbed("backup", warmup=2.0, window=3.0),
         ["Status", "Prepare", "Commit"]),
        ("view change (7 replicas)",
         pbft_view_change_testbed(warmup=2.0, window=3.0), ["ViewChange"]),
    ]

    all_found = []
    for name, factory, types in campaigns:
        print(f"\n=== {name}: searching {types} ===")
        all_found += hunt(name, factory, types, space, threshold)

    print(f"\n{'=' * 60}\nTotal attacks found: {len(all_found)}")
    for pass_no, finding in all_found:
        kind = "CRASH" if finding.is_crash_attack else "PERF "
        print(f"  [{kind}] {finding.name}  "
              f"({finding.baseline.throughput:.1f} -> "
              f"{finding.attacked.throughput:.1f} upd/s)")


if __name__ == "__main__":
    main()
