"""Performance metrics: collection and windowed throughput/latency queries."""

from repro.metrics.collector import UPDATE_DONE, MetricEvent, MetricsCollector

__all__ = ["UPDATE_DONE", "MetricEvent", "MetricsCollector"]
