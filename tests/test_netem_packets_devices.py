"""Tests for packets, fragmentation/reassembly, and net devices."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import NetworkError
from repro.common.ids import replica
from repro.netem.devices import BundledDevice, CsmaDevice, make_device
from repro.netem.packets import (HEADER_BYTES, MTU, MessageEnvelope,
                                 ReassemblyBuffer, envelope_from_record,
                                 envelope_to_record, fragment,
                                 packet_from_record, packet_to_record)

A, B = replica(0), replica(1)


def envelope(payload, seq=1):
    return MessageEnvelope(seq, A, B, "udp", payload)


class TestFragmentation:
    def test_small_message_single_packet(self):
        packets = fragment(envelope(b"hi"))
        assert len(packets) == 1
        assert packets[0].frag_count == 1
        assert packets[0].wire_size == 2 + HEADER_BYTES

    def test_large_message_fragments(self):
        packets = fragment(envelope(b"x" * (MTU * 2 + 10)))
        assert len(packets) == 3
        assert [p.frag_index for p in packets] == [0, 1, 2]
        assert sum(len(p.payload) for p in packets) == MTU * 2 + 10

    def test_empty_payload_still_one_packet(self):
        assert len(fragment(envelope(b""))) == 1

    def test_exact_mtu_boundary(self):
        assert len(fragment(envelope(b"x" * MTU))) == 1
        assert len(fragment(envelope(b"x" * (MTU + 1)))) == 2


class TestReassembly:
    def test_roundtrip_in_order(self):
        buf = ReassemblyBuffer()
        packets = fragment(envelope(b"y" * (MTU * 3)))
        results = [buf.add(p) for p in packets]
        assert results[:-1] == [None, None]
        assert results[-1].payload == b"y" * (MTU * 3)

    def test_roundtrip_out_of_order(self):
        buf = ReassemblyBuffer()
        packets = fragment(envelope(b"z" * (MTU * 2 + 5)))
        assert buf.add(packets[2]) is None
        assert buf.add(packets[0]) is None
        done = buf.add(packets[1])
        assert done.payload == b"z" * (MTU * 2 + 5)

    def test_duplicate_fragment_rejected(self):
        buf = ReassemblyBuffer()
        packets = fragment(envelope(b"w" * (MTU * 2)))
        buf.add(packets[0])
        with pytest.raises(NetworkError):
            buf.add(packets[0])

    def test_interleaved_messages(self):
        buf = ReassemblyBuffer()
        m1 = fragment(envelope(b"1" * (MTU * 2), seq=1))
        m2 = fragment(envelope(b"2" * (MTU * 2), seq=2))
        assert buf.add(m1[0]) is None
        assert buf.add(m2[0]) is None
        assert buf.add(m2[1]).payload == b"2" * (MTU * 2)
        assert buf.add(m1[1]).payload == b"1" * (MTU * 2)

    def test_save_load_mid_reassembly(self):
        buf = ReassemblyBuffer()
        packets = fragment(envelope(b"s" * (MTU * 2)))
        buf.add(packets[0])
        state = buf.save_state()
        other = ReassemblyBuffer()
        other.load_state(state)
        assert other.pending_messages() == 1
        assert other.add(packets[1]).payload == b"s" * (MTU * 2)

    @settings(max_examples=50)
    @given(st.binary(min_size=0, max_size=4 * MTU))
    def test_roundtrip_property(self, payload):
        buf = ReassemblyBuffer()
        done = None
        for p in fragment(envelope(payload)):
            done = buf.add(p)
        assert done is not None
        assert done.payload == payload


class TestRecords:
    def test_packet_record_roundtrip(self):
        packet = fragment(envelope(b"data"))[0]
        assert packet_from_record(packet_to_record(packet)) == packet

    def test_envelope_record_roundtrip(self):
        env = envelope(b"data", seq=9)
        assert envelope_from_record(envelope_to_record(env)) == env


class TestDevices:
    def test_kinds(self):
        assert make_device("CsmaDevice").kind == "CsmaDevice"
        assert make_device("BundledDevice").kind == "BundledDevice"
        with pytest.raises(ValueError):
            make_device("WarpDevice")

    def test_throughput_ceilings(self):
        assert CsmaDevice().max_throughput_pps() == pytest.approx(1000)
        assert BundledDevice().max_throughput_pps() == pytest.approx(2500)

    def test_light_load_low_latency(self):
        dev = BundledDevice()
        packet = fragment(envelope(b"p"))[0]
        finish = dev.admit(10.0, packet)
        assert finish == pytest.approx(10.0 + dev.tx_latency)

    def test_backlog_builds_under_overload(self):
        dev = BundledDevice()
        packet = fragment(envelope(b"p"))[0]
        finishes = [dev.admit(0.0, packet) for _ in range(100)]
        assert finishes[-1] > finishes[0]
        # sustained rate equals the service rate
        assert finishes[-1] == pytest.approx(
            99 * dev.process_delay + dev.tx_latency)

    def test_overflow_drops(self):
        dev = BundledDevice()
        dev.queue_capacity = 10
        packet = fragment(envelope(b"p"))[0]
        results = [dev.admit(0.0, packet) for _ in range(20)]
        assert None in results
        assert dev.stats.dropped_overflow > 0

    def test_save_load(self):
        dev = CsmaDevice()
        packet = fragment(envelope(b"p"))[0]
        dev.admit(1.0, packet)
        state = dev.save_state()
        other = CsmaDevice()
        other.load_state(state)
        assert other.stats.processed == 1
        assert other.backlog(1.0) == dev.backlog(1.0)

    def test_constructor_overrides_shadow_class_defaults(self):
        dev = BundledDevice(process_delay=0.001, tx_latency=0.0002,
                            queue_capacity=5)
        assert dev.max_throughput_pps() == pytest.approx(1000)
        assert dev.tx_latency == 0.0002
        assert dev.queue_capacity == 5
        # the class (and fresh instances) keep their defaults
        assert BundledDevice().queue_capacity == 4096
        assert BundledDevice().max_throughput_pps() == pytest.approx(2500)

    def test_constructor_overrides_validated(self):
        with pytest.raises(ValueError):
            BundledDevice(process_delay=0.0)
        with pytest.raises(ValueError):
            BundledDevice(tx_latency=-0.1)
        with pytest.raises(ValueError):
            BundledDevice(queue_capacity=0)

    def test_make_device_overrides(self):
        dev = make_device("CsmaDevice", queue_capacity=2)
        assert dev.kind == "CsmaDevice"
        assert dev.queue_capacity == 2
        packet = fragment(envelope(b"p"))[0]
        results = [dev.admit(0.0, packet) for _ in range(5)]
        assert None in results

    def test_world_device_config_plumbed_to_hosts(self):
        from repro.common.ids import replica
        from repro.runtime.world import World
        from repro.runtime.app import Application
        from repro.wire.codec import ProtocolCodec
        from repro.wire.schema import ProtocolSchema, make_message

        class NullApp(Application):
            def snapshot_state(self):
                return {}

            def restore_state(self, state):
                pass

        schema = ProtocolSchema("d", (make_message("Ping", 1, []),))
        world = World(ProtocolCodec(schema),
                      device_config={"queue_capacity": 7})
        world.add_node(replica(0), NullApp())
        device = world.emulator.port_stats(replica(0)).device
        assert device.queue_capacity == 7
        assert device.kind == "BundledDevice"
