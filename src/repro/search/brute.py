"""Brute-force attack search (Fig. 2(a) of the paper).

The simplest algorithm: obtain a benign baseline once, then for every attack
scenario in the list run a *fresh* execution of the whole system with the
scenario's action installed from the start, and measure the window after the
first injection.  It needs no branching support, but it pays for that
simplicity exactly as the paper describes: executions where the target
message type never appears are entirely wasted, and every scenario re-pays
boot and warmup.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple

from repro.controller.costs import EXECUTION
from repro.controller.harness import AttackHarness
from repro.controller.monitor import PerfSample
from repro.controller.supervisor import ScenarioQuarantined
from repro.search.base import SearchAlgorithm
from repro.search.results import AttackFinding, SearchReport


class BruteForceSearch(SearchAlgorithm):
    """Fresh execution per scenario; no snapshots, no branching."""

    name = "brute-force"

    # The attempt bodies are plain methods (not closures) so the parallel
    # prober can drive the exact same platform operations per shard.

    def _baseline_attempt(self) -> PerfSample:
        """One benign execution for the baseline.  Each attempt is already
        a full rebuild, so the supervisor retries the callable directly."""
        self.harness = self._fresh_harness()
        self.harness.start_run(take_warm_snapshot=False)
        return self.harness.measure_window()

    def _scenario_attempt(self, scenario, max_wait: float
                          ) -> Tuple[Optional[float], Optional[PerfSample]]:
        # Fresh execution: boot + warmup paid every time.
        self.harness = self._fresh_harness()
        instance = self.harness.start_run(take_warm_snapshot=False)
        instance.proxy.set_policy(scenario.message_type, scenario.action)
        instance.proxy.reset_counters()

        # Run until the action has actually been applied (the injection
        # point), or waste the full execution if the type never occurs.
        deadline = instance.world.kernel.now + max_wait
        injected_at = None
        while instance.world.kernel.now < deadline:
            start = instance.world.kernel.now
            step = min(0.5, deadline - start)
            try:
                instance.world.run_for(step)
            finally:
                self.ledger.charge(
                    EXECUTION, instance.world.kernel.now - start)
            if instance.proxy.first_injection_time is not None:
                injected_at = instance.proxy.first_injection_time
                break
        if injected_at is None:
            return None, None

        # Measure the window from the injection point.
        window_end = injected_at + instance.window
        start = instance.world.kernel.now
        try:
            instance.world.run_until(window_end)
        finally:
            self.ledger.charge(EXECUTION,
                               instance.world.kernel.now - start)
        crashed = len(instance.world.crashed_nodes())
        return injected_at, self.harness.monitor.sample(
            injected_at, window_end, crashed_nodes=crashed)

    def _run_pass(self, message_types: Optional[Sequence[str]] = None,
                  exclude: Optional[Set[tuple]] = None,
                  max_scenarios: Optional[int] = None) -> SearchReport:
        exclude = exclude or set()

        try:
            baseline = self.supervisor.run("baseline", self._baseline_attempt)
        except ScenarioQuarantined as q:
            report = self._make_report()
            report.quarantined.append(self._quarantine_entry(q, "*", None))
            return self._finalize_report(report)
        report = self._make_report()

        types = self._search_types(message_types)
        space = self._space()
        scenarios = [s for t in types for s in space.scenarios_for(t)
                     if self._exclude_key(s) not in exclude]
        if max_scenarios is not None:
            scenarios = scenarios[:max_scenarios]

        max_wait = (self.max_wait if self.max_wait is not None
                    else AttackHarness.DEFAULT_MAX_WAIT)

        for scenario in scenarios:
            try:
                injected_at, sample = self.supervisor.run(
                    f"scenario:{scenario.message_type}",
                    lambda scenario=scenario: self._scenario_attempt(
                        scenario, max_wait),
                    scenario=scenario.describe())
            except ScenarioQuarantined as q:
                report.quarantined.append(self._quarantine_entry(
                    q, scenario.message_type, scenario.action))
                continue
            report.scenarios_evaluated += 1
            self._progress_tick()
            if injected_at is None:
                if scenario.message_type not in report.types_without_injection:
                    report.types_without_injection.append(scenario.message_type)
                continue
            report.injection_points += 1

            if self.threshold.is_attack(baseline, sample):
                report.findings.append(AttackFinding(
                    scenario, baseline, sample,
                    damage=self.threshold.damage(baseline, sample),
                    crashes=sample.crashed_nodes,
                    found_at=self.ledger.total()))
        return self._finalize_report(report)
