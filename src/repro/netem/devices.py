"""Emulated network devices.

NS3's stock CSMA device supports emulation "but performs unnecessary
processing": every packet crosses the full CSMA MAC state machine, capping
throughput near 1000 packets/s in the paper's measurements (Fig. 4).  The
authors implemented a *bundled* device with a slimmer path that reaches
~2500 packets/s.

A device is modelled as a rate server: each packet consumes
``process_delay`` of serial device capacity (which is what caps throughput),
while the latency it adds to an individual packet under light load is only
the small ``tx_latency`` — device processing is pipelined with transmission,
so an unloaded device does not add a full service time to every packet's
path.  When offered load exceeds the service rate, the backlog grows and
packets wait, which is exactly the saturation behaviour Fig. 4 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import micros
from repro.netem.packets import Packet


@dataclass
class DeviceStats:
    enqueued: int = 0
    processed: int = 0
    dropped_overflow: int = 0


class NetDevice:
    """A rate-limited packet processor with a bounded backlog.

    State is just a busy-until timestamp (plus counters), which makes the
    device trivially serializable for emulator save/load.
    """

    #: seconds of serial device capacity per packet; sets the pps ceiling.
    process_delay: float = micros(400)
    #: latency added to a packet that finds the device idle.
    tx_latency: float = micros(50)
    #: maximum packets of backlog before tail drop.
    queue_capacity: int = 4096

    def __init__(self, process_delay: float = None,
                 tx_latency: float = None,
                 queue_capacity: int = None) -> None:
        # Constructor kwargs shadow the class defaults, so scenarios can
        # model constrained devices per-instance without new subclasses.
        if process_delay is not None:
            if process_delay <= 0:
                raise ValueError("process_delay must be positive")
            self.process_delay = process_delay
        if tx_latency is not None:
            if tx_latency < 0:
                raise ValueError("tx_latency must be non-negative")
            self.tx_latency = tx_latency
        if queue_capacity is not None:
            if queue_capacity < 1:
                raise ValueError("queue_capacity must be at least 1")
            self.queue_capacity = queue_capacity
        self._busy_until = 0.0
        self.stats = DeviceStats()

    @property
    def kind(self) -> str:
        return type(self).__name__

    def backlog(self, now: float) -> int:
        """Packets of work currently queued ahead of a new arrival."""
        pending = max(0.0, self._busy_until - now)
        return int(pending / self.process_delay)

    def admit(self, now: float, packet: Packet):
        """Admit a packet at virtual time ``now``.

        Returns the time the packet is on the wire, or None when the backlog
        exceeded capacity and the packet was tail-dropped.
        """
        if self.backlog(now) >= self.queue_capacity:
            self.stats.dropped_overflow += 1
            return None
        start = max(now, self._busy_until)
        self._busy_until = start + self.process_delay
        self.stats.enqueued += 1
        self.stats.processed += 1
        return start + self.tx_latency

    def max_throughput_pps(self) -> float:
        return 1.0 / self.process_delay

    # ------------------------------------------------------------- snapshot

    def save_state(self) -> dict:
        return {
            "busy_until": self._busy_until,
            "stats": (self.stats.enqueued, self.stats.processed,
                      self.stats.dropped_overflow),
        }

    def load_state(self, state: dict) -> None:
        self._busy_until = state["busy_until"]
        enq, proc, drop = state["stats"]
        self.stats = DeviceStats(enq, proc, drop)


class CsmaDevice(NetDevice):
    """NS3's stock CSMA device: full MAC processing, ~1000 packets/s."""

    process_delay = micros(1000)
    tx_latency = micros(120)


class BundledDevice(NetDevice):
    """The paper's slimmed device: minimal processing, ~2500 packets/s."""

    process_delay = micros(400)
    tx_latency = micros(50)


DEVICE_KINDS = {
    "CsmaDevice": CsmaDevice,
    "BundledDevice": BundledDevice,
}


def make_device(kind: str, **overrides) -> NetDevice:
    """Build a device by kind name, with optional per-instance overrides.

    ``overrides`` accepts ``process_delay``, ``tx_latency``, and
    ``queue_capacity``; anything unset keeps the kind's class default.
    """
    try:
        cls = DEVICE_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown device kind {kind!r}") from None
    return cls(**overrides)
