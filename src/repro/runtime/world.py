"""The world: one complete emulated deployment.

A :class:`World` wires together everything one experiment needs — the
simulation kernel, the network emulator, the VM cluster, the per-node
runtimes, the metrics collector, and the RNG registry — and exposes whole-
world save/restore built from each component's own snapshot support.  The
controller's distributed-snapshot procedure (pause ordering, timing charges)
lives in :mod:`repro.controller.branching`; the world provides the raw
state plumbing it orchestrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.ids import NodeId
from repro.common.logging import EventLog
from repro.common.rng import RngRegistry
from repro.metrics.collector import MetricsCollector
from repro.netem.emulator import NetworkEmulator
from repro.netem.topology import Topology
from repro.runtime.app import Application
from repro.runtime.cpu import CpuCostModel
from repro.runtime.node import Node
from repro.sim.kernel import SimKernel
from repro.telemetry.instruments import InstrumentRegistry
from repro.vm.manager import VmCluster
from repro.vm.memory import OsImage
from repro.wire.codec import ProtocolCodec


class World:
    """A booted emulated deployment of one distributed system."""

    def __init__(self, codec: ProtocolCodec, topology: Optional[Topology] = None,
                 seed: int = 0, device_kind: str = "BundledDevice",
                 os_image: Optional[OsImage] = None,
                 log_enabled: bool = False,
                 watchdog_limit: Optional[int] = None,
                 telemetry_enabled: bool = False) -> None:
        self.codec = codec
        self.rng = RngRegistry(seed)
        self.kernel = SimKernel()
        self.kernel.watchdog_limit = watchdog_limit
        self.log = EventLog(lambda: self.kernel.now, enabled=log_enabled)
        #: platform instruments for this world — disabled by default, the
        #: harness flips ``enabled`` when telemetry is requested; the state
        #: rides in :meth:`save_component_states` so branched executions
        #: resume from consistent pre-branch telemetry.
        self.instruments = InstrumentRegistry(enabled=telemetry_enabled)
        self.kernel.instruments = self.instruments
        self.emulator = NetworkEmulator(self.kernel, topology,
                                        device_kind=device_kind, log=self.log,
                                        instruments=self.instruments)
        self.metrics = MetricsCollector()
        self.nodes: Dict[NodeId, Node] = {}
        self._apps: Dict[NodeId, Application] = {}
        self._os_image = os_image or OsImage()
        self.cluster: Optional[VmCluster] = None
        self._booted = False

    # ------------------------------------------------------------- assembly

    def add_node(self, node_id: NodeId, app: Application,
                 cost_model: Optional[CpuCostModel] = None,
                 default_transport: str = "udp") -> Node:
        if self._booted:
            raise ConfigError("cannot add nodes after boot")
        if node_id in self.nodes:
            raise ConfigError(f"node {node_id} already added")
        self.emulator.register_host(node_id)
        node = Node(node_id, self.kernel, self.emulator, self.codec,
                    self.rng.stream(f"node:{node_id}"),
                    cost_model=cost_model,
                    default_transport=default_transport, log=self.log,
                    metric_sink=self.metrics.record)
        node.attach(app)
        self.nodes[node_id] = node
        self._apps[node_id] = app
        return node

    def set_peer_groups(self, group: List[NodeId]) -> None:
        """Make ``group`` the broadcast set of each of its members."""
        for node_id in group:
            self.nodes[node_id].peers = list(group)

    # ----------------------------------------------------------------- boot

    def boot(self) -> float:
        """Create and boot the VMs and start every node's application.

        Returns the modelled boot duration (charged by the search cost
        accounting: a brute-force search pays this for every execution).
        """
        if self._booted:
            raise ConfigError("world already booted")
        self._booted = True
        names = [str(n) for n in sorted(self.nodes)]
        self.cluster = VmCluster(names, image=self._os_image)
        boot_time = self.cluster.boot_all()
        for node_id in sorted(self.nodes):
            self.cluster.vm(str(node_id)).app = self.nodes[node_id]
        for node_id in sorted(self.nodes):
            self.nodes[node_id].start()
        return boot_time

    @property
    def booted(self) -> bool:
        return self._booted

    def node(self, node_id: NodeId) -> Node:
        return self.nodes[node_id]

    def app(self, node_id: NodeId) -> Application:
        return self._apps[node_id]

    def crashed_nodes(self) -> List[NodeId]:
        return sorted(n for n, node in self.nodes.items() if node.crashed)

    # ------------------------------------------------------------- watchdog

    def set_watchdog(self, max_events_per_window: Optional[int]) -> None:
        """Cap events one run window may execute (None disables).

        When the cap is exceeded the kernel raises
        :class:`~repro.common.errors.WatchdogTimeout`, which the supervision
        layer treats as a transient platform fault: the offending branch is
        retried on a fresh testbed and, if it keeps tripping, quarantined.
        """
        self.kernel.watchdog_limit = max_events_per_window

    @property
    def watchdog_trips(self) -> int:
        return self.kernel.watchdog_trips

    # ------------------------------------------------------ direct snapshot
    #
    # Raw state plumbing.  The controller's DistributedSnapshotter wraps
    # these with the paper's pause/freeze ordering and cost accounting.

    def save_component_states(self) -> dict:
        return {
            "kernel": self.kernel.save_state(),
            "netem": self.emulator.save_state(),
            "metrics": self.metrics.save_state(),
            "rng": self.rng.save_state(),
            "telemetry": self.instruments.save_state(),
        }

    def load_component_states(self, state: dict) -> None:
        # Kernel first: clears the event queue and rewinds the clock so the
        # other components can re-schedule against restored time.
        self.kernel.load_state(state["kernel"])
        self.emulator.load_state(state["netem"])
        self.metrics.load_state(state["metrics"])
        self.rng.load_state(state["rng"])
        # Older snapshots predate the instrument registry; .get keeps them
        # loadable (load_state(None) clears to empty).
        self.instruments.load_state(state.get("telemetry"))

    def run_for(self, duration: float):
        return self.kernel.run_for(duration)

    def run_until(self, deadline: float):
        return self.kernel.run_until(deadline)
