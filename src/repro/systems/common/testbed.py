"""Testbed assembly shared by every target system.

A testbed builds the full deployment Fig. 3 shows: one VM per participant
(replicas and clients), all attached to the network emulator, with the
malicious proxy configured from the list of compromised nodes.  Target
systems call :func:`build_testbed` from their own ``*_testbed`` factory
functions with protocol-specific applications and knobs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks.actions import MaliciousAction
from repro.attacks.proxy import MaliciousProxy
from repro.common.ids import client, replica
from repro.controller.harness import TestbedInstance
from repro.netem.topology import Topology
from repro.runtime.app import Application
from repro.runtime.cpu import CpuCostModel
from repro.runtime.world import World
from repro.wire.codec import ProtocolCodec
from repro.wire.schema import ProtocolSchema

AppFactory = Callable[[int], Application]


def build_testbed(
    name: str,
    schema: ProtocolSchema,
    codec: ProtocolCodec,
    replica_factory: AppFactory,
    client_factory: AppFactory,
    n_replicas: int,
    n_clients: int,
    malicious_indices: Sequence[int],
    seed: int,
    warmup: float = 3.0,
    window: float = 6.0,
    cost_model: Optional[CpuCostModel] = None,
    client_cost_model: Optional[CpuCostModel] = None,
    type_costs: Optional[Dict[str, float]] = None,
    message_types: Optional[List[str]] = None,
    background_policy: Optional[List[Tuple[str, MaliciousAction]]] = None,
    topology: Optional[Topology] = None,
    device_kind: str = "BundledDevice",
    device_config: Optional[Dict[str, float]] = None,
    ingress_dedup: bool = False,
) -> TestbedInstance:
    """Assemble one deployment: world + nodes + proxy.

    Every node is registered with a zero-argument app factory so the
    chaos layer's ``restart`` fault (``World.restart_node(fresh=True)``)
    can rebuild a crashed replica's application from scratch.
    ``device_config`` overrides per-node NIC parameters (``process_delay``,
    ``tx_latency``, ``queue_capacity``) without subclassing the device.
    """
    world = World(codec, topology=topology, seed=seed,
                  device_kind=device_kind, device_config=device_config)

    replica_ids = [replica(i) for i in range(n_replicas)]
    for i, node_id in enumerate(replica_ids):
        node = world.add_node(node_id, replica_factory(i),
                              cost_model=cost_model,
                              app_factory=lambda i=i: replica_factory(i))
        node.ingress_dedup = ingress_dedup
        if type_costs:
            node.type_costs.update(type_costs)
    for i in range(n_clients):
        world.add_node(client(i), client_factory(i),
                       cost_model=client_cost_model or cost_model,
                       app_factory=lambda i=i: client_factory(i))
    world.set_peer_groups(replica_ids)

    malicious = [replica(i) for i in malicious_indices]
    proxy = MaliciousProxy(world.emulator, codec, malicious,
                           world.rng.stream("proxy"))
    for message_type, action in background_policy or []:
        proxy.set_background_policy(message_type, action)

    return TestbedInstance(
        name=name, world=world, proxy=proxy, schema=schema,
        malicious=malicious, warmup=warmup, window=window,
        message_types=message_types)
