"""Prime testbed factory (4 replicas, f = 1, one client)."""

from __future__ import annotations

from typing import Optional

from repro.controller.harness import TestbedFactory, TestbedInstance
from repro.runtime.cpu import CpuCostModel
from repro.systems.common.auth import Authenticator
from repro.systems.common.config import BftConfig
from repro.systems.common.testbed import build_testbed
from repro.systems.prime.client import PrimeClient
from repro.systems.prime.replica import PrimeReplica
from repro.systems.prime.schema import PRIME_CODEC, PRIME_SCHEMA

PRIME_ACTIVE_TYPES = ["Request", "PORequest", "POAck", "POSummary",
                      "PrePrepare", "Prepare", "Commit", "Reply"]

MALICIOUS_ROLES = {"leader": 0, "backup": 1}


def prime_testbed(malicious: str = "leader",
                  config: Optional[BftConfig] = None,
                  warmup: float = 3.0, window: float = 6.0,
                  message_types=None) -> TestbedFactory:
    """``malicious`` is ``"leader"`` (replica 0) or ``"backup"`` (replica 1).

    Note the client contacts replica 0 (its local replica), so with the
    default single client the leader also happens to be the originator —
    matching the paper's setup where the strongest Prime attacks come from
    a compromised leader.
    """
    if malicious not in MALICIOUS_ROLES:
        raise ValueError(f"malicious must be one of {set(MALICIOUS_ROLES)}, "
                         f"got {malicious!r}")
    cfg = config or BftConfig()
    types = message_types if message_types is not None else (
        list(PRIME_ACTIVE_TYPES))

    def factory(seed: int) -> TestbedInstance:
        auth = Authenticator("prime-deployment")
        cost_model = CpuCostModel(verify_signatures=cfg.verify_signatures)
        return build_testbed(
            name=f"prime-malicious-{malicious}",
            schema=PRIME_SCHEMA, codec=PRIME_CODEC,
            replica_factory=lambda i: PrimeReplica(i, cfg, auth),
            client_factory=lambda i: PrimeClient(i, cfg, auth),
            n_replicas=cfg.n, n_clients=cfg.clients,
            malicious_indices=[MALICIOUS_ROLES[malicious]],
            seed=seed, warmup=warmup, window=window,
            cost_model=cost_model, message_types=types)

    return factory
