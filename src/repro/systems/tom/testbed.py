"""Total Order Multicast testbed (classroom target)."""

from __future__ import annotations

from typing import Optional

from repro.controller.harness import TestbedFactory, TestbedInstance
from repro.runtime.cpu import CpuCostModel
from repro.systems.common.testbed import build_testbed
from repro.systems.tom.replica import TomConfig, TomMember
from repro.systems.tom.schema import TOM_CODEC, TOM_SCHEMA

TOM_ACTIVE_TYPES = ["Publish", "Sequence"]


def tom_testbed(malicious_index: int = 0,
                config: Optional[TomConfig] = None,
                warmup: float = 2.0, window: float = 4.0,
                message_types=None) -> TestbedFactory:
    """Sequencer = member 0; ``malicious_index`` 0 compromises it."""
    cfg = config or TomConfig()
    types = message_types if message_types is not None else (
        list(TOM_ACTIVE_TYPES))

    def factory(seed: int) -> TestbedInstance:
        return build_testbed(
            name=f"tom-malicious-{malicious_index}",
            schema=TOM_SCHEMA, codec=TOM_CODEC,
            replica_factory=lambda i: TomMember(i, cfg),
            client_factory=lambda i: None,  # deliveries are the metric
            n_replicas=cfg.n, n_clients=0,
            malicious_indices=[malicious_index],
            seed=seed, warmup=warmup, window=window,
            cost_model=CpuCostModel(), message_types=types)

    return factory
