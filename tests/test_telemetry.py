"""Tests for the telemetry layer: instruments, tracer, exporters, wiring.

The load-bearing properties:

* telemetry never perturbs the experiment — a traced run produces the same
  scenario results as an untraced one, and two identical traced runs produce
  identical virtual-time span streams;
* the instrument registry is world state (rewound by snapshot restore)
  while the tracer is platform state (never rewound);
* disabled telemetry records nothing;
* the Chrome trace export is valid JSON with balanced B/E events and
  carries the Table-II-style page breakdown on snapshot spans.
"""

import json

import pytest

from repro.analysis.reports import report_from_dict, report_to_dict
from repro.attacks.space import ActionSpaceConfig
from repro.cli import main
from repro.common.logging import LogRecord
from repro.controller.harness import AttackHarness
from repro.metrics.collector import MetricsCollector
from repro.search.hunt import hunt
from repro.search.weighted import WeightedGreedySearch
from repro.systems.paxos.testbed import paxos_testbed
from repro.telemetry.export import (chrome_trace, log_jsonl_records,
                                    span_jsonl_records, write_chrome_trace,
                                    write_jsonl)
from repro.telemetry.instruments import Histogram, InstrumentRegistry
from repro.telemetry.progress import ProgressLine
from repro.telemetry.summary import TelemetrySummary, summarize
from repro.telemetry.tracer import NULL_SPAN, Tracer, maybe_span

SPACE = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(1.0,),
                          duplicate_counts=(50,), include_divert=False,
                          include_lying=False)
FACTORY = paxos_testbed(malicious_index=0, warmup=1.0, window=2.0)


# ------------------------------------------------------------- instruments

class TestInstrumentRegistry:
    def test_disabled_records_nothing(self):
        reg = InstrumentRegistry(enabled=False)
        reg.count("a")
        reg.gauge("b", 2.0)
        reg.observe("c", 3.0)
        assert reg.counters() == {}
        assert reg.gauges() == {}
        assert reg.histograms() == {}

    def test_counters_and_gauges(self):
        reg = InstrumentRegistry(enabled=True)
        reg.count("events")
        reg.count("events", 4)
        reg.gauge("depth", 7.0)
        assert reg.counter_value("events") == 5
        assert reg.gauges()["depth"] == 7.0

    def test_state_round_trip(self):
        reg = InstrumentRegistry(enabled=True)
        reg.count("x", 3)
        reg.gauge("g", 1.5)
        for v in (0.1, 0.2, 5.0):
            reg.observe("h", v)
        state = reg.save_state()
        other = InstrumentRegistry(enabled=True)
        other.load_state(state)
        assert other.save_state() == state
        assert other.histogram("h").count == 3

    def test_load_none_clears(self):
        reg = InstrumentRegistry(enabled=True)
        reg.count("x")
        reg.load_state(None)
        assert reg.counters() == {}
        # enabled is configuration, not state
        assert reg.enabled

    def test_histogram_percentiles(self):
        hist = Histogram()
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.min == 1.0 and hist.max == 100.0
        # Bucketed estimates: generous bounds, but ordered and in range.
        p50, p95, p99 = (hist.percentile(p) for p in (50, 95, 99))
        assert 1.0 <= p50 <= p95 <= p99 <= 100.0
        assert 25.0 <= p50 <= 75.0
        assert p99 >= 75.0

    def test_histogram_empty_and_single(self):
        hist = Histogram()
        assert hist.percentile(99) == 0.0
        hist.observe(4.2)
        assert hist.percentile(50) == pytest.approx(4.2)
        assert hist.percentile(99) == pytest.approx(4.2)


# ------------------------------------------------------------------ tracer

class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("x", a=1)
        assert span is NULL_SPAN
        with span:
            span.set(b=2)
        tracer.instant("y")
        assert tracer.spans == []
        assert tracer.events == []

    def test_nesting_depths_and_balance(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.instant("tick")
        by_name = {r.name: r for r in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["tick"].depth == 2
        kinds = [k for k, *_ in tracer.events]
        assert kinds == ["B", "B", "I", "E", "E"]

    def test_virtual_records_strip_wall_clock(self):
        clock_value = [0.0]
        tracer = Tracer(enabled=True, clock=lambda: clock_value[0])
        with tracer.span("w", n=1):
            clock_value[0] = 2.5
        (record,) = tracer.virtual_records()
        assert record == ("w", "span", 0, 0.0, 2.5, (("n", 1),))

    def test_maybe_span_null_paths(self):
        assert maybe_span(None, "x") is NULL_SPAN
        assert maybe_span(Tracer(enabled=False), "x") is NULL_SPAN
        tracer = Tracer(enabled=True)
        assert maybe_span(tracer, "x") is not NULL_SPAN


# --------------------------------------------------------------- exporters

class TestExport:
    def _traced(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a", k="v"):
            tracer.instant("i")
        return tracer

    def test_chrome_trace_balanced_and_valid(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, self._traced())
        with open(path) as fh:
            data = json.load(fh)
        events = data["traceEvents"]
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        assert begins == ends == 1
        assert any(e["ph"] == "i" for e in events)
        assert all("virtual_time" in e["args"]
                   for e in events if e["ph"] != "M")

    def test_chrome_trace_timestamps_monotonic(self):
        data = chrome_trace(self._traced())
        ts = [e["ts"] for e in data["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)
        assert all(t >= 0 for t in ts)

    def test_span_jsonl(self):
        records = list(span_jsonl_records(self._traced()))
        assert [r["name"] for r in records] == ["i", "a"]  # completion order
        assert records[1]["args"] == {"k": "v"}

    def test_log_jsonl_filtering(self):
        records = [LogRecord(0.1, "netem", "deliver", {"msg": 1}),
                   LogRecord(0.2, "node", "crash", {}),
                   LogRecord(0.3, "node", "start", {})]
        assert len(list(log_jsonl_records(records, None))) == 3
        assert len(list(log_jsonl_records(records, "*"))) == 3
        assert len(list(log_jsonl_records(records, "node"))) == 2
        only = list(log_jsonl_records(records, "node:crash"))
        assert [r["event"] for r in only] == ["crash"]
        both = list(log_jsonl_records(records, "netem,node:crash"))
        assert len(both) == 2

    def test_write_jsonl_lines(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        count = write_jsonl(path, [{"a": 1}, {"b": 2}])
        assert count == 2
        with open(path) as fh:
            lines = [json.loads(line) for line in fh]
        assert lines == [{"a": 1}, {"b": 2}]


# ----------------------------------------------------------------- summary

class TestSummary:
    def test_summarize_and_round_trip(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        reg = InstrumentRegistry(enabled=True)
        reg.count("c", 3)
        reg.observe("h", 1.0)
        summary = summarize(tracer, reg)
        assert summary.span_kind("a").count == 2
        assert summary.counters["c"] == 3
        again = TelemetrySummary.from_dict(summary.to_dict())
        assert again.to_dict() == summary.to_dict()
        assert "2 spans" in summary.one_line()
        assert "a" in summary.describe()

    def test_merge(self):
        t1, t2 = Tracer(enabled=True), Tracer(enabled=True)
        with t1.span("a"):
            pass
        with t2.span("a"):
            pass
        with t2.span("b"):
            pass
        merged = summarize(t1)
        merged.merge(summarize(t2))
        assert merged.span_kind("a").count == 2
        assert merged.span_kind("b").count == 1

    def test_since_slices_span_stream(self):
        tracer = Tracer(enabled=True)
        with tracer.span("early"):
            pass
        mark = tracer.mark()
        with tracer.span("late"):
            pass
        summary = summarize(tracer, since=mark)
        assert summary.span_kind("early").count == 0
        assert summary.span_kind("late").count == 1


# ---------------------------------------------------------------- progress

class TestProgressLine:
    class _Stream:
        def __init__(self):
            self.written = []

        def write(self, text):
            self.written.append(text)

        def flush(self):
            pass

    def test_disabled_writes_nothing(self):
        stream = self._Stream()
        line = ProgressLine(stream=stream, enabled=False)
        line.update("hello")
        line.done()
        assert stream.written == []

    def test_overwrites_and_erases(self):
        stream = self._Stream()
        line = ProgressLine(stream=stream, enabled=True)
        line.prefix = "pass 1/2 · "
        line.update("working")
        line.update("ok")  # shorter: must pad over the stale tail
        assert stream.written[0].startswith("\rpass 1/2 · working")
        assert len(stream.written[1].lstrip("\r")) >= len(
            "pass 1/2 · working")
        line.done()
        assert stream.written[-1].endswith("\r")


# ------------------------------------------------- harness + world wiring

class TestWorldWiring:
    def _harness(self, tracer=None):
        return AttackHarness(FACTORY, seed=3, tracer=tracer)

    def test_traced_harness_produces_phase_spans(self):
        tracer = Tracer(enabled=True)
        harness = self._harness(tracer)
        harness.start_run()
        injection = harness.run_to_injection("Accept", max_wait=5.0)
        assert injection is not None
        harness.branch_measure(injection, None)
        names = {r.name for r in tracer.spans}
        assert {"harness.boot", "harness.warmup", "harness.seek",
                "harness.branch", "harness.measure", "snapshot.save",
                "snapshot.restore", "kernel.window"} <= names

    def test_snapshot_span_carries_page_breakdown(self):
        tracer = Tracer(enabled=True)
        harness = self._harness(tracer)
        harness.start_run()
        saves = [r for r in tracer.spans if r.name == "snapshot.save"]
        assert saves
        args = saves[0].args
        assert args["mode"] == "shared"
        assert args["pages_total"] == (args["pages_shared"]
                                       + args["pages_private"])
        assert args["pages_shared"] > 0  # KSM merged the OS image
        assert args["stored_bytes"] > 0

    def test_delta_snapshot_span_mode(self):
        tracer = Tracer(enabled=True)
        harness = AttackHarness(FACTORY, seed=3, tracer=tracer,
                                delta_snapshots=True)
        harness.start_run()
        injection = harness.run_to_injection("Accept", max_wait=5.0)
        assert injection is not None
        modes = [r.args["mode"] for r in tracer.spans
                 if r.name == "snapshot.save"]
        assert "shared" in modes  # the warm snapshot
        assert "delta" in modes   # the injection-point snapshot
        delta = next(r for r in tracer.spans
                     if r.name == "snapshot.save"
                     and r.args["mode"] == "delta")
        assert "pages_changed" in delta.args
        assert "pages_removed" in delta.args

    def test_registry_rewinds_with_restore_but_tracer_does_not(self):
        tracer = Tracer(enabled=True)
        harness = self._harness(tracer)
        harness.start_run()
        world = harness.world
        assert world.instruments.enabled
        snapshot = harness.take_snapshot()
        at_save = world.instruments.counter_value("kernel.events")
        spans_at_save = len(tracer.spans)
        harness.measure_window(1.0)
        assert world.instruments.counter_value("kernel.events") > at_save
        harness.restore(snapshot)
        # world-owned telemetry rewound...
        assert world.instruments.counter_value("kernel.events") == at_save
        # ...platform-side tracer kept everything (incl. the restore span)
        assert len(tracer.spans) > spans_at_save

    def test_untraced_world_has_no_telemetry_records(self):
        harness = self._harness(tracer=None)
        harness.start_run()
        world = harness.world
        assert not world.instruments.enabled
        assert world.instruments.counters() == {}
        assert world.kernel.tracer is None

    def test_netem_counters_match_stats(self):
        tracer = Tracer(enabled=True)
        harness = self._harness(tracer)
        harness.start_run()
        world = harness.world
        ins = world.instruments
        assert (ins.counter_value("netem.messages_sent")
                == world.emulator.stats.messages_sent)
        assert (ins.counter_value("netem.messages_delivered")
                == world.emulator.stats.messages_delivered)


# ------------------------------------------------------------ determinism

def _run_search(tracer=None, log_events=False):
    search = WeightedGreedySearch(FACTORY, seed=3, space_config=SPACE,
                                  max_wait=5.0, tracer=tracer,
                                  log_events=log_events)
    return search, search.run(message_types=["Accept"])


class TestDeterminism:
    def test_identical_traced_runs_identical_virtual_telemetry(self):
        t1 = Tracer(enabled=True)
        t2 = Tracer(enabled=True)
        _run_search(t1)
        _run_search(t2)
        assert t1.virtual_records() == t2.virtual_records()
        assert t1.virtual_records()  # non-trivial stream

    def test_traced_equals_untraced_scenario_results(self):
        __, traced = _run_search(Tracer(enabled=True))
        __, untraced = _run_search(None)
        d_traced = report_to_dict(traced)
        d_untraced = report_to_dict(untraced)
        assert d_traced.pop("telemetry") is not None
        assert d_untraced.pop("telemetry") is None
        assert d_traced == d_untraced

    def test_report_telemetry_round_trips_through_json(self):
        __, report = _run_search(Tracer(enabled=True))
        data = json.loads(json.dumps(report_to_dict(report)))
        again = report_from_dict(data)
        assert again.telemetry is not None
        assert again.telemetry.to_dict() == report.telemetry.to_dict()
        assert report.telemetry.span_kind("search.pass").count == 1
        assert report.telemetry.span_kind("search.scenario").count > 0


# ------------------------------------------------------------------- hunt

class TestHuntTelemetry:
    def test_hunt_merges_pass_telemetry_and_collects_logs(self):
        tracer = Tracer(enabled=True)
        result = hunt(FACTORY, seed=3, message_types=["Accept"],
                      space_config=SPACE, max_passes=2, max_wait=5.0,
                      tracer=tracer, log_events=True)
        assert result.telemetry is not None
        assert (result.telemetry.span_kind("hunt.pass").count
                == len(result.passes))
        assert result.event_log  # EventLog records were gathered
        assert any(r.component == "netem" for r in result.event_log)
        assert "telemetry:" in result.describe()

    def test_untraced_hunt_has_no_telemetry(self):
        result = hunt(FACTORY, seed=3, message_types=["Accept"],
                      space_config=SPACE, max_passes=1, max_wait=5.0)
        assert result.telemetry is None
        assert result.event_log == []


# ------------------------------------------------------------ percentiles

class TestLatencyPercentiles:
    def test_collector_percentiles_interpolate(self):
        from repro.common.ids import NodeId
        collector = MetricsCollector()
        node = NodeId(0, "n")
        for i, v in enumerate([0.010, 0.020, 0.030, 0.040, 0.100]):
            collector.record(0.1 * i, node, "update_done", v)
        p50, p95, p99 = collector.latency_percentiles(0.0, 1.0)
        assert p50 == pytest.approx(0.030)
        assert p95 == pytest.approx(0.088)
        assert p99 == pytest.approx(0.0976)
        assert collector.latency_percentiles(5.0, 6.0) == (0.0, 0.0, 0.0)

    def test_perf_sample_carries_percentiles(self):
        harness = AttackHarness(FACTORY, seed=3)
        harness.start_run(take_warm_snapshot=False)
        sample = harness.measure_window()
        assert sample.latency_p50 > 0
        assert sample.latency_p50 <= sample.latency_p95 <= sample.latency_p99
        assert sample.latency_p99 <= sample.latency_max
        assert "p95" in sample.describe()


# --------------------------------------------------------------------- CLI

BASE_ARGS = ["search", "paxos", "--types", "Accept", "--fast", "--no-lying",
             "--warmup", "0.5", "--window", "1.5", "--max-wait", "5"]


class TestCli:
    def test_trace_flag_writes_chrome_trace(self, capsys, tmp_path):
        path = str(tmp_path / "trace.json")
        assert main(BASE_ARGS + ["--trace", path]) == 0
        with open(path) as fh:
            data = json.load(fh)
        events = data["traceEvents"]
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        assert begins == ends > 0
        assert any(e["name"] == "snapshot.save" and e["ph"] == "B"
                   for e in events)
        assert f"trace written to {path}" in capsys.readouterr().out

    def test_telemetry_flag_prints_summary(self, capsys):
        assert main(BASE_ARGS + ["--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary:" in out
        assert "harness.seek" in out
        assert "netem.messages_sent" in out

    def test_log_events_streams_jsonl(self, capsys):
        assert main(BASE_ARGS + ["--log-events", "netem:deliver"]) == 0
        out = capsys.readouterr().out
        log_lines = [json.loads(line) for line in out.splitlines()
                     if line.startswith("{")]
        assert log_lines
        assert all(r["type"] == "log" and r["event"] == "deliver"
                   for r in log_lines)

    def test_hunt_trace_flag(self, capsys, tmp_path):
        path = str(tmp_path / "hunt_trace.json")
        code = main(["hunt", "paxos", "--types", "Accept", "--fast",
                     "--no-lying", "--warmup", "0.5", "--window", "1.5",
                     "--max-wait", "5", "--passes", "1", "--allow-empty",
                     "--trace", path, "--telemetry"])
        assert code == 0
        with open(path) as fh:
            data = json.load(fh)
        assert any(e["name"] == "hunt.pass"
                   for e in data["traceEvents"])
        assert "telemetry summary:" in capsys.readouterr().out

    def test_baseline_prints_percentiles(self, capsys):
        assert main(["baseline", "paxos", "--warmup", "0.5",
                     "--window", "1.5"]) == 0
        assert "p50/p95/p99" in capsys.readouterr().out
