"""Multi-Paxos — the classroom target system (Section V-D)."""

from repro.systems.paxos.replica import PaxosClient, PaxosConfig, PaxosReplica
from repro.systems.paxos.schema import (PAXOS_CODEC, PAXOS_SCHEMA,
                                        PAXOS_SCHEMA_TEXT)
from repro.systems.paxos.testbed import PAXOS_ACTIVE_TYPES, paxos_testbed

__all__ = ["PaxosClient", "PaxosConfig", "PaxosReplica", "PAXOS_CODEC",
           "PAXOS_SCHEMA", "PAXOS_SCHEMA_TEXT", "PAXOS_ACTIVE_TYPES",
           "paxos_testbed"]
