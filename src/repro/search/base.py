"""Shared machinery for the attack-finding algorithms.

Every algorithm talks to the platform through the supervised helpers here:
:meth:`SearchAlgorithm._start_run`, :meth:`_acquire_context`, and
:meth:`_measure_action` wrap the harness operations in the
:class:`~repro.controller.supervisor.ScenarioSupervisor`'s
classify-retry-quarantine logic, so a transient platform fault (failed
snapshot, watchdog trip, injected fault) costs a bounded retry — with a
fresh testbed rebuild charged to the ``rebuild`` ledger category — instead
of aborting the whole pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.attacks.actions import AttackScenario, MaliciousAction
from repro.attacks.space import ActionSpace, ActionSpaceConfig
from repro.common.errors import ProxyError
from repro.controller.costs import REBUILD, CostLedger
from repro.controller.harness import (AttackHarness, InjectionPoint,
                                      TestbedFactory)
from repro.controller.monitor import AttackThreshold, PerfSample
from repro.controller.supervisor import (FaultPlan, QuarantinedScenario,
                                         ScenarioQuarantined,
                                         ScenarioSupervisor)
from repro.search.results import SearchReport


@dataclass
class TypeContext:
    """Everything needed to branch one message type: injection + baseline.

    ``stale`` flips to True when the testbed was rebuilt underneath us (the
    old snapshot belongs to a dead world); the next supervised measurement
    transparently re-acquires the injection point and baseline.
    """

    message_type: str
    injection: InjectionPoint
    baseline: PerfSample
    stale: bool = False


class SearchAlgorithm:
    """Base class: holds the harness, the action space, and the report."""

    name = "search"

    def __init__(self, factory: TestbedFactory, seed: int = 0,
                 threshold: Optional[AttackThreshold] = None,
                 space_config: Optional[ActionSpaceConfig] = None,
                 max_wait: Optional[float] = None,
                 shared_pages: bool = True,
                 delta_snapshots: bool = False,
                 fault_plan: Optional[FaultPlan] = None,
                 watchdog_limit: Optional[int] = None,
                 max_retries: int = 2) -> None:
        self.factory = factory
        self.seed = seed
        self.threshold = threshold or AttackThreshold()
        self.space_config = space_config
        self.max_wait = max_wait
        self.shared_pages = shared_pages
        self.delta_snapshots = delta_snapshots
        self.fault_plan = fault_plan
        self.watchdog_limit = watchdog_limit
        self.ledger = CostLedger()
        self.harness = self._fresh_harness()
        self.supervisor = ScenarioSupervisor(self.ledger,
                                             max_retries=max_retries)
        #: the in-progress (or last finished) report — lets a caller print
        #: partial results after a KeyboardInterrupt
        self.report: Optional[SearchReport] = None

    # --------------------------------------------------------------- helpers

    def _fresh_harness(self) -> AttackHarness:
        return AttackHarness(self.factory, self.seed, self.threshold,
                             shared_pages=self.shared_pages,
                             delta_snapshots=self.delta_snapshots,
                             ledger=self.ledger,
                             fault_plan=self.fault_plan,
                             watchdog_limit=self.watchdog_limit)

    def _make_report(self) -> SearchReport:
        instance = self.harness.instance
        system = instance.name if instance is not None else "unknown"
        report = SearchReport(self.name, system, ledger=self.ledger)
        self.report = report
        return report

    def _finalize_report(self, report: SearchReport) -> SearchReport:
        report.supervisor.merge(self.supervisor.stats)
        self.supervisor.stats = type(self.supervisor.stats)()
        return report

    def _space(self) -> ActionSpace:
        return ActionSpace(self.harness.instance.schema, self.space_config)

    def _search_types(self,
                      message_types: Optional[Sequence[str]]) -> List[str]:
        if message_types is not None:
            return list(message_types)
        return self.harness.instance.search_types()

    @staticmethod
    def _exclude_key(scenario: AttackScenario) -> tuple:
        return scenario.to_record()

    # ------------------------------------------------------ supervised plane

    def _start_run(self) -> None:
        """Boot (or re-boot) the testbed under supervision."""
        self.supervisor.run("start_run", self.harness.start_run)

    def _rebuild_testbed(self) -> None:
        """Replace the testbed with a fresh build of the same factory+seed.

        All platform time the rebuild consumes (boot, warmup execution,
        warm snapshot) is reattributed to the ledger's ``rebuild`` category
        via a temporary sub-ledger.
        """
        sub = CostLedger()
        self.harness.ledger = sub
        try:
            self.harness.start_run()
        finally:
            self.harness.ledger = self.ledger
            self.ledger.charge(REBUILD, sub.total())

    def _seek_injection(self, message_type: str) -> Optional[InjectionPoint]:
        """Rewind to the warm state and run until the type is intercepted."""
        self.harness.restore(self.harness.warm_snapshot)
        self.harness.proxy.clear_policy()
        return self.harness.run_to_injection(message_type,
                                             max_wait=self.max_wait)

    def _acquire_context(self, message_type: str) -> Optional[TypeContext]:
        """Supervised injection-seek plus baseline branch.

        Returns None when the type never appears within ``max_wait`` (an
        honest no-injection-point outcome, charged as wasted execution).
        Raises :class:`ScenarioQuarantined` when persistent platform faults
        prevented the platform from even finding out.
        """
        def attempt() -> Optional[TypeContext]:
            injection = self._seek_injection(message_type)
            if injection is None:
                return None
            baseline = self.harness.branch_measure(injection, None)
            return TypeContext(message_type, injection, baseline)

        return self.supervisor.run(f"injection:{message_type}", attempt,
                                   rebuild=self._rebuild_testbed,
                                   scenario=message_type)

    def _refresh_context(self, ctx: TypeContext) -> None:
        """Re-acquire a context after the testbed was rebuilt."""
        injection = self._seek_injection(ctx.message_type)
        if injection is None:
            # Deterministic worlds reproduce their injection points; losing
            # one after a rebuild is itself a (transient) platform anomaly.
            raise ProxyError(
                f"injection point for {ctx.message_type} lost after rebuild")
        ctx.injection = injection
        ctx.baseline = self.harness.branch_measure(injection, None)
        ctx.stale = False

    def _measure_action(self, ctx: TypeContext,
                        action: Optional[MaliciousAction]) -> PerfSample:
        """Supervised branch-measure of one action against ``ctx``.

        Transparently re-acquires the injection point and baseline when a
        retry rebuilt the testbed.  Raises :class:`ScenarioQuarantined`
        after persistent failures.
        """
        def attempt() -> PerfSample:
            if ctx.stale:
                self._refresh_context(ctx)
            return self.harness.branch_measure(ctx.injection, action)

        def rebuild() -> None:
            self._rebuild_testbed()
            ctx.stale = True

        label = (f"{ctx.message_type}"
                 if action is None
                 else f"{action.describe()} {ctx.message_type}")
        return self.supervisor.run(f"branch:{ctx.message_type}", attempt,
                                   rebuild=rebuild, scenario=label)

    @staticmethod
    def _quarantine_entry(quarantined: ScenarioQuarantined,
                          message_type: str,
                          action: Optional[MaliciousAction]
                          ) -> QuarantinedScenario:
        return QuarantinedScenario(
            message_type,
            None if action is None else action.to_record(),
            reason=str(quarantined.cause),
            attempts=quarantined.attempts)

    # ------------------------------------------------- legacy direct helpers

    def _injection_for(self, message_type: str) -> Optional[InjectionPoint]:
        return self._seek_injection(message_type)

    def _evaluate(self, injection: InjectionPoint,
                  action: Optional[MaliciousAction]) -> PerfSample:
        return self.harness.branch_measure(injection, action)

    # ------------------------------------------------------------------ run

    def run(self, message_types: Optional[Sequence[str]] = None,
            exclude: Optional[Set[tuple]] = None) -> SearchReport:
        raise NotImplementedError
