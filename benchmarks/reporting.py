"""Shared reporting for the reproduction benchmarks.

Every benchmark prints a paper-vs-measured table and appends it to
``benchmarks/results.txt`` so a full ``pytest benchmarks/ --benchmark-only``
run leaves a reviewable artifact regardless of output capturing.  Each table
is also written as machine-readable ``BENCH_<name>.json`` next to it — the
JSON carries the same rows plus an optional telemetry dict, so CI and
analysis scripts need not parse the text form.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Optional, Sequence

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def _slug(title: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]


def json_path(title: str) -> str:
    return os.path.join(os.path.dirname(__file__), f"BENCH_{_slug(title)}.json")


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def report(title: str, headers: Sequence[str],
           rows: Sequence[Sequence[object]],
           telemetry: Optional[Dict[str, Any]] = None) -> str:
    text = format_table(title, headers, rows)
    print("\n" + text)
    with open(RESULTS_PATH, "a") as fh:
        fh.write(text + "\n\n")
    payload = {
        "title": title,
        "headers": list(headers),
        "rows": [[str(c) for c in row] for row in rows],
        "telemetry": telemetry,
    }
    with open(json_path(title), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return text


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeating them only
    multiplies wall-clock for identical results.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
