"""PBFT (Castro & Liskov) — the paper's case-study target system."""

from repro.systems.pbft.client import PbftClient
from repro.systems.pbft.replica import PbftReplica
from repro.systems.pbft.schema import PBFT_CODEC, PBFT_SCHEMA, PBFT_SCHEMA_TEXT
from repro.systems.pbft.testbed import pbft_testbed, pbft_view_change_testbed

__all__ = ["PbftClient", "PbftReplica", "PBFT_CODEC", "PBFT_SCHEMA",
           "PBFT_SCHEMA_TEXT", "pbft_testbed", "pbft_view_change_testbed"]
