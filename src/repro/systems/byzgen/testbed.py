"""Byzantine Generals testbed (classroom target)."""

from __future__ import annotations

from typing import Optional

from repro.controller.harness import TestbedFactory, TestbedInstance
from repro.runtime.cpu import CpuCostModel
from repro.systems.common.testbed import build_testbed
from repro.systems.byzgen.replica import ByzGeneral, ByzGeneralsConfig
from repro.systems.byzgen.schema import BYZGEN_CODEC, BYZGEN_SCHEMA

BYZGEN_ACTIVE_TYPES = ["Order", "Relay"]


def byzgen_testbed(malicious_index: int = 0,
                   config: Optional[ByzGeneralsConfig] = None,
                   warmup: float = 2.0, window: float = 4.0,
                   message_types=None) -> TestbedFactory:
    """Commander = replica 0; ``malicious_index`` 0 compromises it."""
    cfg = config or ByzGeneralsConfig()
    types = message_types if message_types is not None else (
        list(BYZGEN_ACTIVE_TYPES))

    def factory(seed: int) -> TestbedInstance:
        return build_testbed(
            name=f"byzgen-malicious-{malicious_index}",
            schema=BYZGEN_SCHEMA, codec=BYZGEN_CODEC,
            replica_factory=lambda i: ByzGeneral(i, cfg),
            client_factory=lambda i: None,  # no clients: decisions are the metric
            n_replicas=cfg.n, n_clients=0,
            malicious_indices=[malicious_index],
            seed=seed, warmup=warmup, window=window,
            cost_model=CpuCostModel(), message_types=types)

    return factory
