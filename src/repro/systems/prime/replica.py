"""Prime replica — pre-ordering BFT with leader monitoring (Amir et al.).

Sub-protocols:

* **Pre-ordering** — a replica receiving a client request broadcasts a
  PORequest under its own pre-order sequence; peers acknowledge (POAck);
  2f+1 acks make the request *eligible*.
* **Summaries** — every ``summary_interval`` each replica broadcasts a
  POSummary: the vector of highest contiguous pre-order sequences it has
  acknowledged per originator.
* **Ordering** — the leader periodically covers newly summarized requests
  with a PrePrepare carrying the summary matrix; Prepare/Commit/execute as
  in PBFT.
* **Suspect-leader** — a replica with an eligible-but-uncovered request
  runs a turnaround-time (TAT) timer; PrePrepares that advance the ordering
  reset it; expiry broadcasts SuspectLeader, and f+1 suspicions rotate the
  leader.

Intentional implementation flaws found by Turret in the real codebase:

* the leader waits for summaries from **all** n replicas instead of a
  quorum, so one replica withholding POSummary halts ordering "even if a
  quorum existed";
* a PrePrepare whose sequence number is *not newer* still resets the TAT
  timer, so a leader lying seq backwards stalls the system while keeping
  the suspect-leader protocol from ever firing;
* sequence number 0 indexes ``history[seq - 1]`` (the start-at-1 bug);
* ``PORequest.len``, ``POSummary.nentries`` and ``PrePrepare.summary_count``
  are trusted allocation sizes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import NodeId, client, replica
from repro.systems.common.auth import Authenticator
from repro.systems.common.config import BftConfig
from repro.systems.common.replica import BaseReplica, digest_of
from repro.wire.codec import Message

SUMMARY_TIMER = "po-summary"
ORDER_TIMER = "leader-order"
TAT_TIMER = "tat"


def _encode_vec(vec: Dict[int, int]) -> bytes:
    return json.dumps({str(k): v for k, v in sorted(vec.items())}).encode()


def _decode_vec(data: bytes) -> Dict[int, int]:
    return {int(k): v for k, v in json.loads(data.decode()).items()}


class PrimeReplica(BaseReplica):
    """One Prime replica."""

    #: period of POSummary broadcasts and of the leader's ordering pass
    summary_interval = 0.02
    #: turnaround-time bound before the leader is suspected
    tat_threshold = 0.5

    def __init__(self, index: int, config: BftConfig,
                 auth: Optional[Authenticator] = None) -> None:
        super().__init__(index, config, auth)
        self.po_next = 0                      # my own pre-order sequence
        # (originator, po seq) -> {"timestamp","client","payload","acks",
        #                          "eligible"}
        self.po_log: Dict[Tuple[int, int], Dict[str, Any]] = {}
        # originator -> highest contiguous po seq I have acked
        self.acked_upto: Dict[int, int] = {i: 0 for i in range(config.n)}
        # replica -> its last summary vector
        self.summaries: Dict[int, Dict[int, int]] = {}
        # originator -> highest po seq covered by an executed pre-prepare
        self.ordered_upto: Dict[int, int] = {i: 0 for i in range(config.n)}
        self.last_pp_seq = 0                  # leader's and receivers' cursor
        # ordering instances: seq -> PBFT-ish entry
        self.order_log: Dict[int, Dict[str, Any]] = {}
        self.last_exec = 0
        self.reply_cache: Dict[int, int] = {}
        self.suspects: Dict[int, List[int]] = {}   # view -> suspecting replicas
        self.executed_count = 0
        # leader only: originator -> highest po seq already covered by an
        # emitted PrePrepare (ordering may still be in flight)
        self.covered_upto: Dict[int, int] = {i: 0 for i in range(config.n)}

    # ---------------------------------------------------------------- start

    def on_start(self) -> None:
        self.set_timer(SUMMARY_TIMER, self.summary_interval, periodic=True)
        self.set_timer(ORDER_TIMER, self.summary_interval, periodic=True)

    def on_timer(self, name: str) -> None:
        if name == SUMMARY_TIMER:
            self._send_summary()
        elif name == ORDER_TIMER:
            if self.is_primary:
                self._leader_order()
        elif name == TAT_TIMER:
            self._suspect_leader()

    def on_message(self, src: NodeId, message: Message) -> None:
        handler = getattr(self, f"_on_{message.type_name.lower()}", None)
        if handler is not None:
            handler(src, message)

    # Pre-ordering -----------------------------------------------------------

    def _on_request(self, src: NodeId, msg: Message) -> None:
        cli, ts = msg["client"], msg["timestamp"]
        if self.reply_cache.get(cli, 0) >= ts:
            return
        # dedup: do not pre-order the same (client, ts) twice
        for entry in self.po_log.values():
            if entry["client"] == cli and entry["timestamp"] == ts:
                return
        self.po_next += 1
        payload = msg["payload"]
        fields = {
            "originator": self.index, "seq": self.po_next,
            "len": len(payload), "timestamp": ts, "client": cli,
            "payload": payload,
            "sig": self.auth.sign(self.index, self.po_next, ts),
        }
        self._store_po(self.index, self.po_next, fields)
        self.broadcast(Message("PORequest", fields))
        self._ack(self.index, self.po_next, self.index)

    def _store_po(self, originator: int, seq: int,
                  fields: Dict[str, Any]) -> None:
        key = (originator, seq)
        entry = self.po_log.setdefault(key, {
            "timestamp": 0, "client": 0, "payload": b"", "acks": [],
            "eligible": False})
        entry.update(timestamp=fields["timestamp"], client=fields["client"],
                     payload=fields["payload"])
        if seq == self.acked_upto.get(originator, 0) + 1:
            self.acked_upto[originator] = seq

    def _on_porequest(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: request length trusted from the wire --
        self.unchecked_alloc(msg["len"], "pre-order request buffer")
        if not self.check_auth(msg["sig"], msg["originator"], msg["seq"],
                               msg["timestamp"]):
            return
        self._store_po(msg["originator"], msg["seq"], dict(msg.fields))
        ack = Message("POAck", {
            "originator": msg["originator"], "seq": msg["seq"],
            "replica": self.index,
            "sig": self.auth.sign(msg["originator"], msg["seq"], self.index),
        })
        self.broadcast(ack)
        self._ack(msg["originator"], msg["seq"], self.index)

    def _on_poack(self, src: NodeId, msg: Message) -> None:
        if not self.check_auth(msg["sig"], msg["originator"], msg["seq"],
                               msg["replica"]):
            return
        self._ack(msg["originator"], msg["seq"], msg["replica"])

    def _ack(self, originator: int, seq: int, voter: int) -> None:
        entry = self.po_log.get((originator, seq))
        if entry is None:
            return
        if voter not in entry["acks"]:
            entry["acks"].append(voter)
        if len(entry["acks"]) >= self.config.quorum:
            entry["eligible"] = True
            self._arm_tat()

    def _arm_tat(self) -> None:
        if self._has_uncovered_eligible() and not self.node.timer_pending(
                TAT_TIMER):
            self.set_timer(TAT_TIMER, self.tat_threshold)

    def _flawed_coverage(self) -> Optional[Dict[int, int]]:
        """Coverage each originator could be ordered up to — as the real
        implementation computes it.

        -- intentional flaw: the minimum across ALL n summaries is used
        instead of the 2f+1-th highest value, and the same helper backs
        both the leader's ordering pass and the TAT monitor's notion of
        "the leader could have ordered this".  One replica freezing its
        POSummary therefore halts ordering AND keeps every monitor from
        suspecting the leader — "a quorum could not be formed even if one
        existed".
        """
        if len(self.summaries) < self.config.n:
            return None
        return {originator: min(vec.get(originator, 0)
                                for vec in self.summaries.values())
                for originator in range(self.config.n)}

    def _has_uncovered_eligible(self) -> bool:
        coverage = self._flawed_coverage()
        if coverage is None:
            return False
        return any(upto > self.ordered_upto.get(originator, 0)
                   for originator, upto in coverage.items())

    # Summaries ---------------------------------------------------------------

    def _send_summary(self) -> None:
        # The periodic pass doubles as the leader monitor's evaluation
        # point: (re)arm the TAT timer if coverable work sits unordered.
        self._arm_tat()
        vec = dict(self.acked_upto)
        msg = Message("POSummary", {
            "replica": self.index, "nentries": len(vec),
            "vec": _encode_vec(vec),
            "sig": self.auth.sign(self.index, tuple(sorted(vec.items()))),
        })
        self.broadcast(msg)
        self.summaries[self.index] = vec

    def _on_posummary(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: entry count trusted from the wire --
        self.unchecked_alloc(msg["nentries"], "summary entries")
        vec = _decode_vec(msg["vec"])
        if not self.check_auth(msg["sig"], msg["replica"],
                               tuple(sorted(vec.items()))):
            return
        self.summaries[msg["replica"]] = vec

    # Ordering ---------------------------------------------------------------

    def _leader_order(self) -> None:
        coverage = self._flawed_coverage()
        if coverage is None:
            return
        # Prime's leader emits a PrePrepare every ordering interval whether
        # or not the matrix advanced -- the fixed cadence is what the
        # turnaround-time monitor measures.  (This periodicity is also what
        # the seq-lying attack abuses: a stream of "old" sequence numbers
        # keeps resetting every monitor without ordering anything.)
        for o, upto in coverage.items():
            self.covered_upto[o] = max(self.covered_upto.get(o, 0), upto)
        matrix = _encode_vec(coverage)
        digest = digest_of(matrix)
        self.last_pp_seq += 1
        fields = {
            "view": self.view, "seq": self.last_pp_seq,
            "summary_count": len(self.summaries), "digest": digest,
            "matrix": matrix,
            "sig": self.auth.sign(self.view, self.last_pp_seq, digest),
        }
        entry = self._order_entry(self.last_pp_seq)
        entry.update(digest=digest, matrix=matrix, view=self.view)
        entry["prepares"].append(self.index)
        self.broadcast(Message("PrePrepare", fields))
        self._check_order_quorums(self.last_pp_seq)

    def _order_entry(self, seq: int) -> Dict[str, Any]:
        entry = self.order_log.get(seq)
        if entry is None:
            entry = {"digest": None, "matrix": None, "view": self.view,
                     "prepares": [], "commits": [], "commit_sent": False,
                     "executed": False}
            self.order_log[seq] = entry
        return entry

    def _on_preprepare(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: summary count trusted from the wire --
        self.unchecked_alloc(msg["summary_count"], "summary references")
        seq = msg["seq"]
        # -- intentional flaw: sequence numbers start at 1; seq 0 indexes
        # history[-1] in the C implementation --
        history_len = max(self.last_pp_seq, 1)
        self.unchecked_index(seq - 1, max(history_len, seq), "pp history")
        if src != self.primary_of(self.view):
            return
        if not self.check_auth(msg["sig"], msg["view"], seq, msg["digest"]):
            return
        if seq <= self.last_pp_seq:
            # -- intentional flaw: an old (or replayed) PrePrepare still
            # counts as leader progress, resetting the TAT timer.  A leader
            # lying its sequence numbers backwards therefore stalls
            # ordering while never being suspected.
            self.cancel_timer(TAT_TIMER)
            self._arm_tat_later()
            return
        self.last_pp_seq = seq
        self.cancel_timer(TAT_TIMER)
        entry = self._order_entry(seq)
        entry.update(digest=msg["digest"], matrix=msg["matrix"],
                     view=msg["view"])
        for voter in (src.index, self.index):
            if voter not in entry["prepares"]:
                entry["prepares"].append(voter)
        self.broadcast(Message("Prepare", {
            "view": msg["view"], "seq": seq, "digest": msg["digest"],
            "replica": self.index,
            "sig": self.auth.sign(msg["view"], seq, msg["digest"],
                                  self.index),
        }))
        self._check_order_quorums(seq)

    def _arm_tat_later(self) -> None:
        if self._has_uncovered_eligible():
            self.set_timer(TAT_TIMER, self.tat_threshold)

    def _on_prepare(self, src: NodeId, msg: Message) -> None:
        if msg["view"] != self.view:
            return
        entry = self._order_entry(msg["seq"])
        if msg["replica"] not in entry["prepares"]:
            entry["prepares"].append(msg["replica"])
        self._check_order_quorums(msg["seq"])

    def _on_commit(self, src: NodeId, msg: Message) -> None:
        if msg["view"] != self.view:
            return
        entry = self._order_entry(msg["seq"])
        if msg["replica"] not in entry["commits"]:
            entry["commits"].append(msg["replica"])
        self._check_order_quorums(msg["seq"])

    def _check_order_quorums(self, seq: int) -> None:
        entry = self.order_log.get(seq)
        if entry is None or entry["digest"] is None:
            return
        if (len(entry["prepares"]) >= self.config.quorum
                and not entry["commit_sent"]):
            entry["commit_sent"] = True
            if self.index not in entry["commits"]:
                entry["commits"].append(self.index)
            self.broadcast(Message("Commit", {
                "view": entry["view"], "seq": seq, "digest": entry["digest"],
                "replica": self.index,
                "sig": self.auth.sign(entry["view"], seq, self.index),
            }))
        if (len(entry["commits"]) >= self.config.quorum
                and entry["commit_sent"]):
            self._try_execute()

    def _try_execute(self) -> None:
        while True:
            entry = self.order_log.get(self.last_exec + 1)
            if (entry is None or entry["executed"]
                    or len(entry["commits"]) < self.config.quorum
                    or entry["matrix"] is None):
                break
            self.last_exec += 1
            entry["executed"] = True
            self._execute_matrix(_decode_vec(entry["matrix"]))
        if not self._has_uncovered_eligible():
            self.cancel_timer(TAT_TIMER)

    def _execute_matrix(self, coverage: Dict[int, int]) -> None:
        for originator in sorted(coverage):
            upto = coverage[originator]
            start = self.ordered_upto.get(originator, 0)
            for seq in range(start + 1, upto + 1):
                po = self.po_log.get((originator, seq))
                if po is None:
                    continue
                self.executed_count += 1
                cli, ts = po["client"], po["timestamp"]
                if self.reply_cache.get(cli, 0) >= ts:
                    continue
                self.reply_cache[cli] = ts
                result = digest_of(po["payload"])[:8]
                self.send(client(cli), Message("Reply", {
                    "timestamp": ts, "client": cli, "replica": self.index,
                    "result": result,
                    "sig": self.auth.sign(ts, cli, self.index),
                }))
            self.ordered_upto[originator] = max(start, upto)

    # Suspect-leader -----------------------------------------------------------

    def _suspect_leader(self) -> None:
        msg = Message("SuspectLeader", {
            "view": self.view, "replica": self.index,
            "tat": self.tat_threshold,
            "sig": self.auth.sign(self.view, self.index),
        })
        self.broadcast(msg)
        self._record_suspect(self.view, self.index)
        self.set_timer(TAT_TIMER, self.tat_threshold)

    def _on_suspectleader(self, src: NodeId, msg: Message) -> None:
        if msg["view"] != self.view:
            return
        if not self.check_auth(msg["sig"], msg["view"], msg["replica"]):
            return
        self._record_suspect(msg["view"], msg["replica"])

    def _record_suspect(self, view: int, voter: int) -> None:
        votes = self.suspects.setdefault(view, [])
        if voter not in votes:
            votes.append(voter)
        if len(votes) >= self.config.f + 1 and view == self.view:
            self.view += 1
            self.last_pp_seq = self.last_exec
            self.covered_upto = dict(self.ordered_upto)
            self.broadcast(Message("NewLeader", {
                "view": self.view, "replica": self.index,
                "sig": self.auth.sign(self.view, self.index),
            }))
            self._arm_tat_later()

    def _on_newleader(self, src: NodeId, msg: Message) -> None:
        if msg["view"] > self.view:
            self.view = msg["view"]
            self.last_pp_seq = self.last_exec
            self.covered_upto = dict(self.ordered_upto)
            self._arm_tat_later()

    # ------------------------------------------------------------- snapshot

    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state.update({
            "po_next": self.po_next,
            "po_log": {f"{o}:{s}": _copy_po(e)
                       for (o, s), e in self.po_log.items()},
            "acked_upto": dict(self.acked_upto),
            "summaries": {r: dict(v) for r, v in self.summaries.items()},
            "ordered_upto": dict(self.ordered_upto),
            "last_pp_seq": self.last_pp_seq,
            "order_log": {s: _copy_order(e)
                          for s, e in self.order_log.items()},
            "last_exec": self.last_exec,
            "reply_cache": dict(self.reply_cache),
            "suspects": {v: list(l) for v, l in self.suspects.items()},
            "executed_count": self.executed_count,
            "covered_upto": dict(self.covered_upto),
        })
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        super().restore_state(state)
        self.po_next = state["po_next"]
        self.po_log = {}
        for key, entry in state["po_log"].items():
            o, s = key.split(":")
            self.po_log[(int(o), int(s))] = _copy_po(entry)
        self.acked_upto = {int(k): v for k, v in state["acked_upto"].items()}
        self.summaries = {int(r): dict(v)
                          for r, v in state["summaries"].items()}
        self.ordered_upto = {int(k): v
                             for k, v in state["ordered_upto"].items()}
        self.last_pp_seq = state["last_pp_seq"]
        self.order_log = {int(s): _copy_order(e)
                          for s, e in state["order_log"].items()}
        self.last_exec = state["last_exec"]
        self.reply_cache = dict(state["reply_cache"])
        self.suspects = {int(v): list(l)
                         for v, l in state["suspects"].items()}
        self.executed_count = state["executed_count"]
        self.covered_upto = {int(k): v
                             for k, v in state["covered_upto"].items()}


def _copy_po(entry: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(entry)
    out["acks"] = list(entry["acks"])
    return out


def _copy_order(entry: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(entry)
    out["prepares"] = list(entry["prepares"])
    out["commits"] = list(entry["commits"])
    return out
