"""Protocol-level tests for the Prime implementation."""

import pytest

from repro.attacks.actions import DelayAction, DropAction, LyingAction
from repro.attacks.strategies import LyingStrategy
from repro.common.ids import replica
from repro.controller.harness import AttackHarness
from repro.systems.prime.testbed import prime_testbed


def run_prime(malicious="leader", mtype=None, action=None, warmup=1.5,
              window=3.0, seed=1):
    h = AttackHarness(prime_testbed(malicious=malicious, warmup=warmup,
                                    window=window), seed=seed)
    inst = h.start_run(take_warm_snapshot=False)
    if mtype:
        inst.proxy.set_policy(mtype, action)
    return h.measure_window(), inst


def views(inst, n=4):
    return [inst.world.app(replica(i)).view for i in range(n)
            if not inst.world.node(replica(i)).crashed]


class TestNormalCase:
    def test_pre_ordering_pipeline_progresses(self):
        sample, inst = run_prime()
        assert sample.throughput > 15
        assert inst.world.crashed_nodes() == []
        assert views(inst) == [0, 0, 0, 0]

    def test_latency_set_by_aggregation(self):
        sample, __ = run_prime()
        # one summary interval + one ordering interval + consensus
        assert 0.02 < sample.latency_avg < 0.08

    def test_summaries_flow(self):
        __, inst = run_prime()
        for i in range(4):
            assert len(inst.world.app(replica(i)).summaries) == 4


class TestSuspectLeaderProtection:
    def test_delay_preprepare_rotates_leader_and_recovers(self):
        sample, inst = run_prime(mtype="PrePrepare", action=DelayAction(1.0),
                                 window=4.0)
        assert all(v >= 1 for v in views(inst))
        # after rotation the benign leader restores near-baseline speed
        assert sample.throughput > 10


class TestHaltAttacks:
    def test_drop_posummary_halts_without_suspicion(self):
        sample, inst = run_prime(malicious="backup", mtype="POSummary",
                                 action=DropAction(1.0), window=5.0)
        assert sample.throughput < 1.0
        # the flawed quorum check also silences the suspect-leader protocol
        assert views(inst) == [0, 0, 0, 0]

    def test_lie_seq_backwards_stalls_without_suspicion(self):
        # spanning index 4 pins seq to the constant 1 (always "old")
        sample, inst = run_prime(mtype="PrePrepare",
                                 action=LyingAction(
                                     "seq", LyingStrategy("spanning", 4)),
                                 window=5.0)
        assert sample.throughput < 1.0
        assert views(inst) == [0, 0, 0, 0]
        assert sample.crashed_nodes == 0


class TestLyingCrashes:
    @pytest.mark.parametrize("mtype,field,malicious", [
        ("PORequest", "len", "leader"),
        ("POSummary", "nentries", "backup"),
        ("PrePrepare", "summary_count", "leader"),
    ])
    def test_negative_size_fields_crash(self, mtype, field, malicious):
        sample, __ = run_prime(malicious=malicious, mtype=mtype,
                               action=LyingAction(field, LyingStrategy("min")))
        assert sample.crashed_nodes == 3

    def test_seq_zero_start_bug(self):
        # the subtle start-at-1 validation error: seq=0 indexes history[-1]
        sample, __ = run_prime(mtype="PrePrepare",
                               action=LyingAction(
                                   "seq", LyingStrategy("spanning", 3)))
        assert sample.crashed_nodes == 3


class TestStateRoundTrip:
    def test_replica_snapshot_roundtrip(self):
        __, inst = run_prime(window=1.0)
        import pickle
        app = inst.world.app(replica(1))
        state = app.snapshot_state()
        app.restore_state(pickle.loads(pickle.dumps(state)))
        assert app.snapshot_state() == state
