"""Trace and event exporters: JSONL stream and Chrome trace-event format.

One output path for everything the platform observes: tracer spans and
:class:`~repro.common.logging.EventLog` records both serialize to JSONL
lines here, and the tracer's raw begin/end stream renders to the Chrome
``chrome://tracing`` / Perfetto trace-event JSON format (``ph`` B/E pairs,
balanced by construction, with virtual timestamps attached as args).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.common.logging import LogRecord
from repro.telemetry.tracer import Tracer

#: Chrome trace-event phase names for the tracer's raw event kinds.
_PHASES = {"B": "B", "E": "E", "I": "i"}


# ----------------------------------------------------------------- Chrome

def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Render the tracer's event stream as Chrome trace events.

    Timestamps are wall-clock microseconds since the tracer's epoch (the
    virtual clock rewinds at branch restores, which a trace viewer cannot
    display); each event carries its virtual time in ``args.virtual_time``.
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": "repro platform"},
    }]
    for kind, name, virtual, wall, args in tracer.events:
        event: Dict[str, Any] = {
            "name": name,
            "ph": _PHASES[kind],
            "ts": (wall - tracer.epoch) * 1e6,
            "pid": 1,
            "tid": 1,
            "args": {**args, "virtual_time": virtual},
        }
        if kind == "I":
            event["s"] = "t"
        events.append(event)
    return events


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    return {"traceEvents": chrome_trace_events(tracer),
            "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer: Tracer) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh)


# ------------------------------------------------------------------ JSONL

def span_jsonl_records(tracer: Tracer,
                       since: int = 0) -> Iterator[Dict[str, Any]]:
    """Tracer spans as JSONL-ready dicts."""
    for record in tracer.spans[since:]:
        yield {
            "type": record.phase,
            "name": record.name,
            "depth": record.depth,
            "t0_virtual": record.t0_virtual,
            "t1_virtual": record.t1_virtual,
            "wall_duration": record.wall_duration,
            "args": dict(record.args),
        }


def log_jsonl_records(records: Sequence[LogRecord],
                      filter_spec: Optional[str] = None
                      ) -> Iterator[Dict[str, Any]]:
    """EventLog records as JSONL-ready dicts, optionally filtered.

    ``filter_spec`` is ``None``/``"*"`` for everything, or a comma list of
    ``component`` or ``component:event`` selectors
    (e.g. ``"netem,node:crash"``).
    """
    selectors = None
    if filter_spec and filter_spec != "*":
        selectors = []
        for part in filter_spec.split(","):
            part = part.strip()
            if not part:
                continue
            component, __, event = part.partition(":")
            selectors.append((component, event or None))
    for record in records:
        if selectors is not None:
            if not any(record.component == component
                       and (event is None or record.event == event)
                       for component, event in selectors):
                continue
        yield {
            "type": "log",
            "t": record.time,
            "component": record.component,
            "event": record.event,
            "details": {k: _jsonable(v) for k, v in record.details.items()},
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_jsonl(fh_or_path, records: Iterable[Dict[str, Any]]) -> int:
    """Write dicts one-per-line; returns the number of lines written."""
    if isinstance(fh_or_path, str):
        with open(fh_or_path, "w") as fh:
            return write_jsonl(fh, records)
    count = 0
    for record in records:
        fh_or_path.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1
    return count
