"""Steward — hierarchical wide-area BFT (target system, Section V-C)."""

from repro.systems.steward.client import StewardClient
from repro.systems.steward.replica import StewardConfig, StewardReplica
from repro.systems.steward.schema import (STEWARD_CODEC, STEWARD_SCHEMA,
                                          STEWARD_SCHEMA_TEXT)
from repro.systems.steward.testbed import (STEWARD_ACTIVE_TYPES,
                                           steward_testbed)

__all__ = ["StewardClient", "StewardConfig", "StewardReplica",
           "STEWARD_CODEC", "STEWARD_SCHEMA", "STEWARD_SCHEMA_TEXT",
           "STEWARD_ACTIVE_TYPES", "steward_testbed"]
