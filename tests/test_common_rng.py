"""Tests for deterministic named random streams."""

from hypothesis import given, strategies as st

from repro.common.rng import RandomStream, RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "net") == derive_seed(42, "net")

    def test_differs_by_name(self):
        assert derive_seed(42, "net") != derive_seed(42, "cpu")

    def test_differs_by_root(self):
        assert derive_seed(1, "net") != derive_seed(2, "net")

    def test_64_bit(self):
        assert 0 <= derive_seed(7, "x") < 2 ** 64


class TestRandomStream:
    def test_same_seed_same_sequence(self):
        a = RandomStream(5, "s")
        b = RandomStream(5, "s")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_named_streams_independent(self):
        reg = RngRegistry(5)
        a = reg.stream("a")
        b = reg.stream("b")
        before = RandomStream(5, "b").random()
        a.random()  # consuming a must not perturb b
        assert b.random() == before

    def test_stream_identity_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("x") is reg.stream("x")

    def test_save_load_roundtrip(self):
        s = RandomStream(1, "x")
        s.random()
        state = s.save_state()
        first = [s.random() for _ in range(5)]
        s.load_state(state)
        assert [s.random() for _ in range(5)] == first

    def test_registry_save_load(self):
        reg = RngRegistry(9)
        reg.stream("a").random()
        state = reg.save_state()
        seq = [reg.stream("a").random() for _ in range(3)]
        reg.load_state(state)
        assert [reg.stream("a").random() for _ in range(3)] == seq

    def test_registry_load_creates_streams(self):
        reg = RngRegistry(9)
        reg.stream("a").random()
        state = reg.save_state()
        fresh = RngRegistry(9)
        fresh.load_state(state)
        assert fresh.stream("a").random() == reg.stream("a").random()

    def test_bytes_length(self):
        s = RandomStream(0, "b")
        assert len(s.bytes(16)) == 16
        assert s.bytes(0) == b""

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_derive_seed_stable_property(self, seed, name):
        assert derive_seed(seed, name) == derive_seed(seed, name)

    def test_randint_bounds(self):
        s = RandomStream(3, "i")
        for _ in range(100):
            assert 1 <= s.randint(1, 6) <= 6

    def test_choice_and_shuffle_deterministic(self):
        a, b = RandomStream(4, "c"), RandomStream(4, "c")
        items = list(range(10))
        ia, ib = list(items), list(items)
        a.shuffle(ia)
        b.shuffle(ib)
        assert ia == ib
        assert a.choice(items) == b.choice(items)
