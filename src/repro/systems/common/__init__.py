"""Shared scaffolding for the BFT systems under test."""

from repro.systems.common.auth import (SIGNATURE_LEN, ZERO_SIGNATURE,
                                       Authenticator)
from repro.systems.common.client import BaseClient
from repro.systems.common.config import BftConfig
from repro.systems.common.replica import BaseReplica, digest_of

__all__ = ["SIGNATURE_LEN", "ZERO_SIGNATURE", "Authenticator", "BaseClient",
           "BftConfig", "BaseReplica", "digest_of"]
