"""Zyzzyva client: fast path on 3f+1 speculative responses, slow path on
2f+1 plus a commit certificate round."""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.ids import NodeId, replica
from repro.metrics.collector import UPDATE_DONE
from repro.systems.common.client import RETRY_TIMER, BaseClient
from repro.wire.codec import Message

COMMIT_TIMER = "zyzzyva-commit"


class ZyzzyvaClient(BaseClient):
    """Speculative client with the fast/slow completion paths."""

    #: after the first SpecResponse, wait this long for the full 3f+1
    #: before falling back to the commit phase
    commit_wait = 0.0006

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.known_view = 0
        self.fast_completions = 0
        self.slow_completions = 0
        self._spec_votes: Dict[Any, List[int]] = {}
        self._spec_seq = 0
        self._commit_votes: List[int] = []
        self._committing = False

    def make_request(self, timestamp: int) -> Message:
        payload = f"update:{self.index}:{timestamp}".encode()
        return Message("Request", {
            "client": self.index, "timestamp": timestamp, "payload": payload,
            "sig": self.auth.sign(self.index, timestamp, payload),
        })

    def initial_targets(self) -> List[NodeId]:
        return [replica(self.known_view % self.config.n)]

    def classify_reply(self, src: NodeId, message: Message):
        return None  # replies handled directly in on_message

    def _issue_next(self) -> None:
        self._spec_votes.clear()
        self._commit_votes = []
        self._committing = False
        self.cancel_timer(COMMIT_TIMER)
        super()._issue_next()

    # ----------------------------------------------------------- responses

    def on_message(self, src: NodeId, message: Message) -> None:
        if message.type_name == "SpecResponse":
            self._on_spec_response(src, message)
        elif message.type_name == "LocalCommit":
            self._on_local_commit(src, message)

    def _on_spec_response(self, src: NodeId, msg: Message) -> None:
        if msg["client"] != self.index or msg["timestamp"] != self.timestamp:
            return
        self.known_view = max(self.known_view, msg["view"])
        key = (msg["hist"], bytes(msg["result"]))
        votes = self._spec_votes.setdefault(key, [])
        if msg["replica"] in votes:
            return
        votes.append(msg["replica"])
        self._spec_seq = msg["seq"]
        full = 3 * self.config.f + 1
        if len(votes) >= full:
            self._complete(fast=True)
        elif len(votes) >= self.config.quorum and not self._committing:
            # Enough for the slow path; give the fast path a brief chance.
            if not self.node.timer_pending(COMMIT_TIMER):
                self.set_timer(COMMIT_TIMER, self.commit_wait)

    def on_timer(self, name: str) -> None:
        if name == COMMIT_TIMER:
            self._start_commit_phase()
        else:
            super().on_timer(name)

    def _start_commit_phase(self) -> None:
        if self._committing:
            return
        best = max(self._spec_votes.values(), key=len, default=[])
        if len(best) < self.config.quorum:
            return  # keep waiting; the retry timer will re-drive
        self._committing = True
        self._commit_votes = []
        commit = Message("Commit", {
            "client": self.index, "cc_size": len(best),
            "view": self.known_view, "seq": self._spec_seq,
            "sig": self.auth.sign(self.index, self._spec_seq),
        })
        for i in range(self.config.n):
            self.send(replica(i), commit)

    def _on_local_commit(self, src: NodeId, msg: Message) -> None:
        if msg["client"] != self.index or not self._committing:
            return
        if msg["seq"] != self._spec_seq:
            return
        if src.index in self._commit_votes:
            return
        self._commit_votes.append(src.index)
        if len(self._commit_votes) >= self.config.quorum:
            self._complete(fast=False)

    def _complete(self, fast: bool) -> None:
        if fast:
            self.fast_completions += 1
        else:
            self.slow_completions += 1
        self.cancel_timer(RETRY_TIMER)
        self.cancel_timer(COMMIT_TIMER)
        self.completed += 1
        self.node.emit_metric(UPDATE_DONE, self.now() - self.sent_at)
        self._issue_next()

    # ------------------------------------------------------------- snapshot

    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state.update({
            "known_view": self.known_view,
            "fast_completions": self.fast_completions,
            "slow_completions": self.slow_completions,
            "spec_votes": [(k, list(v)) for k, v in self._spec_votes.items()],
            "spec_seq": self._spec_seq,
            "commit_votes": list(self._commit_votes),
            "committing": self._committing,
        })
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        super().restore_state(state)
        self.known_view = state["known_view"]
        self.fast_completions = state["fast_completions"]
        self.slow_completions = state["slow_completions"]
        self._spec_votes = {tuple(k): list(v)
                            for k, v in state["spec_votes"]}
        self._spec_seq = state["spec_seq"]
        self._commit_votes = list(state["commit_votes"])
        self._committing = state["committing"]
