"""Prime client: sends to its local replica; f+1 matching replies."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.common.ids import NodeId, replica
from repro.systems.common.client import BaseClient
from repro.wire.codec import Message


class PrimeClient(BaseClient):
    """Closed-loop client; the contact replica pre-orders on its behalf."""

    def make_request(self, timestamp: int) -> Message:
        payload = f"update:{self.index}:{timestamp}".encode()
        return Message("Request", {
            "client": self.index, "timestamp": timestamp, "payload": payload,
            "sig": self.auth.sign(self.index, timestamp, payload),
        })

    def initial_targets(self) -> List[NodeId]:
        # Prime clients talk to their local replica, not the leader.
        return [replica(self.index % self.config.n)]

    def classify_reply(self, src: NodeId,
                       message: Message) -> Optional[Tuple[int, Any]]:
        if message.type_name != "Reply" or message["client"] != self.index:
            return None
        return (message["timestamp"], bytes(message["result"]))
