#!/usr/bin/env python3
"""Quickstart: find a performance attack in PBFT in one minute.

This drives the whole platform end to end:

1. build a PBFT deployment (4 replicas + 1 client, each in its own VM,
   connected by the emulated 1 ms LAN), with replica 0 — the primary —
   designated malicious;
2. run the weighted-greedy search over the Pre-Prepare message type;
3. print what it found and what the search cost in platform time.

Run:  python examples/quickstart.py
"""

from repro.attacks.space import ActionSpaceConfig
from repro.search import WeightedGreedySearch
from repro.systems.pbft import pbft_testbed


def main() -> None:
    # The testbed factory is everything Turret needs: it knows how to boot
    # the system and which nodes the proxy controls.  The schema (the only
    # system description the user supplies) rides along inside it.
    factory = pbft_testbed(malicious="primary", warmup=3.0, window=6.0)

    # Keep the demo fast: a trimmed action space (full lying enumeration is
    # what the benchmarks exercise).
    space = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(0.5,),
                              duplicate_counts=(50,), include_divert=False,
                              include_lying=False)

    search = WeightedGreedySearch(factory, seed=7, space_config=space)
    report = search.run(message_types=["PrePrepare"])

    print(report.describe())
    print()
    print("platform time:", report.ledger.describe())
    for finding in report.findings:
        baseline = finding.baseline.throughput
        attacked = finding.attacked.throughput
        print(f"\n{finding.name}: {baseline:.1f} -> {attacked:.1f} upd/s "
              f"({finding.damage:.0%} damage)")


if __name__ == "__main__":
    main()
