"""Byzantine Generals — classroom target (Section V-D)."""

from repro.systems.byzgen.replica import ByzGeneral, ByzGeneralsConfig
from repro.systems.byzgen.schema import (BYZGEN_CODEC, BYZGEN_SCHEMA,
                                         BYZGEN_SCHEMA_TEXT)
from repro.systems.byzgen.testbed import BYZGEN_ACTIVE_TYPES, byzgen_testbed

__all__ = ["ByzGeneral", "ByzGeneralsConfig", "BYZGEN_CODEC",
           "BYZGEN_SCHEMA", "BYZGEN_SCHEMA_TEXT", "BYZGEN_ACTIVE_TYPES",
           "byzgen_testbed"]
