"""Counters, gauges, and fixed-bucket histograms.

The registry is built for the platform's hot paths: every recording method
starts with one ``enabled`` check, so a disabled registry costs a branch and
nothing else — no allocation, no dict lookup, no formatting.  Instruments
are identified by dotted names (``kernel.events``, ``netem.messages_sent``)
and created lazily on first touch.

Registry state is plain data (:meth:`InstrumentRegistry.save_state` /
:meth:`load_state`) and participates in world checkpoint/restore: when the
controller branches an execution, each branch resumes from the instrument
values the world had at the snapshot, exactly like
:class:`~repro.metrics.collector.MetricsCollector` events.  Instrument
values therefore describe *the current timeline*, while the
:class:`~repro.telemetry.tracer.Tracer` (which is never rewound) describes
what the platform did across all branches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Geometric bucket ladder spanning sub-millisecond latencies to large
#: event counts (1e-4 .. 5e3); values outside fall into min/max-clamped
#: edge buckets.  Fixed buckets keep observation O(len(bounds)) with no
#: per-sample storage, which is what makes always-on histograms affordable.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    m * (10.0 ** e) for e in range(-4, 4) for m in (1.0, 2.5, 5.0))


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max and percentiles."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.min = self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the p-th percentile by interpolating within a bucket.

        Bucket edges are clamped to the observed min/max, so small samples
        do not report values never seen.
        """
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if bucket_count and cumulative >= rank:
                lo = self.bounds[i - 1] if i > 0 else self.min
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi < lo:
                    hi = lo
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                return lo + (hi - lo) * max(0.0, min(1.0, fraction))
        return self.max

    # ------------------------------------------------------------- snapshot

    def save_state(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "total": self.total,
                "min": self.min, "max": self.max}

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        hist = cls(state["bounds"])
        hist.counts = list(state["counts"])
        hist.count = state["count"]
        hist.total = state["total"]
        hist.min = state["min"]
        hist.max = state["max"]
        return hist


class InstrumentRegistry:
    """Named counters, gauges, and histograms with one on/off switch."""

    def __init__(self, enabled: bool = False) -> None:
        #: configuration, not state: snapshot restore never flips this
        self.enabled = enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ----------------------------------------------------------------- write

    def count(self, name: str, n: float = 1) -> None:
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        if not self.enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(bounds or DEFAULT_BOUNDS)
        hist.observe(value)

    # ------------------------------------------------------------------ read

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -------------------------------------------------------------- snapshot

    def save_state(self) -> dict:
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {name: h.save_state()
                           for name, h in self._histograms.items()},
        }

    def load_state(self, state: Optional[dict]) -> None:
        self.clear()
        if not state:
            return
        self._counters.update(state["counters"])
        self._gauges.update(state["gauges"])
        for name, hist_state in state["histograms"].items():
            self._histograms[name] = Histogram.from_state(hist_state)
