"""Network emulation: devices, topologies, packets, transports, emulator."""

from repro.netem.devices import (BundledDevice, CsmaDevice, DeviceStats,
                                 NetDevice, make_device)
from repro.netem.emulator import (Delivery, EmulatorStats, HostPort,
                                  NetworkEmulator, Verdict)
from repro.netem.packets import (HEADER_BYTES, MTU, MessageEnvelope, Packet,
                                 ReassemblyBuffer, fragment)
from repro.netem.topology import LanTopology, PathSpec, SiteTopology, Topology
from repro.netem.transport import TCP, UDP, HostTransport

__all__ = [
    "BundledDevice", "CsmaDevice", "DeviceStats", "NetDevice", "make_device",
    "Delivery", "EmulatorStats", "HostPort", "NetworkEmulator", "Verdict",
    "HEADER_BYTES", "MTU", "MessageEnvelope", "Packet", "ReassemblyBuffer",
    "fragment", "LanTopology", "PathSpec", "SiteTopology", "Topology", "TCP",
    "UDP", "HostTransport",
]
