"""Durable run storage: crash-safe journals, checkpoints, and byte budgets.

Long hunts only pay off when progress survives process death and memory
pressure.  This package provides the three pieces that make a hunt
kill-``-9``-safe and memory-bounded:

* :class:`~repro.store.journal.Journal` — an append-only write-ahead log
  (JSONL, per-record CRC32, fsync-on-commit) with torn-tail recovery;
* :class:`~repro.store.runstore.RunStore` — journal + generation-swapped
  checkpoints for a hunt campaign, replayed on resume so a restarted hunt
  skips every already-completed scenario mid-pass;
* :class:`~repro.store.budget.SnapshotBudget` — byte-accounted LRU
  eviction for snapshot caches, with rebuild-on-miss charged to its own
  side-channel cost ledger.
"""

from repro.store.budget import SnapshotBudget, StoreReport
from repro.store.journal import Journal, atomic_write_json
from repro.store.runstore import RunStore

__all__ = ["Journal", "RunStore", "SnapshotBudget", "StoreReport",
           "atomic_write_json"]
