"""Tests for the Python code generator: byte-equivalence with the codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wire.codec import Message, ProtocolCodec
from repro.wire.codegen import compile_schema, generate_module_source
from repro.wire.parser import parse_schema

SCHEMA = parse_schema("""
protocol gen
message Alpha = 1 { a: u32  b: i16  c: bool  d: bytes[8]  e: varbytes<u16> }
message Beta = 7 { value: f64  tag: u8 }
""")
CODEC = ProtocolCodec(SCHEMA)
MODULE = compile_schema(SCHEMA)


class TestGeneratedModule:
    def test_source_is_persisted(self):
        assert "class Alpha" in MODULE.__source__
        assert generate_module_source(SCHEMA) == MODULE.__source__

    def test_classes_exist(self):
        assert MODULE.Alpha.TYPE_ID == 1
        assert MODULE.Beta.TYPE_ID == 7
        assert MODULE.Alpha.FIELDS == ("a", "b", "c", "d", "e")

    def test_pack_matches_codec(self):
        fields = {"a": 9, "b": -3, "c": True, "d": b"12345678", "e": b"hey"}
        assert MODULE.Alpha(**fields).pack() == \
            CODEC.encode(Message("Alpha", fields))

    def test_decode_dispatches_by_type(self):
        encoded = CODEC.encode(Message("Beta", {"value": 2.5, "tag": 4}))
        decoded = MODULE.decode(encoded)
        assert isinstance(decoded, MODULE.Beta)
        assert decoded.as_dict() == {"value": 2.5, "tag": 4}

    def test_decode_unknown_type(self):
        with pytest.raises(MODULE.DecodeError):
            MODULE.decode(b"\x63\x00")

    def test_decode_truncated(self):
        encoded = CODEC.encode(
            Message("Alpha", {"a": 1, "b": 2, "c": False,
                              "d": b"x" * 8, "e": b""}))
        with pytest.raises(MODULE.DecodeError):
            MODULE.decode(encoded[:-1])

    def test_decode_trailing(self):
        encoded = CODEC.encode(Message("Beta", {"value": 0.0, "tag": 0}))
        with pytest.raises(MODULE.DecodeError):
            MODULE.decode(encoded + b"!")

    def test_fixed_bytes_length_enforced(self):
        with pytest.raises(ValueError):
            MODULE.Alpha(1, 2, True, b"short", b"").pack()


class TestEquivalenceProperty:
    @settings(max_examples=150)
    @given(a=st.integers(0, 2**32 - 1), b=st.integers(-2**15, 2**15 - 1),
           c=st.booleans(), d=st.binary(min_size=8, max_size=8),
           e=st.binary(max_size=100))
    def test_pack_equivalence(self, a, b, c, d, e):
        fields = {"a": a, "b": b, "c": c, "d": d, "e": e}
        generated = MODULE.Alpha(**fields).pack()
        reference = CODEC.encode(Message("Alpha", fields))
        assert generated == reference
        assert MODULE.decode(reference).as_dict() == \
            CODEC.decode(generated).fields


class TestRealSchemas:
    @pytest.mark.parametrize("modpath,codec_name", [
        ("repro.systems.pbft.schema", "PBFT"),
        ("repro.systems.zyzzyva.schema", "ZYZZYVA"),
        ("repro.systems.steward.schema", "STEWARD"),
        ("repro.systems.prime.schema", "PRIME"),
        ("repro.systems.paxos.schema", "PAXOS"),
    ])
    def test_system_schemas_compile(self, modpath, codec_name):
        import importlib
        mod = importlib.import_module(modpath)
        schema = getattr(mod, f"{codec_name}_SCHEMA")
        codec = getattr(mod, f"{codec_name}_CODEC")
        generated = compile_schema(schema)
        for spec in schema.messages:
            values = spec.default_values()
            reference = codec.encode(Message(spec.name, values))
            cls = getattr(generated, spec.name)
            assert cls(**values).pack() == reference
