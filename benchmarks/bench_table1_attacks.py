"""Table I — the attacks Turret found across the five systems.

Two parts:

1. **Replay** — every Table I attack is executed as a proxy policy against
   its system and verified to qualify under the platform's attack rule
   (throughput damage beyond Δ, or benign-node crashes).  Two *negative*
   rows are included on purpose: Prime tolerates a delaying leader (the
   suspect-leader protocol rotates it out) and Aardvark mutes duplication
   floods — the robustness results the paper reports for those systems.
2. **Discovery** — the weighted-greedy search, given only the schema, finds
   attacks automatically on each system.
"""

import pytest

from repro.attacks.actions import (DelayAction, DropAction, DuplicateAction,
                                   LyingAction)
from repro.attacks.space import ActionSpaceConfig
from repro.attacks.strategies import LyingStrategy
from repro.controller.harness import AttackHarness
from repro.controller.monitor import AttackThreshold
from repro.search.weighted import WeightedGreedySearch
from repro.systems.aardvark.testbed import aardvark_testbed
from repro.systems.pbft.testbed import pbft_testbed, pbft_view_change_testbed
from repro.systems.prime.testbed import prime_testbed
from repro.systems.steward.testbed import steward_testbed
from repro.systems.zyzzyva.testbed import zyzzyva_testbed

from reporting import report, run_once

THRESHOLD = AttackThreshold(delta=0.08)


def lie(field, kind="min", operand=0.0):
    return LyingAction(field, LyingStrategy(kind, operand))


# (label, factory kwargs-free callable, message type, action, expectation)
# expectation: "perf" (damage > delta), "crash" (benign nodes die),
# "halt" (damage > 0.9), "tolerated" (NOT an attack: damage small, no crash)
TABLE1 = [
    # --- PBFT ---
    ("PBFT Delay Pre-Prepare 1s", lambda: pbft_testbed("primary"),
     "PrePrepare", DelayAction(1.0), "halt"),
    ("PBFT Drop Pre-Prepare 50%", lambda: pbft_testbed("primary"),
     "PrePrepare", DropAction(0.5), "halt"),
    ("PBFT Delay Status 1s", lambda: pbft_testbed("backup"),
     "Status", DelayAction(1.0), "perf"),
    ("PBFT Dup Pre-Prepare 50", lambda: pbft_testbed("primary"),
     "PrePrepare", DuplicateAction(50), "perf"),
    ("PBFT Dup Status 50", lambda: pbft_testbed("backup"),
     "Status", DuplicateAction(50), "dos"),
    ("PBFT Lie Pre-Prepare", lambda: pbft_testbed("primary"),
     "PrePrepare", lie("big_reqs"), "crash"),
    ("PBFT Lie Status", lambda: pbft_testbed("backup"),
     "Status", lie("nmsgs"), "crash"),
    # --- Steward ---
    ("Steward Delay Pre-Prepare 1s", lambda: steward_testbed("leader"),
     "PrePrepare", DelayAction(1.0), "halt"),
    ("Steward Delay Proposal 1s", lambda: steward_testbed("leader"),
     "Proposal", DelayAction(1.0), "halt"),
    ("Steward Delay Accept 1s", lambda: steward_testbed("remote_rep"),
     "Accept", DelayAction(1.0), "halt"),
    ("Steward Drop Accept", lambda: steward_testbed("remote_rep"),
     "Accept", DropAction(1.0), "halt"),
    ("Steward Dup GlobalViewChange 50", lambda: steward_testbed("remote_rep"),
     "GlobalViewChange", DuplicateAction(50), "perf"),
    ("Steward Dup CCSUnion 50", lambda: steward_testbed("remote_backup"),
     "CCSUnion", DuplicateAction(50), "perf"),
    ("Steward Lie Status", lambda: steward_testbed("remote_backup"),
     "Status", lie("nmsgs"), "crash"),
    ("Steward Lie GlobalViewChange view", lambda: steward_testbed("remote_rep"),
     "GlobalViewChange", lie("global_view", "max"), "crash"),
    # --- Zyzzyva ---
    ("Zyzzyva Drop SpecResponse", lambda: zyzzyva_testbed("backup"),
     "SpecResponse", DropAction(1.0), "perf"),
    ("Zyzzyva Delay OrderRequest 1s", lambda: zyzzyva_testbed("primary"),
     "OrderRequest", DelayAction(1.0), "halt"),
    ("Zyzzyva Lie OrderRequest size", lambda: zyzzyva_testbed("primary"),
     "OrderRequest", lie("msg_size"), "crash"),
    # --- Prime ---
    ("Prime Drop PO-Summary", lambda: prime_testbed("backup"),
     "POSummary", DropAction(1.0), "halt"),
    ("Prime Lie Pre-Prepare seq (stall)", lambda: prime_testbed("leader"),
     "PrePrepare", lie("seq", "spanning", 4), "halt"),
    ("Prime Lie Pre-Prepare seq=0", lambda: prime_testbed("leader"),
     "PrePrepare", lie("seq", "spanning", 3), "crash"),
    ("Prime Lie PO-Request len", lambda: prime_testbed("leader"),
     "PORequest", lie("len"), "crash"),
    ("Prime Lie PO-Summary nentries", lambda: prime_testbed("backup"),
     "POSummary", lie("nentries"), "crash"),
    ("Prime Delay Pre-Prepare (tolerated)", lambda: prime_testbed("leader"),
     "PrePrepare", DelayAction(1.0), "tolerated"),
    # --- Aardvark ---
    ("Aardvark Lie Pre-Prepare big_reqs", lambda: aardvark_testbed("primary"),
     "PrePrepare", lie("big_reqs"), "crash"),
    ("Aardvark Lie Pre-Prepare ndet", lambda: aardvark_testbed("primary"),
     "PrePrepare", lie("ndet_choices"), "crash"),
    ("Aardvark Lie Status nmsgs", lambda: aardvark_testbed("backup"),
     "Status", lie("nmsgs"), "crash"),
    ("Aardvark Delay Status 1s", lambda: aardvark_testbed("backup"),
     "Status", DelayAction(1.0), "dos"),
    ("Aardvark Dup Pre-Prepare 50 (muted)", lambda: aardvark_testbed("primary"),
     "PrePrepare", DuplicateAction(50), "tolerated"),
]


def evaluate(factory, mtype, action):
    harness = AttackHarness(factory, seed=1)
    harness.start_run(take_warm_snapshot=False)
    baseline = harness.measure_window()

    harness2 = AttackHarness(factory, seed=1)
    instance = harness2.start_run(take_warm_snapshot=False)
    instance.proxy.set_policy(mtype, action)
    attacked = harness2.measure_window()
    return baseline, attacked


def replay_all():
    results = []
    for label, make_factory, mtype, action, expect in TABLE1:
        factory = make_factory()
        baseline, attacked = evaluate(factory, mtype, action)
        damage = THRESHOLD.damage(baseline, attacked)
        results.append((label, expect, baseline, attacked, damage))
    return results


@pytest.mark.benchmark(group="table1")
def test_table1_replay(benchmark):
    results = run_once(benchmark, replay_all)
    rows = []
    failures = []
    for label, expect, baseline, attacked, damage in results:
        verdict = "attack" if (attacked.crashed_nodes > 0
                               or damage > THRESHOLD.delta) else "no attack"
        rows.append([label, f"{baseline.throughput:.1f}",
                     f"{attacked.throughput:.1f}",
                     f"{damage:.0%}", attacked.crashed_nodes,
                     expect, verdict])
        if expect == "crash" and attacked.crashed_nodes == 0:
            failures.append(f"{label}: expected crashes")
        elif expect == "halt" and damage < 0.75:
            failures.append(f"{label}: expected halt, damage {damage:.0%}")
        elif expect == "perf" and damage <= THRESHOLD.delta \
                and attacked.crashed_nodes == 0:
            failures.append(f"{label}: expected perf attack")
        elif expect == "dos" and damage <= 0.05:
            failures.append(f"{label}: expected measurable DoS")
        elif expect == "tolerated" and (damage > THRESHOLD.delta * 2
                                        or attacked.crashed_nodes):
            failures.append(f"{label}: expected the system to tolerate this")
    report("TABLE I: attack replay across the five systems "
           "(benign vs attacked upd/s)",
           ["attack", "benign", "attacked", "damage", "crashed",
            "expected", "verdict"], rows)
    assert not failures, "\n".join(failures)


DISCOVERY_SPACE = ActionSpaceConfig(
    delays=(1.0,), drop_probabilities=(0.5, 1.0), duplicate_counts=(50,),
    include_divert=False, include_lying=True)

DISCOVERY = [
    ("pbft", lambda: pbft_testbed("primary", warmup=2.0, window=3.0),
     ["PrePrepare"]),
    ("pbft-vc", lambda: pbft_view_change_testbed(warmup=2.0, window=3.0),
     ["ViewChange"]),
    ("steward", lambda: steward_testbed("remote_rep", warmup=2.0, window=4.0),
     ["Accept"]),
    ("zyzzyva", lambda: zyzzyva_testbed("backup", warmup=2.0, window=3.0),
     ["SpecResponse"]),
    ("prime", lambda: prime_testbed("backup", warmup=2.0, window=4.0),
     ["POSummary"]),
    ("aardvark", lambda: aardvark_testbed("backup", warmup=2.0, window=4.0),
     ["Status"]),
]


@pytest.mark.benchmark(group="table1")
def test_table1_discovery(benchmark):
    """Weighted greedy, given only the schema, finds an attack per system."""

    def run():
        out = []
        for name, make_factory, types in DISCOVERY:
            search = WeightedGreedySearch(make_factory(), seed=1,
                                          threshold=THRESHOLD,
                                          space_config=DISCOVERY_SPACE)
            out.append((name, search.run(message_types=types)))
        return out

    reports = run_once(benchmark, run)
    rows = []
    for name, search_report in reports:
        for finding in search_report.findings:
            rows.append([name, finding.describe()])
    report("TABLE I (discovery): weighted-greedy findings per system",
           ["system", "finding"], rows)
    for name, search_report in reports:
        assert search_report.findings, f"no attack discovered on {name}"
