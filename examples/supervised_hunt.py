#!/usr/bin/env python3
"""Supervised hunts: fault tolerance and checkpoint/resume in one script.

Long unattended campaigns are where Turret earns its keep, and also where
a single platform fault used to cost the most.  This example demonstrates
the supervision layer end to end:

1. a *fault-free* PBFT hunt as the reference;
2. the same hunt under a deterministic :class:`FaultPlan` that fails 15%
   of snapshot restores (with the kernel watchdog armed) — the supervisor
   retries with fresh testbed rebuilds and the hunt finds the *identical*
   attack set;
3. a hunt interrupted after its first pass and resumed from its JSON
   checkpoint — findings and the merged cost ledger match the
   uninterrupted run.

Run:  python examples/supervised_hunt.py
"""

import os
import tempfile

from repro.attacks.space import ActionSpaceConfig
from repro.controller.supervisor import FaultPlan
from repro.search.hunt import hunt
from repro.systems.pbft import pbft_testbed

SPACE = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(0.5, 1.0),
                          duplicate_counts=(50,), include_divert=False,
                          include_lying=False)
FACTORY = pbft_testbed(malicious="primary", warmup=1.0, window=2.0)
TYPES = ["PrePrepare"]
KW = dict(seed=1, message_types=TYPES, space_config=SPACE, max_wait=5.0)


def main() -> int:
    print("=== 1. fault-free reference hunt ===")
    clean = hunt(FACTORY, max_passes=3, **KW)
    print(clean.describe())

    print("\n=== 2. same hunt, 15% of snapshot restores fail ===")
    plan = FaultPlan(seed=11, snapshot_restore_rate=0.15, max_faults=4)
    print(plan.describe())
    faulty = hunt(FACTORY, max_passes=3, fault_plan=plan,
                  watchdog_limit=2_000_000, max_retries=3, **KW)
    print(faulty.describe())
    print(f"injected faults: {plan.total_injected}")
    assert faulty.attack_names() == clean.attack_names(), \
        "fault plan changed the attack set!"
    print("-> identical attack set; faults cost only "
          f"{faulty.total_ledger.get('retry'):.2f}s retry + "
          f"{faulty.total_ledger.get('rebuild'):.1f}s rebuild time")

    print("\n=== 3. interrupt after pass 1, resume from checkpoint ===")
    fd, ck = tempfile.mkstemp(suffix=".json", prefix="hunt-ck-")
    os.close(fd)
    try:
        hunt(FACTORY, max_passes=1, checkpoint_path=ck, **KW)
        print(f"pass 1 checkpointed to {ck}")
        resumed = hunt(FACTORY, max_passes=3, checkpoint_path=ck,
                       resume=True, **KW)
        print(resumed.describe())
        assert resumed.attack_names() == clean.attack_names()
        assert dict(resumed.total_ledger.by_category) == \
            dict(clean.total_ledger.by_category)
        print("-> resumed hunt reproduced the uninterrupted campaign "
              "(same findings, same merged ledger)")
    finally:
        os.unlink(ck)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
