"""Protocol-level tests for Aardvark (robust BFT) and the classroom Paxos."""

import pytest

from repro.attacks.actions import (DelayAction, DropAction, DuplicateAction,
                                   LyingAction)
from repro.attacks.strategies import LyingStrategy
from repro.common.ids import replica
from repro.controller.harness import AttackHarness
from repro.systems.aardvark.testbed import aardvark_testbed
from repro.systems.paxos.testbed import paxos_testbed


def run_aardvark(malicious="backup", mtype=None, action=None, warmup=1.0,
                 window=3.0, seed=1):
    h = AttackHarness(aardvark_testbed(malicious=malicious, warmup=warmup,
                                       window=window), seed=seed)
    inst = h.start_run(take_warm_snapshot=False)
    if mtype:
        inst.proxy.set_policy(mtype, action)
    return h.measure_window(), inst


class TestAardvarkRobustness:
    def test_baseline_comparable_to_pbft(self):
        sample, __ = run_aardvark()
        assert sample.throughput > 80

    def test_duplication_flood_is_muted(self):
        baseline, __ = run_aardvark()
        attacked, inst = run_aardvark(malicious="primary", mtype="PrePrepare",
                                      action=DuplicateAction(50))
        assert attacked.throughput > baseline.throughput * 0.9
        dropped = sum(inst.world.node(replica(i)).duplicates_dropped
                      for i in range(4))
        assert dropped > 1000

    def test_status_dup_flood_muted(self):
        baseline, __ = run_aardvark()
        attacked, __ = run_aardvark(mtype="Status",
                                    action=DuplicateAction(50))
        assert attacked.throughput > baseline.throughput * 0.9

    def test_moderate_status_delay_still_slows(self):
        baseline, __ = run_aardvark(window=4.0)
        attacked, __ = run_aardvark(mtype="Status", action=DelayAction(1.0),
                                    window=4.0)
        assert attacked.throughput < baseline.throughput * 0.95

    def test_large_status_delay_muted(self):
        baseline, __ = run_aardvark(window=4.0)
        attacked, inst = run_aardvark(mtype="Status", action=DelayAction(3.0),
                                      window=4.0)
        assert attacked.throughput > baseline.throughput * 0.97
        muted = sum(inst.world.app(replica(i)).muted_statuses
                    for i in (0, 2, 3))
        assert muted > 0

    @pytest.mark.parametrize("mtype,field,malicious", [
        ("PrePrepare", "big_reqs", "primary"),
        ("PrePrepare", "ndet_choices", "primary"),
        ("Status", "nmsgs", "backup"),
    ])
    def test_three_lying_attacks_still_crash(self, mtype, field, malicious):
        sample, __ = run_aardvark(malicious=malicious, mtype=mtype,
                                  action=LyingAction(field,
                                                     LyingStrategy("min")))
        assert sample.crashed_nodes == 3

    def test_delay_preprepare_still_hurts(self):
        # robustness mechanisms do not protect against a slow primary
        attacked, __ = run_aardvark(malicious="primary", mtype="PrePrepare",
                                    action=DelayAction(1.0), window=4.0)
        assert attacked.throughput < 10


def run_paxos(malicious=0, mtype=None, action=None, warmup=1.0, window=2.0,
              seed=1):
    h = AttackHarness(paxos_testbed(malicious_index=malicious, warmup=warmup,
                                    window=window), seed=seed)
    inst = h.start_run(take_warm_snapshot=False)
    if mtype:
        inst.proxy.set_policy(mtype, action)
    return h.measure_window(), inst


class TestPaxos:
    def test_baseline(self):
        sample, inst = run_paxos()
        assert sample.throughput > 120
        assert inst.world.crashed_nodes() == []

    def test_replicas_learn_chosen_values(self):
        __, inst = run_paxos()
        applied = [inst.world.app(replica(i)).last_applied for i in range(3)]
        assert min(applied) > 0
        assert max(applied) - min(applied) <= 2

    def test_delay_accept_attack(self):
        baseline, __ = run_paxos()
        attacked, __ = run_paxos(mtype="Accept", action=DelayAction(1.0),
                                 window=4.0)
        assert attacked.throughput < baseline.throughput * 0.05

    def test_drop_learn_still_replies(self):
        # the leader applies locally and replies; learners lag but the
        # client is served
        sample, __ = run_paxos(mtype="Learn", action=DropAction(1.0))
        assert sample.throughput > 100

    def test_heartbeat_keeps_leader(self):
        __, inst = run_paxos(window=3.0)
        assert all(inst.world.app(replica(i)).ballot == 0 for i in range(3))

    def test_snapshot_roundtrip(self):
        __, inst = run_paxos(window=1.0)
        import pickle
        for i in range(3):
            app = inst.world.app(replica(i))
            state = app.snapshot_state()
            app.restore_state(pickle.loads(pickle.dumps(state)))
            assert app.snapshot_state() == state
