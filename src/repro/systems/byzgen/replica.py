"""Byzantine Generals — OM(1) oral-messages agreement (classroom target).

One commander (replica 0) starts a new agreement round every
``round_interval``: it broadcasts an Order carrying the round's value.  Each
lieutenant relays the order it received to its peers and decides by majority
over {order, relays} once it holds n-1 votes (or when the round's collect
timer expires with at least two matching votes).  A decided round counts as
one completed update for the platform's performance metric.

Student-grade robustness: a round whose votes never arrive simply never
decides — there is no retransmission — so delaying or dropping Order
messages starves agreement, which is exactly what the course assignments
were tested against.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.ids import NodeId, replica
from repro.metrics.collector import UPDATE_DONE
from repro.runtime.app import Application
from repro.wire.codec import Message

ROUND_TIMER = "round"
COLLECT_TIMER_PREFIX = "collect:"


class ByzGeneralsConfig:
    def __init__(self, n: int = 4, round_interval: float = 0.05,
                 collect_timeout: float = 0.02) -> None:
        self.n = n
        self.round_interval = round_interval
        self.collect_timeout = collect_timeout

    @property
    def majority(self) -> int:
        return (self.n - 1) // 2 + 1


class ByzGeneral(Application):
    """One general: commander when index 0, lieutenant otherwise."""

    def __init__(self, index: int, config: ByzGeneralsConfig) -> None:
        super().__init__()
        self.index = index
        self.config = config
        self.round = 0
        # round -> {"votes": [values], "started": float, "decided": bool}
        self.rounds: Dict[int, Dict[str, Any]] = {}
        self.decisions = 0

    @property
    def is_commander(self) -> bool:
        return self.index == 0

    def peers(self) -> List[NodeId]:
        return [replica(i) for i in range(self.config.n) if i != self.index]

    def lieutenants(self) -> List[NodeId]:
        return [replica(i) for i in range(1, self.config.n)]

    # ---------------------------------------------------------------- rounds

    def on_start(self) -> None:
        if self.is_commander:
            self.set_timer(ROUND_TIMER, self.config.round_interval,
                           periodic=True)

    def on_timer(self, name: str) -> None:
        if name == ROUND_TIMER:
            self.round += 1
            value = self.round % 2  # attack or retreat, alternating
            order = Message("Order", {
                "round": self.round, "value": value, "commander": self.index,
                "sent_at": int(self.now() * 1_000_000)})
            for lt in self.lieutenants():
                self.send(lt, order)
        elif name.startswith(COLLECT_TIMER_PREFIX):
            self._conclude(int(name[len(COLLECT_TIMER_PREFIX):]))

    def _round_entry(self, round_no: int) -> Dict[str, Any]:
        entry = self.rounds.get(round_no)
        if entry is None:
            entry = {"votes": [], "started": self.now(), "decided": False,
                     "order_at": 0.0}
            self.rounds[round_no] = entry
        return entry

    def on_message(self, src: NodeId, message: Message) -> None:
        if self.is_commander:
            return  # the commander does not vote
        if message.type_name == "Order":
            if src != replica(0):
                return
            entry = self._round_entry(message["round"])
            entry["order_at"] = message["sent_at"] / 1_000_000
            entry["votes"].append(message["value"])
            relay = Message("Relay", {
                "round": message["round"], "value": message["value"],
                "relayer": self.index})
            for peer in self.lieutenants():
                if peer != self.node_id:
                    self.send(peer, relay)
            self._maybe_decide(message["round"])
            self.set_timer(COLLECT_TIMER_PREFIX + str(message["round"]),
                           self.config.collect_timeout)
        elif message.type_name == "Relay":
            entry = self._round_entry(message["round"])
            entry["votes"].append(message["value"])
            self._maybe_decide(message["round"])

    def _maybe_decide(self, round_no: int) -> None:
        entry = self.rounds.get(round_no)
        if entry is None or entry["decided"]:
            return
        if len(entry["votes"]) >= self.config.n - 1:
            self._decide(round_no, entry)

    def _conclude(self, round_no: int) -> None:
        """Collect timer expiry: decide if a majority agrees, else abort."""
        entry = self.rounds.get(round_no)
        if entry is None or entry["decided"]:
            return
        counts: Dict[int, int] = {}
        for v in entry["votes"]:
            counts[v] = counts.get(v, 0) + 1
        if counts and max(counts.values()) >= self.config.majority:
            self._decide(round_no, entry)
        # else: the round is aborted; no update completes

    def _decide(self, round_no: int, entry: Dict[str, Any]) -> None:
        entry["decided"] = True
        self.decisions += 1
        self.cancel_timer(COLLECT_TIMER_PREFIX + str(round_no))
        start = entry["order_at"] or entry["started"]
        self.node.emit_metric(UPDATE_DONE, max(0.0, self.now() - start))
        # keep memory bounded
        for old in [r for r in self.rounds if r < round_no - 64]:
            del self.rounds[old]

    # ------------------------------------------------------------- snapshot

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "index": self.index, "round": self.round,
            "rounds": {r: dict(e, votes=list(e["votes"]))
                       for r, e in self.rounds.items()},
            "decisions": self.decisions,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.index = state["index"]
        self.round = state["round"]
        self.rounds = {int(r): dict(e, votes=list(e["votes"]))
                       for r, e in state["rounds"].items()}
        self.decisions = state["decisions"]
