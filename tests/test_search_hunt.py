"""Tests for the multi-pass hunt loop."""

import pytest

from repro.attacks.space import ActionSpaceConfig
from repro.controller.monitor import AttackThreshold
from repro.search.hunt import hunt
from repro.systems.paxos.testbed import paxos_testbed

SPACE = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(1.0,),
                          duplicate_counts=(50,), include_divert=False,
                          include_lying=False)
FACTORY = paxos_testbed(malicious_index=0, warmup=1.0, window=2.0)


class TestHunt:
    def test_passes_accumulate_distinct_findings(self):
        result = hunt(FACTORY, seed=3, message_types=["Accept"],
                      space_config=SPACE, max_passes=3, max_wait=5.0)
        names = result.attack_names()
        assert len(names) == len(set(names))  # never re-finds an attack
        assert len(result.passes) >= 2
        assert result.findings

    def test_stops_when_pass_finds_nothing(self):
        # Heartbeat attacks in this trimmed space do little; the hunt must
        # terminate before the pass budget
        result = hunt(FACTORY, seed=3, message_types=["Heartbeat"],
                      threshold=AttackThreshold(delta=0.5),
                      space_config=SPACE, max_passes=4, max_wait=5.0)
        assert len(result.passes) <= 4
        assert result.passes[-1].findings == []

    def test_ledger_merged_across_passes(self):
        result = hunt(FACTORY, seed=3, message_types=["Accept"],
                      space_config=SPACE, max_passes=2, max_wait=5.0)
        assert result.total_time == pytest.approx(
            sum(p.total_time for p in result.passes))

    def test_seed_exclusions_respected(self):
        first = hunt(FACTORY, seed=3, message_types=["Accept"],
                     space_config=SPACE, max_passes=1, max_wait=5.0)
        records = {f.scenario.to_record() for f in first.findings}
        second = hunt(FACTORY, seed=3, message_types=["Accept"],
                      space_config=SPACE, max_passes=1, max_wait=5.0,
                      exclude=records)
        assert not records & {f.scenario.to_record()
                              for f in second.findings}

    def test_describe(self):
        result = hunt(FACTORY, seed=3, message_types=["Accept"],
                      space_config=SPACE, max_passes=1, max_wait=5.0)
        text = result.describe()
        assert "pass 1" in text and "hunt:" in text


class TestHuntCli:
    def test_hunt_command(self, capsys):
        from repro.cli import main
        code = main(["hunt", "paxos", "--types", "Accept", "--fast",
                     "--no-lying", "--warmup", "1", "--window", "2",
                     "--max-wait", "5", "--passes", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hunt:" in out
