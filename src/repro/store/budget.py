"""Byte-accounted LRU budgets for snapshot caches.

The PR-4 injection-point cache and the parallel prober's per-type contexts
hold full :class:`~repro.controller.branching.WorldSnapshot` objects, which
grow without bound over a long hunt.  A :class:`SnapshotBudget` bounds them:
entries are charged by their stored bytes, and admitting a new entry evicts
least-recently-used entries until the budget fits again.

Eviction is **deterministic**: the access sequence of a deterministic hunt
is deterministic, so the LRU order — and therefore which entries are
evicted, and when — is reproducible run to run.  A later access to an
evicted entry rebuilds it from the warm snapshot (the deterministic world
reproduces it exactly); the platform time that rebuild costs is charged to
the budget's own side-channel :class:`~repro.controller.costs.CostLedger`,
*not* the report ledger, so a budgeted run's report stays byte-identical
to an unbudgeted one.

Counters live in an always-on private
:class:`~repro.telemetry.instruments.InstrumentRegistry` under the
``snapshot.cache.*`` namespace (the :class:`~repro.parallel.health.
HealthMonitor` pattern) and surface through :class:`StoreReport` — a side
channel, never serialized into the deterministic report JSON.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.common.errors import ConfigError
from repro.controller.costs import CostLedger
from repro.telemetry.instruments import InstrumentRegistry

#: ledger category for platform time spent rebuilding evicted entries
CACHE_REBUILD = "cache_rebuild"


def parse_bytes(spec: str) -> int:
    """Parse a byte-size spec: plain int or with a k/M/G suffix."""
    text = str(spec).strip()
    multiplier = 1
    if text and text[-1].lower() in "kmg":
        multiplier = {"k": 1 << 10, "m": 1 << 20,
                      "g": 1 << 30}[text[-1].lower()]
        text = text[:-1]
    try:
        value = int(float(text) * multiplier)
    except ValueError:
        raise ConfigError(f"bad byte size {spec!r}; expected e.g. "
                          f"4096, 64k, 2M, 1G") from None
    if value <= 0:
        raise ConfigError(f"byte budget must be positive, got {spec!r}")
    return value


class SnapshotBudget:
    """LRU byte budget over opaque cache keys.

    The budget only does the accounting; the owning cache passes an
    ``on_evict`` callback that actually drops its entry.  The most
    recently admitted entry is never evicted by its own admission, so a
    budget smaller than a single snapshot still makes progress (exactly
    one resident entry) instead of thrashing.
    """

    def __init__(self, limit_bytes: int) -> None:
        if limit_bytes <= 0:
            raise ConfigError(
                f"snapshot budget must be positive, got {limit_bytes}")
        self.limit = limit_bytes
        #: key -> stored bytes, in least-recently-used-first order
        self._entries: "OrderedDict[Any, int]" = OrderedDict()
        #: side-channel accounting of rebuild-on-miss platform time
        self.ledger = CostLedger()
        self.registry = InstrumentRegistry(enabled=True)

    # ------------------------------------------------------------- accounting

    @property
    def held_bytes(self) -> int:
        return sum(self._entries.values())

    def counters(self) -> Dict[str, float]:
        counters = dict(self.registry.counters())
        counters["snapshot.cache.bytes_held"] = float(self.held_bytes)
        rebuild = self.ledger.get(CACHE_REBUILD)
        if rebuild:
            counters["snapshot.cache.rebuild_platform_seconds"] = rebuild
        return counters

    # -------------------------------------------------------------- lifecycle

    def admit(self, key: Any, nbytes: int,
              on_evict: Callable[[Any], None]) -> None:
        """Account a new entry, evicting LRU entries until the budget fits.

        ``on_evict(victim_key)`` must drop the owning cache's entry; the
        just-admitted key itself is exempt from this admission's evictions.
        """
        self._entries.pop(key, None)
        self._entries[key] = nbytes
        self.registry.count("snapshot.cache.insertions")
        self.registry.count("snapshot.cache.bytes_admitted", nbytes)
        while self.held_bytes > self.limit and len(self._entries) > 1:
            victim, size = next(iter(self._entries.items()))
            del self._entries[victim]
            self.registry.count("snapshot.cache.evictions")
            self.registry.count("snapshot.cache.bytes_evicted", size)
            on_evict(victim)

    def touch(self, key: Any) -> None:
        """Mark a cache hit, refreshing the key's LRU position."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self.registry.count("snapshot.cache.hits")

    def miss(self) -> None:
        self.registry.count("snapshot.cache.misses")

    def discard(self, key: Any) -> None:
        """Forget one key without counting an eviction (owner dropped it)."""
        self._entries.pop(key, None)

    def invalidate_all(self) -> None:
        """Forget everything (e.g. a testbed rebuild bumped the epoch)."""
        if self._entries:
            self.registry.count("snapshot.cache.invalidations",
                                len(self._entries))
        self._entries.clear()

    def note_rebuild(self, seconds: float) -> None:
        """Charge one rebuild-on-miss to the side-channel ledger."""
        self.registry.count("snapshot.cache.rebuilds")
        self.ledger.charge(CACHE_REBUILD, seconds)


@dataclass
class StoreReport:
    """What the durable store and snapshot budgets did during a hunt.

    A **side channel**, like ``worker_health``: resume and eviction
    activity differ between an interrupted and an uninterrupted run, so
    serializing this into the result JSON would break the byte-identity
    contract.  It is rendered for humans and exportable on its own.
    """

    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def eventful(self) -> bool:
        return any(value for value in self.counters.values())

    def merge_counters(self, counters: Dict[str, float]) -> None:
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value

    def one_line(self) -> str:
        interesting = (
            ("store.resume.evals_seeded", "evals replayed"),
            ("store.resume.types_seeded", "types replayed"),
            ("store.resume.passes_restored", "passes restored"),
            ("store.journal.records_appended", "journaled"),
            ("store.journal.torn_bytes_dropped", "torn bytes dropped"),
            ("store.checkpoint.fallbacks", "checkpoint fallbacks"),
            ("snapshot.cache.evictions", "evictions"),
            ("snapshot.cache.rebuilds", "rebuilds"),
        )
        parts = [f"{int(self.counters[name])} {label}"
                 for name, label in interesting if self.counters.get(name)]
        return "store: " + (", ".join(parts) if parts else "clean")

    def to_dict(self) -> Dict[str, float]:
        return dict(sorted(self.counters.items()))
