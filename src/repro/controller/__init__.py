"""The Turret controller: branching, measurement, cost accounting."""

from repro.controller.branching import (DistributedSnapshotter,
                                        NetemTimingModel, WorldSnapshot)
from repro.controller.costs import (BOOT, CATEGORIES, EXECUTION, REBUILD,
                                    RETRY, SNAPSHOT_RESTORE, SNAPSHOT_SAVE,
                                    CostLedger)
from repro.controller.harness import (AttackHarness, InjectionPoint,
                                      TestbedFactory, TestbedInstance)
from repro.controller.monitor import (AttackThreshold, PerfSample,
                                      PerformanceMonitor)
from repro.controller.supervisor import (FaultPlan, QuarantinedScenario,
                                         ScenarioQuarantined,
                                         ScenarioSupervisor, SupervisorEvent,
                                         SupervisorStats)

__all__ = [
    "DistributedSnapshotter", "NetemTimingModel", "WorldSnapshot", "BOOT",
    "CATEGORIES", "EXECUTION", "RETRY", "REBUILD", "SNAPSHOT_RESTORE",
    "SNAPSHOT_SAVE", "CostLedger", "AttackHarness", "InjectionPoint",
    "TestbedFactory", "TestbedInstance", "AttackThreshold", "PerfSample",
    "PerformanceMonitor", "FaultPlan", "QuarantinedScenario",
    "ScenarioQuarantined", "ScenarioSupervisor", "SupervisorEvent",
    "SupervisorStats",
]
