"""Fig. 4 — throughput of the bundled vs CSMA network device.

The paper: "while [the] CSMA network device can not process more than 1000
packets per second, the bundled network device can process 2500 packets per
second."  We flood each device with offered loads from 500 to 3500 packets/s
and measure delivered packets/s; the two saturation plateaus are the figure.
"""

import pytest

from repro.common.ids import replica
from repro.netem.emulator import NetworkEmulator
from repro.netem.topology import LanTopology
from repro.sim.kernel import SimKernel

from reporting import report, run_once

OFFERED_LOADS = [500, 1000, 1500, 2000, 2500, 3000, 3500]
MEASURE_SECONDS = 4.0


def measure_device(device_kind: str, offered_pps: int) -> float:
    kernel = SimKernel()
    emulator = NetworkEmulator(kernel, LanTopology(), device_kind=device_kind)
    src, dst = replica(0), replica(1)
    emulator.register_host(src)
    emulator.register_host(dst)
    delivered = []
    emulator.set_receiver(dst, lambda env: delivered.append(kernel.now))

    interval = 1.0 / offered_pps

    def send_one(i=[0]):
        emulator.transmit(src, dst, "udp", b"x" * 64)
        i[0] += 1
        if i[0] < offered_pps * MEASURE_SECONDS:
            kernel.schedule(interval, send_one)

    send_one()
    kernel.run_until(MEASURE_SECONDS + 2.0)
    window = [t for t in delivered if 1.0 <= t <= MEASURE_SECONDS]
    return len(window) / (MEASURE_SECONDS - 1.0)


def sweep():
    rows = []
    series = {}
    for kind in ("CsmaDevice", "BundledDevice"):
        series[kind] = [measure_device(kind, pps) for pps in OFFERED_LOADS]
    for i, pps in enumerate(OFFERED_LOADS):
        rows.append([pps, f"{series['CsmaDevice'][i]:.0f}",
                     f"{series['BundledDevice'][i]:.0f}"])
    return rows, series


@pytest.mark.benchmark(group="fig4")
def test_fig4_device_throughput(benchmark):
    rows, series = run_once(benchmark, sweep)
    report("FIG4: delivered packets/s vs offered load "
           "(paper: CSMA caps ~1000 pps, bundled ~2500 pps)",
           ["offered pps", "CSMA", "Bundled"], rows)

    csma_peak = max(series["CsmaDevice"])
    bundled_peak = max(series["BundledDevice"])
    # shape: CSMA saturates near 1000 pps, bundled near 2500 pps
    assert 900 <= csma_peak <= 1100
    assert 2300 <= bundled_peak <= 2700
    # below saturation both deliver the offered load
    assert series["CsmaDevice"][0] == pytest.approx(500, rel=0.05)
    assert series["BundledDevice"][3] == pytest.approx(2000, rel=0.05)
    # crossover ordering holds at every load
    for csma, bundled in zip(series["CsmaDevice"], series["BundledDevice"]):
        assert bundled >= csma * 0.99
