"""Tests for primitive wire field types."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import WireFormatError
from repro.wire.types import (BOOL, F32, F64, I8, I16, I32, I64, SCALAR_TYPES,
                              U8, U16, U32, U64, scalar_type)

INT_TYPES = [I8, U8, I16, U16, I32, U32, I64, U64]


class TestBounds:
    def test_i8(self):
        assert (I8.min_value, I8.max_value) == (-128, 127)

    def test_u8(self):
        assert (U8.min_value, U8.max_value) == (0, 255)

    def test_i32(self):
        assert (I32.min_value, I32.max_value) == (-2**31, 2**31 - 1)

    def test_u64(self):
        assert (U64.min_value, U64.max_value) == (0, 2**64 - 1)

    def test_sizes(self):
        assert [t.size for t in INT_TYPES] == [1, 1, 2, 2, 4, 4, 8, 8]
        assert F32.size == 4 and F64.size == 8 and BOOL.size == 1


class TestLookup:
    def test_all_names_resolve(self):
        for name in SCALAR_TYPES:
            assert scalar_type(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(WireFormatError):
            scalar_type("u128")


class TestPackUnpack:
    @pytest.mark.parametrize("t", INT_TYPES, ids=lambda t: t.name)
    def test_extremes_roundtrip(self, t):
        for value in (t.min_value, 0, t.max_value):
            packed = t.pack(value)
            assert len(packed) == t.size
            assert t.unpack(packed, 0) == value

    def test_bool_roundtrip(self):
        assert BOOL.unpack(BOOL.pack(True), 0) is True
        assert BOOL.unpack(BOOL.pack(False), 0) is False

    def test_float_roundtrip(self):
        assert F64.unpack(F64.pack(3.14159), 0) == pytest.approx(3.14159)

    def test_pack_out_of_range_raises(self):
        with pytest.raises(WireFormatError):
            U8.pack(256)
        with pytest.raises(WireFormatError):
            I8.pack(-129)

    def test_f32_overflow_raises(self):
        with pytest.raises(WireFormatError):
            F32.pack(1e308)

    def test_unpack_truncated_raises(self):
        with pytest.raises(WireFormatError):
            U32.unpack(b"\x01\x02", 0)

    def test_unpack_at_offset(self):
        data = b"\xff" + U16.pack(513)
        assert U16.unpack(data, 1) == 513


class TestWrap:
    def test_signed_overflow_wraps(self):
        assert I8.wrap(128) == -128
        assert I8.wrap(-129) == 127

    def test_unsigned_wraps_modularly(self):
        assert U8.wrap(256) == 0
        assert U8.wrap(-1) == 255

    def test_u32_wrap_large_negative(self):
        assert U32.wrap(-(2 ** 40)) == 0

    def test_float_saturates(self):
        assert F32.wrap(1e308) == F32.max_value
        assert F32.wrap(-1e308) == F32.min_value

    def test_bool_wrap(self):
        assert BOOL.wrap(17) is True
        assert BOOL.wrap(0) is False

    @pytest.mark.parametrize("t", INT_TYPES, ids=lambda t: t.name)
    @given(value=st.integers(min_value=-2**80, max_value=2**80))
    def test_wrap_always_in_range(self, t, value):
        wrapped = t.wrap(value)
        assert t.min_value <= wrapped <= t.max_value
        t.pack(wrapped)  # must always be encodable


class TestClampAndSpanning:
    def test_clamp(self):
        assert U8.clamp(300) == 255
        assert I8.clamp(-300) == -128
        assert I32.clamp(5) == 5

    @pytest.mark.parametrize("t", INT_TYPES + [F32, F64, BOOL],
                             ids=lambda t: t.name)
    def test_spanning_values_in_range_and_unique(self, t):
        span = t.spanning_values()
        assert len(span) == len(set(span))
        for v in span:
            assert t.contains(v) or not t.is_integer
            t.pack(t.wrap(v))

    def test_spanning_includes_extremes(self):
        span = I32.spanning_values()
        assert I32.min_value in span
        assert I32.max_value in span
        assert -1 in span and 0 in span

    def test_unsigned_spanning_excludes_negatives(self):
        assert all(v >= 0 for v in U16.spanning_values())

    def test_contains(self):
        assert I8.contains(-128)
        assert not I8.contains(128)
        assert not U8.contains(-1)
        assert F64.contains(1.5)
