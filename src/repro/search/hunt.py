"""The full hunt: repeat weighted-greedy passes until no attacks remain.

Section III-B: "the user will repeat the attack finding process again after
finding the strongest attack — until the method does not find any more
attacks."  :func:`hunt` automates that loop: each pass excludes every
scenario already found, and the hunt stops when a pass finds nothing new
(or the pass budget runs out).

Long campaigns are supervised and resumable:

* every pass runs under the search stack's classify-retry-quarantine
  supervision (see :mod:`repro.controller.supervisor`), optionally with a
  deterministic :class:`~repro.controller.supervisor.FaultPlan` injected and
  a kernel watchdog armed;
* with ``checkpoint_path`` set, the excluded scenarios, cluster weights,
  ledger, and completed passes are persisted to JSON after every pass, and
  ``hunt(..., resume=True)`` (or ``python -m repro hunt --resume``) picks an
  interrupted campaign back up, reproducing exactly what an uninterrupted
  hunt would have found;
* a ``KeyboardInterrupt`` mid-pass returns the partial result (with
  ``interrupted=True``) after writing a final checkpoint instead of
  propagating a bare traceback.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.attacks.space import ActionSpaceConfig
from repro.common.errors import ConfigError, SearchError
from repro.common.logging import LogRecord
from repro.controller.costs import CostLedger
from repro.controller.harness import TestbedFactory
from repro.controller.monitor import AttackThreshold
from repro.controller.supervisor import (FaultPlan, QuarantinedScenario,
                                         SupervisorStats)
from repro.faults.schedule import FaultSchedule
from repro.faults.validation import ValidationReport
from repro.search.results import AttackFinding, SearchReport
from repro.search.weighted import ClusterWeights, WeightedGreedySearch
from repro.telemetry.progress import ProgressLine
from repro.telemetry.summary import TelemetrySummary, summarize
from repro.telemetry.tracer import Tracer, maybe_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.health import HealthPolicy, WorkerHealthReport
    from repro.store.budget import StoreReport

#: v2 adds ``written_at_pass`` (how many passes the writer had completed);
#: v1 checkpoints migrate forward transparently
CHECKPOINT_VERSION = 2


@dataclass
class HuntResult:
    """Everything a multi-pass hunt produced."""

    passes: List[SearchReport] = field(default_factory=list)
    findings: List[AttackFinding] = field(default_factory=list)
    total_ledger: CostLedger = field(default_factory=CostLedger)
    #: scenarios set aside as inconclusive across all passes
    quarantined: List[QuarantinedScenario] = field(default_factory=list)
    #: aggregated supervision counters across all passes
    supervisor: SupervisorStats = field(default_factory=SupervisorStats)
    #: True when a KeyboardInterrupt cut the campaign short
    interrupted: bool = False
    #: number of passes restored from a checkpoint rather than executed
    resumed_passes: int = 0
    #: merged telemetry across all executed passes (None: telemetry off)
    telemetry: Optional[TelemetrySummary] = None
    #: EventLog records gathered from each pass's world (``log_events``)
    event_log: List[LogRecord] = field(default_factory=list)
    #: robustness validation of the findings (None unless requested)
    validation: Optional[ValidationReport] = None
    #: per-worker time attribution when the hunt ran with ``workers > 1``
    #: (side channel only — never serialized; the main result is
    #: byte-identical to a serial hunt's)
    worker_breakdown: Optional[list] = None
    #: what the self-healing layer did across the whole hunt (side channel
    #: too — never serialized into the deterministic result; None when the
    #: hunt was serial, ``eventful`` when any worker misbehaved)
    worker_health: Optional["WorkerHealthReport"] = None
    #: forensic explanations of the findings (side channel as well:
    #: computed post-merge with ``explain=True``, never serialized — the
    #: result JSON is byte-identical with forensics on or off)
    explanations: Optional[list] = None
    #: what the durable store and snapshot budgets did (side channel: an
    #: interrupted-and-resumed hunt differs from an uninterrupted one here,
    #: so serializing it would break the byte-identity contract)
    store_report: Optional["StoreReport"] = None

    def crashed_nodes(self) -> List[str]:
        """Union of crashed-node summaries across every pass."""
        seen = {}
        for report in self.passes:
            for line in report.crashed_nodes:
                seen[line.split(" ", 1)[0]] = line
        return sorted(seen.values())

    @property
    def total_time(self) -> float:
        return self.total_ledger.total()

    def attack_names(self) -> List[str]:
        return [f.name for f in self.findings]

    def describe(self) -> str:
        status = " (INTERRUPTED)" if self.interrupted else ""
        lines = [f"hunt: {len(self.findings)} attacks over "
                 f"{len(self.passes)} passes, "
                 f"platform time {self.total_time:.1f}s{status}"]
        if self.resumed_passes:
            lines.append(f"  resumed from checkpoint "
                         f"({self.resumed_passes} passes restored)")
        for i, report in enumerate(self.passes, start=1):
            names = ", ".join(report.attack_names()) or "(nothing new)"
            lines.append(f"  pass {i}: {names}")
        crashed = self.crashed_nodes()
        if crashed:
            lines.append(f"  crashed nodes: {', '.join(crashed)}")
        if self.supervisor.total_events:
            lines.append("  " + self.supervisor.describe())
        for q in self.quarantined:
            lines.append("  " + q.describe())
        if self.telemetry is not None:
            lines.append("  " + self.telemetry.one_line())
        if self.worker_health is not None and self.worker_health.eventful:
            lines.append("  " + self.worker_health.one_line())
        if self.store_report is not None and self.store_report.eventful:
            lines.append("  " + self.store_report.one_line())
        if self.explanations:
            lines.extend("  " + e.one_line() for e in self.explanations)
        if self.validation is not None:
            lines.extend("  " + line
                         for line in self.validation.describe().splitlines())
        return "\n".join(lines)


# ------------------------------------------------------------- checkpointing

def _checkpoint_dict(system: str, seed: int, excluded: Set[tuple],
                     weights: ClusterWeights,
                     result: HuntResult) -> Dict:
    from repro.analysis.reports import record_to_jsonable, report_to_dict
    return {
        "version": CHECKPOINT_VERSION,
        "system": system,
        "seed": seed,
        "excluded": [record_to_jsonable(r) for r in sorted(excluded)],
        "weights": dict(weights.weights),
        "ledger": dict(result.total_ledger.by_category),
        "passes": [report_to_dict(p) for p in result.passes],
        "written_at_pass": len(result.passes),
        "complete": bool(result.passes) and not result.passes[-1].findings,
    }


def save_checkpoint(path: str, system: str, seed: int, excluded: Set[tuple],
                    weights: ClusterWeights, result: HuntResult) -> None:
    """Durably persist the hunt state.

    Temp file + fsync + rename + parent-directory fsync (see
    :func:`repro.store.journal.atomic_write_json`): a crash at any instant
    leaves either the complete previous checkpoint or the complete new one
    — never the empty/torn file a plain write-then-rename can leave when
    the rename is durable before the data is.
    """
    from repro.store.journal import atomic_write_json
    data = _checkpoint_dict(system, seed, excluded, weights, result)
    atomic_write_json(path, data)


def migrate_checkpoint(data: Dict, origin: str = "checkpoint") -> Dict:
    """Bring an older checkpoint forward to the current schema."""
    version = data.get("version")
    if version == 1:
        data = dict(data)
        data["version"] = 2
        data["written_at_pass"] = len(data.get("passes", []))
        return data
    if version != CHECKPOINT_VERSION:
        raise ConfigError(f"{origin} has version {version!r}; "
                          f"this build reads versions 1-{CHECKPOINT_VERSION}")
    return data


def load_checkpoint(path: str) -> Dict:
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ConfigError(f"cannot read checkpoint {path}: {exc}") from None
    except ValueError as exc:
        raise ConfigError(
            f"checkpoint {path} is truncated or corrupt ({exc}); "
            f"delete it or restart the hunt without --resume") from None
    if not isinstance(data, dict):
        raise ConfigError(f"checkpoint {path} is not a JSON object")
    return migrate_checkpoint(data, origin=f"checkpoint {path}")


def _restore_from_checkpoint(data: Dict, seed: int,
                             excluded: Set[tuple],
                             weights: ClusterWeights,
                             result: HuntResult) -> None:
    from repro.analysis.reports import record_from_jsonable, report_from_dict
    if data["seed"] != seed:
        raise ConfigError(
            f"checkpoint was written by a hunt with seed {data['seed']}, "
            f"cannot resume with seed {seed}")
    excluded.update(tuple(record_from_jsonable(r)) for r in data["excluded"])
    weights.weights = dict(data["weights"])
    result.total_ledger = CostLedger(dict(data["ledger"]))
    for report_data in data["passes"]:
        report = report_from_dict(report_data)
        result.passes.append(report)
        result.findings.extend(report.findings)
        result.quarantined.extend(report.quarantined)
        result.supervisor.merge(report.supervisor)
        if report.telemetry is not None:
            if result.telemetry is None:
                result.telemetry = TelemetrySummary()
            result.telemetry.merge(report.telemetry)
    result.resumed_passes = len(result.passes)


# --------------------------------------------------------------------- hunt

def hunt(factory: TestbedFactory, seed: int = 0,
         message_types: Optional[Sequence[str]] = None,
         threshold: Optional[AttackThreshold] = None,
         space_config: Optional[ActionSpaceConfig] = None,
         max_passes: int = 5,
         max_wait: Optional[float] = None,
         exclude: Optional[Set[tuple]] = None,
         shared_pages: bool = True,
         delta_snapshots: bool = False,
         fault_plan: Optional[FaultPlan] = None,
         fault_schedule: Optional[FaultSchedule] = None,
         watchdog_limit: Optional[int] = None,
         max_retries: int = 2,
         checkpoint_path: Optional[str] = None,
         resume: bool = False,
         tracer: Optional[Tracer] = None,
         progress: Optional[ProgressLine] = None,
         log_events: bool = False,
         workers: int = 1,
         injection_cache: bool = False,
         health_policy: Optional["HealthPolicy"] = None,
         explain: bool = False,
         store_dir: Optional[str] = None,
         snapshot_budget: Optional[int] = None) -> HuntResult:
    """Run weighted-greedy passes until a pass finds nothing new.

    The cluster weights persist across passes, so what pass 1 learned about
    effective action categories speeds up pass 2.  With ``checkpoint_path``
    the hunt state is persisted after every pass; ``resume=True`` restores
    it (when the file exists) and continues from the next pass.

    Observability: ``tracer`` wraps each pass in a ``hunt.pass`` span and
    merges per-pass telemetry summaries into ``result.telemetry``;
    ``progress`` gets a ``pass N/M`` prefix and live updates from the pass;
    ``log_events`` enables each pass's world EventLog, whose records are
    collected into ``result.event_log``.

    ``workers > 1`` shards each pass's message types across a persistent
    pool (see :class:`~repro.parallel.executor.ScenarioExecutor`); the
    result — reports, ledger, checkpoints — is byte-identical to a serial
    hunt's, with the real per-worker spend in ``result.worker_breakdown``.
    ``injection_cache`` keeps one testbed (and its injection-point
    snapshots) alive across passes, so pass 2+ skips boot, warmup, and
    every injection seek.  The two are mutually exclusive: the cache
    changes what later passes charge, while the parallel merge's contract
    is to reproduce the cache-less serial ledger exactly.

    ``health_policy`` tunes the pool's self-healing (task deadlines, the
    per-worker restart budget, degrade-on-collapse — see
    :class:`~repro.parallel.health.HealthPolicy`); crash recovery replays
    tasks deterministically, so the byte-identity contract holds even when
    workers die mid-pass.  A pass that still aborts (``SearchError``, e.g.
    a pool collapse under ``degrade=False``) checkpoints the completed
    passes first, so ``--resume`` salvages them.

    ``explain=True`` computes a forensic
    :class:`~repro.forensics.explain.AttackExplanation` for every finding
    after the hunt converges (post-merge, on a dedicated testbed with a
    private ledger), into ``result.explanations`` — a side channel the
    serialized result never includes, so the hunt JSON stays byte-
    identical with forensics on or off, serial or parallel.

    ``store_dir`` makes the campaign **durable**: every completed probe is
    committed to a write-ahead journal (CRC32 + fsync) and the pass-level
    state to generation-swapped checkpoints in that directory (see
    :mod:`repro.store.runstore`).  A hunt killed at any instant — even
    ``SIGKILL`` mid-pass — resumes by pointing a new hunt at the same
    directory: journaled probes replay from disk (skipping completed
    scenarios *mid-pass*), everything else re-simulates, and the final
    result is byte-identical to the uninterrupted run's, serial or
    parallel.  The store subsumes ``checkpoint_path``/``resume`` and is
    mutually exclusive with them; resume activity is reported through
    ``result.store_report`` (a side channel) rather than
    ``resumed_passes``, which the byte-identity contract pins to 0.

    ``snapshot_budget`` bounds snapshot-cache memory (bytes): with
    ``injection_cache`` it caps the harness's injection-point snapshots,
    and with ``workers``/``store_dir`` it caps each prober's retained
    per-type contexts.  Eviction is LRU and deterministic; an evicted
    entry rebuilds from the warm snapshot with the platform time charged
    to the budget's side-channel ledger, so the report stays
    byte-identical to an unbudgeted run's.
    """
    if store_dir is not None and fault_plan is not None:
        raise ConfigError(
            "--store cannot run under a FaultPlan: the plan's fault stream "
            "is sequence-dependent, so a resumed hunt that skips journaled "
            "work would fault different operations than the original")
    if store_dir is not None and injection_cache:
        raise ConfigError(
            "--store and injection_cache are mutually exclusive: cached "
            "passes charge less than the serial ledger the store's replay "
            "reproduces")
    if store_dir is not None and (checkpoint_path is not None or resume):
        raise ConfigError(
            "--store subsumes --checkpoint/--resume: the store directory "
            "already checkpoints every pass and resumes automatically")
    if snapshot_budget is not None and not (
            injection_cache or store_dir is not None or workers > 1):
        raise ConfigError(
            "--snapshot-budget needs a snapshot cache to bound: combine it "
            "with --injection-cache, --store, or --workers")
    if workers > 1 and fault_plan is not None:
        raise ConfigError(
            "workers > 1 cannot run under a FaultPlan: the plan's fault "
            "stream is sequence-dependent, so sharding would change which "
            "operations fault (FaultSchedule chaos is supported)")
    if workers > 1 and injection_cache:
        raise ConfigError(
            "workers > 1 and injection_cache are mutually exclusive: "
            "cached passes charge less than the serial ledger the "
            "parallel merge reproduces")
    if workers == 1 and health_policy is not None:
        raise ConfigError(
            "worker health options (--worker-timeout/--worker-retries/"
            "--no-degrade) require workers > 1: a serial hunt has no "
            "worker pool to heal")
    result = HuntResult()
    progress = progress or ProgressLine()
    excluded: Set[tuple] = set(exclude or ())
    weights = ClusterWeights()
    system = "unknown"

    def attach_explanations() -> None:
        # Post-merge forensics: the finding list is already identical
        # across worker counts, so explaining it on a dedicated serial
        # harness yields worker-invariant explanations.
        if not explain or not result.findings or result.interrupted:
            return
        from repro.forensics.explain import explain_findings
        result.explanations = explain_findings(
            factory, result.findings, seed=seed, threshold=threshold,
            max_wait=max_wait, fault_schedule=fault_schedule,
            shared_pages=shared_pages, delta_snapshots=delta_snapshots,
            watchdog_limit=watchdog_limit)

    if resume:
        if checkpoint_path is None:
            raise ConfigError("resume requires a checkpoint path")
        if os.path.exists(checkpoint_path):
            data = load_checkpoint(checkpoint_path)
            _restore_from_checkpoint(data, seed, excluded, weights, result)
            system = data["system"]
            if data.get("complete"):
                # Campaign already converged; nothing to redo (but the
                # restored findings can still be explained on request).
                attach_explanations()
                return result

    store = None
    budget = None
    start_pass = result.resumed_passes
    if snapshot_budget is not None and injection_cache:
        from repro.store.budget import SnapshotBudget
        budget = SnapshotBudget(snapshot_budget)
    if store_dir is not None:
        from repro.store.budget import StoreReport
        from repro.store.runstore import RunStore
        store = RunStore(store_dir, seed=seed)
        data = store.load_checkpoint()
        if data is not None:
            data = migrate_checkpoint(data, origin=f"store {store_dir}")
            _restore_from_checkpoint(data, seed, excluded, weights, result)
            system = data["system"]
            # ``resumed_passes`` is serialized into the result; the byte-
            # identity contract pins it to 0 and reports restoration
            # through the store_report side channel instead.
            start_pass = result.resumed_passes
            result.resumed_passes = 0
            store.note_passes_restored(start_pass)
            if data.get("complete"):
                attach_explanations()
                report = StoreReport()
                report.merge_counters(store.counters())
                result.store_report = report
                store.close()
                return result

    executor = None
    search: Optional[WeightedGreedySearch] = None
    if workers > 1 or store is not None:
        # The store always routes through the executor — at workers=1 an
        # in-process prober whose merged report is byte-identical to the
        # serial algorithm's — because the prober's probe granularity is
        # what the journal records and replays.
        from repro.parallel.executor import ScenarioExecutor
        executor = ScenarioExecutor(
            factory, seed=seed, algorithm="weighted", workers=workers,
            threshold=threshold, space_config=space_config,
            max_wait=max_wait, shared_pages=shared_pages,
            delta_snapshots=delta_snapshots, fault_schedule=fault_schedule,
            watchdog_limit=watchdog_limit, max_retries=max_retries,
            tracer=tracer, log_events=log_events, health=health_policy,
            store=store, snapshot_budget=snapshot_budget)

    def collect_world_output() -> None:
        if not log_events:
            return
        if executor is not None:
            result.event_log.extend(executor.take_log_records())
        elif search is not None and search.harness.instance is not None:
            result.event_log.extend(search.harness.instance.world.log.records)

    try:
        for pass_index in range(start_pass, max_passes):
            progress.prefix = f"pass {pass_index + 1}/{max_passes} · "
            if executor is None and (search is None or not injection_cache):
                # injection_cache keeps one search (and its warm testbed,
                # snapshots, and cache) alive; otherwise each pass gets a
                # fresh stack, exactly as before.
                search = WeightedGreedySearch(
                    factory, seed=seed, threshold=threshold,
                    space_config=space_config, max_wait=max_wait,
                    weights=weights, shared_pages=shared_pages,
                    delta_snapshots=delta_snapshots, fault_plan=fault_plan,
                    fault_schedule=fault_schedule,
                    watchdog_limit=watchdog_limit, max_retries=max_retries,
                    tracer=tracer, progress=progress,
                    log_events=log_events,
                    injection_cache=injection_cache,
                    reuse_testbed=injection_cache,
                    snapshot_budget=budget)
            try:
                with maybe_span(tracer, "hunt.pass",
                                index=pass_index + 1) as span:
                    if executor is not None:
                        report = executor.run_pass(
                            message_types=message_types, exclude=excluded,
                            weights=weights)
                    else:
                        report = search.run(message_types=message_types,
                                            exclude=excluded)
                    span.set(findings=len(report.findings))
                    pass_mark = tracer.mark() if tracer is not None else 0
                if report.telemetry is not None and tracer is not None:
                    # the hunt.pass span closes after the pass summary was
                    # computed; fold it in so the merged totals include it
                    report.telemetry.merge(summarize(tracer,
                                                     since=pass_mark))
            except KeyboardInterrupt:
                result.interrupted = True
                collect_world_output()
                if checkpoint_path is not None:
                    save_checkpoint(checkpoint_path, system, seed, excluded,
                                    weights, result)
                if store is not None:
                    store.save_checkpoint(_checkpoint_dict(
                        system, seed, excluded, weights, result))
                return result
            except SearchError:
                # A pass aborted mid-recovery (worker fault under
                # --no-degrade, nondeterministic replay, ...).  Salvage
                # what completed: checkpoint the finished passes so
                # --resume continues the campaign instead of redoing it.
                collect_world_output()
                if checkpoint_path is not None:
                    save_checkpoint(checkpoint_path, system, seed, excluded,
                                    weights, result)
                if store is not None:
                    store.save_checkpoint(_checkpoint_dict(
                        system, seed, excluded, weights, result))
                raise
            system = report.system
            result.passes.append(report)
            result.total_ledger.merge(report.ledger)
            result.quarantined.extend(report.quarantined)
            result.supervisor.merge(report.supervisor)
            collect_world_output()
            if report.telemetry is not None:
                if result.telemetry is None:
                    result.telemetry = TelemetrySummary()
                result.telemetry.merge(report.telemetry)
            for finding in report.findings:
                excluded.add(finding.scenario.to_record())
                result.findings.append(finding)
            if checkpoint_path is not None:
                save_checkpoint(checkpoint_path, system, seed, excluded,
                                weights, result)
            if store is not None:
                store.save_checkpoint(_checkpoint_dict(
                    system, seed, excluded, weights, result))
            if not report.findings:
                break
    finally:
        if executor is not None:
            result.worker_breakdown = executor.worker_breakdown()
            result.worker_health = executor.worker_health()
            executor.close()
        if store is not None or budget is not None or (
                executor is not None and snapshot_budget is not None):
            from repro.store.budget import StoreReport
            store_report = StoreReport()
            if store is not None:
                store_report.merge_counters(store.counters())
                store.close()
            if budget is not None:
                store_report.merge_counters(budget.counters())
            if executor is not None:
                store_report.merge_counters(executor.budget_counters())
            result.store_report = store_report
    attach_explanations()
    return result
