"""Performance observation and the attack decision rule.

Definition 1 of the paper: a performance attack is a set of protocol
deviations by malicious nodes "resulting in a performance that is worse by
some Δ than in benign scenarios."  The monitor turns the metrics collector's
event stream into windowed :class:`PerfSample` values and applies the Δ
rule; node crashes caused by an action are always classified as attacks
(the paper reports them as a separate, most severe category).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class PerfSample:
    """Application performance observed over one window."""

    start: float
    end: float
    throughput: float          # updates completed per second
    latency_min: float
    latency_avg: float
    latency_max: float
    crashed_nodes: int = 0
    # Tail percentiles (appended with defaults: older callers construct
    # PerfSample positionally with the seven fields above).
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    #: completed updates in the window; 0 makes an empty window explicit
    #: (all latency fields are then defined as 0.0, not NaN)
    completed: int = 0

    @property
    def window(self) -> float:
        return self.end - self.start

    @property
    def empty(self) -> bool:
        """True when no update completed in the window (e.g. a full
        partition starved every client); all rate/latency fields are 0."""
        return self.completed == 0

    def describe(self) -> str:
        if self.empty and self.throughput == 0.0:
            out = "0.00 upd/s (empty window)"
        else:
            out = (f"{self.throughput:.2f} upd/s, "
                   f"lat {self.latency_avg * 1000:.2f} ms")
        if self.latency_p95:
            out += f" (p95 {self.latency_p95 * 1000:.2f} ms)"
        if self.crashed_nodes:
            out += f", {self.crashed_nodes} crashed"
        return out


@dataclass(frozen=True)
class AttackThreshold:
    """The Δ rule: how much degradation counts as an attack."""

    #: fraction of baseline throughput that must be lost (0.25 = 25%)
    delta: float = 0.25
    #: crashes of benign nodes are attacks regardless of throughput
    crash_is_attack: bool = True

    def damage(self, baseline: PerfSample, sample: PerfSample) -> float:
        """Relative throughput degradation (1.0 = total loss).

        Defined for every input: a zero-throughput baseline (an empty
        measurement window — e.g. the environment fully partitioned the
        clients) never divides by zero; damage is then 0 unless the sample
        crashed additional nodes, since no throughput existed to destroy.
        """
        if baseline.throughput <= 0:
            return 1.0 if sample.crashed_nodes > baseline.crashed_nodes else 0.0
        loss = (baseline.throughput - sample.throughput) / baseline.throughput
        return max(0.0, min(1.0, loss))

    def is_attack(self, baseline: PerfSample, sample: PerfSample) -> bool:
        if (self.crash_is_attack
                and sample.crashed_nodes > baseline.crashed_nodes):
            return True
        return self.damage(baseline, sample) > self.delta


class PerformanceMonitor:
    """Windowed view over a world's metrics collector."""

    def __init__(self, metrics: MetricsCollector) -> None:
        self.metrics = metrics

    def sample(self, start: float, end: float,
               crashed_nodes: int = 0) -> PerfSample:
        """Sample one window.  Well-defined on empty windows: when nothing
        completed (a full partition, every client crashed, an inverted
        window), every rate/latency field is exactly 0.0 and ``completed``
        is 0 — never NaN, never a division error."""
        from repro.metrics.collector import UPDATE_DONE
        throughput = self.metrics.throughput(start, end)
        lat_min, lat_avg, lat_max = self.metrics.latency_stats(start, end)
        p50, p95, p99 = self.metrics.latency_percentiles(start, end)
        completed = self.metrics.count_in(UPDATE_DONE, start, end)
        return PerfSample(start, end, throughput, lat_min, lat_avg, lat_max,
                          crashed_nodes, p50, p95, p99, completed)
