"""Shared machinery for the attack-finding algorithms."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.attacks.actions import AttackScenario, MaliciousAction
from repro.attacks.space import ActionSpace, ActionSpaceConfig
from repro.controller.costs import CostLedger
from repro.controller.harness import (AttackHarness, InjectionPoint,
                                      TestbedFactory)
from repro.controller.monitor import AttackThreshold, PerfSample
from repro.search.results import SearchReport


class SearchAlgorithm:
    """Base class: holds the harness, the action space, and the report."""

    name = "search"

    def __init__(self, factory: TestbedFactory, seed: int = 0,
                 threshold: Optional[AttackThreshold] = None,
                 space_config: Optional[ActionSpaceConfig] = None,
                 max_wait: Optional[float] = None) -> None:
        self.factory = factory
        self.seed = seed
        self.threshold = threshold or AttackThreshold()
        self.space_config = space_config
        self.max_wait = max_wait
        self.ledger = CostLedger()
        self.harness = AttackHarness(factory, seed, self.threshold,
                                     ledger=self.ledger)

    # --------------------------------------------------------------- helpers

    def _make_report(self) -> SearchReport:
        instance = self.harness.instance
        system = instance.name if instance is not None else "unknown"
        return SearchReport(self.name, system, ledger=self.ledger)

    def _space(self) -> ActionSpace:
        return ActionSpace(self.harness.instance.schema, self.space_config)

    def _search_types(self,
                      message_types: Optional[Sequence[str]]) -> List[str]:
        if message_types is not None:
            return list(message_types)
        return self.harness.instance.search_types()

    def _injection_for(self, message_type: str) -> Optional[InjectionPoint]:
        """Rewind to the warm state and run until the type is intercepted."""
        self.harness.restore(self.harness.warm_snapshot)
        self.harness.proxy.clear_policy()
        return self.harness.run_to_injection(message_type,
                                             max_wait=self.max_wait)

    def _evaluate(self, injection: InjectionPoint,
                  action: Optional[MaliciousAction]) -> PerfSample:
        return self.harness.branch_measure(injection, action)

    @staticmethod
    def _exclude_key(scenario: AttackScenario) -> tuple:
        return scenario.to_record()

    # ------------------------------------------------------------------ run

    def run(self, message_types: Optional[Sequence[str]] = None,
            exclude: Optional[Set[tuple]] = None) -> SearchReport:
        raise NotImplementedError
