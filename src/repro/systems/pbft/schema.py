"""PBFT wire protocol description.

This is the "description of the external API of the service" the user gives
Turret (Section I): message types and field types only, no semantics.  It is
written in the message-format DSL and compiled by :mod:`repro.wire`.

Field notes relevant to the paper's findings:

* ``PrePrepare.big_reqs`` and ``PrePrepare.ndet_choices`` — counts of
  variable-length structures carried by the pre-prepare (big requests and
  non-deterministic choices in the real PBFT wire format).  The
  implementation trusts them; negative values crash every benign replica.
* ``Status.nmsgs`` — the size of the piggybacked message list; same trust
  problem.
* ``ViewChange.nprepared`` / ``ViewChange.ncheckpoints`` — sizes of the
  prepared-certificate and checkpoint sets; lying on them faults the
  receivers (found in the 7-server configuration).
"""

from __future__ import annotations

from repro.wire import ProtocolCodec, ProtocolSchema, parse_schema

PBFT_SCHEMA_TEXT = """
protocol pbft

message Request = 1 {
    client:    u16
    timestamp: u64
    payload:   varbytes<u32>
    sig:       bytes[16]
}

message PrePrepare = 2 {
    view:         u32
    seq:          i32
    big_reqs:     i32
    ndet_choices: i16
    digest:       bytes[32]
    timestamp:    u64
    client:       u16
    payload:      varbytes<u32>
    sig:          bytes[16]
}

message Prepare = 3 {
    view:    u32
    seq:     i32
    digest:  bytes[32]
    replica: u16
    sig:     bytes[16]
}

message Commit = 4 {
    view:    u32
    seq:     i32
    digest:  bytes[32]
    replica: u16
    sig:     bytes[16]
}

message Reply = 5 {
    view:      u32
    timestamp: u64
    client:    u16
    replica:   u16
    result:    varbytes<u16>
    sig:       bytes[16]
}

message Checkpoint = 6 {
    seq:     i32
    digest:  bytes[32]
    replica: u16
    sig:     bytes[16]
}

message Status = 7 {
    replica:    u16
    view:       u32
    last_exec:  i32
    stable_seq: i32
    nmsgs:      i32
    sig:        bytes[16]
}

message ViewChange = 8 {
    new_view:     u32
    last_stable:  i32
    nprepared:    i32
    ncheckpoints: i32
    replica:      u16
    sig:          bytes[16]
}

message NewView = 9 {
    view:    u32
    nvc:     i32
    primary: u16
    sig:     bytes[16]
}
"""

PBFT_SCHEMA: ProtocolSchema = parse_schema(PBFT_SCHEMA_TEXT)
PBFT_CODEC = ProtocolCodec(PBFT_SCHEMA)
