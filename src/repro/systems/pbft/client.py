"""PBFT client: closed loop, one outstanding request, f+1 matching replies."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import NodeId, replica
from repro.systems.common.client import BaseClient
from repro.wire.codec import Message


class PbftClient(BaseClient):
    """Tracks the current view from replies to aim requests at the primary."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.known_view = 0

    def make_request(self, timestamp: int) -> Message:
        payload = f"update:{self.index}:{timestamp}".encode()
        return Message("Request", {
            "client": self.index, "timestamp": timestamp, "payload": payload,
            "sig": self.auth.sign(self.index, timestamp, payload),
        })

    def initial_targets(self) -> List[NodeId]:
        return [replica(self.known_view % self.config.n)]

    def classify_reply(self, src: NodeId,
                       message: Message) -> Optional[Tuple[int, Any]]:
        if message.type_name != "Reply":
            return None
        if message["client"] != self.index:
            return None
        self.known_view = max(self.known_view, message["view"])
        return (message["timestamp"], bytes(message["result"]))

    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state["known_view"] = self.known_view
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        super().restore_state(state)
        self.known_view = state["known_view"]
