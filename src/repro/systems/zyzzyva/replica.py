"""Zyzzyva replica — speculative BFT (Kotla et al., SOSP 2007).

Normal case: the primary orders a request (OrderRequest) and every replica
executes it *speculatively*, sending a SpecResponse straight to the client.
The client commits on 3f+1 matching speculative responses (fast path); with
only 2f+1 it sends a Commit certificate back to the replicas and completes
on 2f+1 LocalCommits (slow path).  Dropping one replica's SpecResponse
therefore removes the benefit of speculation — the attack the paper reports
as increasing latency from 3.95 ms to 5.32 ms on average.

Intentional implementation flaws (what Turret found): ``OrderRequest.
msg_size``, ``Commit.cc_size``, ``ViewChange.nccs``, and ``NewView.size``
are trusted allocation sizes.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional, Tuple

from repro.common.ids import NodeId, client
from repro.systems.common.auth import Authenticator
from repro.systems.common.config import BftConfig
from repro.systems.common.replica import BaseReplica, digest_of
from repro.wire.codec import Message

PROGRESS_TIMER = "progress"


class ZyzzyvaReplica(BaseReplica):
    """One Zyzzyva replica."""

    def __init__(self, index: int, config: BftConfig,
                 auth: Optional[Authenticator] = None) -> None:
        super().__init__(index, config, auth)
        self.next_seq = 0              # primary: last ordered seq
        self.last_spec = 0             # highest speculatively executed seq
        self.history = b"\x00" * 32    # rolling history digest
        # seq -> order-request fields (for the max-cc / commit bookkeeping)
        self.ordered: Dict[int, Dict[str, Any]] = {}
        self.max_committed = 0
        # (client, timestamp) -> payload for requests awaiting ordering
        self.pending: Dict[Tuple[int, int], bytes] = {}
        self.reply_cache: Dict[int, int] = {}      # client -> last timestamp
        self.ihtp_votes: Dict[int, list] = {}      # view -> voter list
        self.vc_votes: Dict[int, list] = {}

    # ---------------------------------------------------------------- start

    def on_start(self) -> None:
        pass

    def on_message(self, src: NodeId, message: Message) -> None:
        handler = getattr(self, f"_on_{message.type_name.lower()}", None)
        if handler is not None:
            handler(src, message)

    # Request --------------------------------------------------------------

    def _on_request(self, src: NodeId, msg: Message) -> None:
        cli, ts = msg["client"], msg["timestamp"]
        if self.reply_cache.get(cli, 0) >= ts:
            return
        if self.is_primary:
            key = (cli, ts)
            if key in self.pending:
                return  # already ordered, spec responses are in flight
            self.pending[key] = msg["payload"]
            self._order(cli, ts, msg["payload"])
        else:
            self.pending[(cli, ts)] = msg["payload"]
            if not self.node.timer_pending(PROGRESS_TIMER):
                self.set_timer(PROGRESS_TIMER, self.config.recovery_timeout)

    def _order(self, cli: int, ts: int, payload: bytes) -> None:
        self.next_seq += 1
        digest = digest_of(payload)
        fields = {
            "view": self.view, "seq": self.next_seq, "hist": self.history,
            "digest": digest, "msg_size": len(payload), "timestamp": ts,
            "client": cli, "payload": payload,
            "sig": self.auth.sign(self.view, self.next_seq, digest),
        }
        self.broadcast(Message("OrderRequest", fields))
        self._speculate(Message("OrderRequest", fields))

    # OrderRequest ----------------------------------------------------------

    def _on_orderrequest(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: embedded request size trusted from the wire --
        self.unchecked_alloc(msg["msg_size"], "request buffer")
        if msg["view"] != self.view or src != self.primary_of(msg["view"]):
            return
        if not self.check_auth(msg["sig"], msg["view"], msg["seq"],
                               msg["digest"]):
            return
        self._speculate(msg)

    def _speculate(self, msg: Message) -> None:
        seq = msg["seq"]
        if seq != self.last_spec + 1:
            return  # hole: real Zyzzyva sends FillHole; we wait for ordering
        self.last_spec = seq
        self.history = hashlib.blake2b(
            self.history + msg["digest"], digest_size=32).digest()
        self.ordered[seq] = dict(msg.fields)
        self.pending.pop((msg["client"], msg["timestamp"]), None)
        if not self.pending:
            self.cancel_timer(PROGRESS_TIMER)
        self.reply_cache[msg["client"]] = msg["timestamp"]
        result = digest_of(msg["payload"])[:8]
        self.send(client(msg["client"]), Message("SpecResponse", {
            "view": self.view, "seq": seq, "hist": self.history,
            "digest": msg["digest"], "client": msg["client"],
            "timestamp": msg["timestamp"], "replica": self.index,
            "result": result,
            "sig": self.auth.sign(seq, msg["timestamp"], self.index),
        }))

    # Commit (client -> replicas, slow path) ---------------------------------

    def _on_commit(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: commit-certificate size trusted --
        self.unchecked_alloc(msg["cc_size"], "commit certificate entries")
        if msg["seq"] > self.last_spec:
            return
        self.max_committed = max(self.max_committed, msg["seq"])
        self.send(client(msg["client"]), Message("LocalCommit", {
            "view": self.view, "seq": msg["seq"], "replica": self.index,
            "client": msg["client"],
            "sig": self.auth.sign(msg["seq"], self.index),
        }))

    # View change (minimal) ---------------------------------------------------

    def on_timer(self, name: str) -> None:
        if name == PROGRESS_TIMER and self.pending:
            self.broadcast(Message("IHateThePrimary", {
                "view": self.view, "replica": self.index,
                "sig": self.auth.sign(self.view, self.index),
            }))
            self.set_timer(PROGRESS_TIMER, self.config.recovery_timeout)

    def _on_ihatetheprimary(self, src: NodeId, msg: Message) -> None:
        if msg["view"] != self.view:
            return
        votes = self.ihtp_votes.setdefault(msg["view"], [])
        if msg["replica"] not in votes:
            votes.append(msg["replica"])
        if len(votes) >= self.config.f + 1:
            self.broadcast(Message("ViewChange", {
                "new_view": self.view + 1, "nccs": 1, "replica": self.index,
                "sig": self.auth.sign(self.view + 1, self.index),
            }))

    def _on_viewchange(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: certificate count trusted --
        self.unchecked_alloc(msg["nccs"], "commit certificates")
        nv = msg["new_view"]
        if nv <= self.view:
            return
        votes = self.vc_votes.setdefault(nv, [])
        if msg["replica"] not in votes:
            votes.append(msg["replica"])
        if (len(votes) >= self.config.quorum
                and self.primary_of(nv) == self.node_id):
            self.broadcast(Message("NewView", {
                "view": nv, "size": len(votes), "primary": self.index,
                "sig": self.auth.sign(nv, self.index),
            }))
            self.view = nv

    def _on_newview(self, src: NodeId, msg: Message) -> None:
        # -- intentional flaw: the new-view proof size is trusted --
        self.unchecked_alloc(msg["size"], "new-view certificate")
        if msg["view"] <= self.view:
            return
        if src != self.primary_of(msg["view"]):
            return
        self.view = msg["view"]
        self.cancel_timer(PROGRESS_TIMER)

    # ------------------------------------------------------------- snapshot

    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state.update({
            "next_seq": self.next_seq,
            "last_spec": self.last_spec,
            "history": self.history,
            "ordered": {s: dict(f) for s, f in self.ordered.items()},
            "max_committed": self.max_committed,
            "pending": dict(self.pending),
            "reply_cache": dict(self.reply_cache),
            "ihtp_votes": {v: list(l) for v, l in self.ihtp_votes.items()},
            "vc_votes": {v: list(l) for v, l in self.vc_votes.items()},
        })
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        super().restore_state(state)
        self.next_seq = state["next_seq"]
        self.last_spec = state["last_spec"]
        self.history = state["history"]
        self.ordered = {s: dict(f) for s, f in state["ordered"].items()}
        self.max_committed = state["max_committed"]
        self.pending = dict(state["pending"])
        self.reply_cache = dict(state["reply_cache"])
        self.ihtp_votes = {v: list(l) for v, l in state["ihtp_votes"].items()}
        self.vc_votes = {v: list(l) for v, l in state["vc_votes"].items()}
