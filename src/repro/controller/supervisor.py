"""The supervision layer: classify-retry-quarantine for long hunts.

Turret's value is long unattended attack-finding campaigns, yet a platform
fault anywhere in a pass — a snapshot that fails to restore, a simulation
inconsistency mid-window, a livelocked event storm tripping the kernel
watchdog — would otherwise abort the whole hunt and throw away every
scenario evaluated so far.  This module makes the harness itself
fault-tolerant:

* :class:`FaultPlan` — a deterministic platform fault-injection plan,
  driven by :mod:`repro.common.rng`, that makes snapshot save/restore,
  boot, and proxy operations fail at configured rates (or exact counts).
  It exists so the recovery paths below are *provable* in tests rather
  than exercised only when real hardware misbehaves.
* :class:`ScenarioSupervisor` — wraps every branch-measure and
  injection-seek in classify-retry-quarantine logic.  Transient platform
  errors get bounded retries (with a fresh testbed rebuild between
  attempts, charged to the ledger under the ``retry``/``rebuild``
  categories); persistent failures quarantine the scenario as
  ``inconclusive`` instead of killing the pass.

Error taxonomy (what counts as transient):

=================  ==========================================================
transient          ``SnapshotError``, ``SimulationError`` (including
                   ``WatchdogTimeout``), ``NetworkError``, ``ProxyError`` —
                   platform operations that a rebuilt testbed can redo
fatal              ``ConfigError``, ``SearchError``, ``WireFormatError``,
                   and any non-Turret exception — retrying cannot help
=================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import (NetworkError, ProxyError, SimulationError,
                                 SnapshotError, TurretError, WatchdogTimeout)
from repro.common.rng import RandomStream
from repro.controller.costs import RETRY, CostLedger

# Platform operations a fault plan can target.
OP_BOOT = "boot"
OP_SNAPSHOT_SAVE = "snapshot_save"
OP_SNAPSHOT_RESTORE = "snapshot_restore"
OP_PROXY = "proxy"

FAULT_OPS = (OP_BOOT, OP_SNAPSHOT_SAVE, OP_SNAPSHOT_RESTORE, OP_PROXY)

#: error type an injected fault surfaces as, per operation — real platform
#: error classes, so the supervisor cannot tell injected faults from real
#: ones (which is the point).
_ERROR_FOR_OP = {
    OP_BOOT: SimulationError,
    OP_SNAPSHOT_SAVE: SnapshotError,
    OP_SNAPSHOT_RESTORE: SnapshotError,
    OP_PROXY: ProxyError,
}

#: exception classes the supervisor is allowed to retry
TRANSIENT_ERRORS = (SnapshotError, SimulationError, NetworkError, ProxyError)

# Supervisor event kinds.
EVENT_RETRY = "retry"
EVENT_REBUILD = "rebuild"
EVENT_QUARANTINE = "quarantine"
EVENT_WATCHDOG = "watchdog"
#: a parallel worker process died (crash or blown deadline) — emitted by
#: the health layer (:mod:`repro.parallel.health`) into the supervision
#: event log when a poison task is quarantined, so the ledger shows *why*
#: the scenario was set aside.  No counter: it always precedes an
#: ``EVENT_QUARANTINE`` that increments ``quarantines``.
EVENT_WORKER_FAULT = "worker-fault"


class ScenarioQuarantined(TurretError):
    """A scenario exhausted its retries and was set aside as inconclusive.

    Raised by :meth:`ScenarioSupervisor.run` so search loops can record the
    quarantine and move on; it never escapes a supervised search pass.
    """

    def __init__(self, op: str, scenario: Optional[str], cause: Exception,
                 attempts: int) -> None:
        self.op = op
        self.scenario = scenario
        self.cause = cause
        self.attempts = attempts
        super().__init__(
            f"quarantined {scenario or op} after {attempts} attempts: {cause}")


@dataclass
class FaultPlan:
    """Deterministic plan for injecting platform faults.

    Each targeted operation fails with its configured probability, drawn
    from a private :class:`RandomStream` so the injected faults never
    perturb the experiment's own randomness (the attack set found under a
    fault plan is therefore identical to the fault-free one, as long as
    every scenario survives quarantine).  ``max_faults`` bounds the total
    number of injected failures, which makes recovery tests terminate
    provably.
    """

    seed: int = 0
    boot_rate: float = 0.0
    snapshot_save_rate: float = 0.0
    snapshot_restore_rate: float = 0.0
    proxy_rate: float = 0.0
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        self._stream = RandomStream(self.seed, "fault-plan")
        self.injected: Dict[str, int] = {op: 0 for op in FAULT_OPS}
        self.checks = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _rate(self, operation: str) -> float:
        return {
            OP_BOOT: self.boot_rate,
            OP_SNAPSHOT_SAVE: self.snapshot_save_rate,
            OP_SNAPSHOT_RESTORE: self.snapshot_restore_rate,
            OP_PROXY: self.proxy_rate,
        }[operation]

    def check(self, operation: str) -> None:
        """Fail ``operation`` (by raising its platform error) per the plan.

        Every check consumes one draw from the private stream regardless of
        outcome, so the fault sequence is a pure function of the plan's
        seed and the sequence of operations attempted.
        """
        rate = self._rate(operation)
        self.checks += 1
        if rate <= 0.0:
            return
        draw = self._stream.random()
        if draw >= rate:
            return
        if (self.max_faults is not None
                and self.total_injected >= self.max_faults):
            return
        self.injected[operation] += 1
        raise _ERROR_FOR_OP[operation](
            f"[injected fault #{self.total_injected}] {operation} failed "
            f"(plan seed {self.seed})")

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``"restore=0.1,save=0.05,boot=0.02,proxy=0.01,max=5"``."""
        from repro.common.errors import ConfigError
        keys = {"boot": "boot_rate", "save": "snapshot_save_rate",
                "restore": "snapshot_restore_rate", "proxy": "proxy_rate"}
        kwargs: Dict[str, object] = {"seed": seed}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                key, value = part.split("=", 1)
            except ValueError:
                raise ConfigError(
                    f"bad fault spec element {part!r} "
                    "(expected key=value)") from None
            key = key.strip()
            if key == "max":
                kwargs["max_faults"] = int(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            elif key in keys:
                kwargs[keys[key]] = float(value)
            else:
                raise ConfigError(
                    f"unknown fault spec key {key!r}; expected one of "
                    f"{sorted(keys)} + ['max', 'seed']")
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        rates = ", ".join(f"{op}={self._rate(op):.0%}" for op in FAULT_OPS
                          if self._rate(op) > 0)
        cap = f", max {self.max_faults}" if self.max_faults is not None else ""
        return f"fault plan(seed {self.seed}: {rates or 'no faults'}{cap})"


@dataclass
class SupervisorEvent:
    """One recorded supervision decision (retry, rebuild, quarantine...)."""

    kind: str                     # retry | rebuild | quarantine | watchdog
    op: str                       # the platform operation being attempted
    scenario: Optional[str]       # human-readable scenario, if any
    error: str                    # stringified cause
    attempt: int                  # 1-based attempt number that failed
    at: float                     # ledger total when the event occurred

    def describe(self) -> str:
        what = f" [{self.scenario}]" if self.scenario else ""
        return (f"{self.kind} {self.op}{what} attempt {self.attempt} "
                f"at {self.at:.1f}s: {self.error}")


@dataclass
class QuarantinedScenario:
    """A scenario set aside as inconclusive after persistent faults."""

    message_type: str
    action_record: Optional[tuple]    # None: the injection-seek itself failed
    reason: str
    attempts: int
    verdict: str = "inconclusive"

    def describe(self) -> str:
        target = (f"{self.message_type}" if self.action_record is None
                  else f"{self.message_type} action {self.action_record!r}")
        return (f"[{self.verdict.upper()}] {target}: {self.reason} "
                f"({self.attempts} attempts)")


@dataclass
class SupervisorStats:
    """Aggregate counters plus the full event log of one supervised run."""

    retries: int = 0
    rebuilds: int = 0
    quarantines: int = 0
    watchdog_trips: int = 0
    events: List[SupervisorEvent] = field(default_factory=list)

    def merge(self, other: "SupervisorStats") -> None:
        self.retries += other.retries
        self.rebuilds += other.rebuilds
        self.quarantines += other.quarantines
        self.watchdog_trips += other.watchdog_trips
        self.events.extend(other.events)

    @property
    def total_events(self) -> int:
        return len(self.events)

    def describe(self) -> str:
        return (f"supervision: {self.retries} retries, "
                f"{self.rebuilds} rebuilds, {self.quarantines} quarantines, "
                f"{self.watchdog_trips} watchdog trips")


class ScenarioSupervisor:
    """Classify-retry-quarantine wrapper around platform operations.

    One supervisor lives on each :class:`~repro.search.base.SearchAlgorithm`
    and guards every injection-seek and branch-measure.  Transient failures
    (see module docstring) are retried up to ``max_retries`` times; between
    attempts the optional ``rebuild`` callback replaces the testbed (the
    caller charges that to the ledger's ``rebuild`` category).  When the
    attempts are exhausted, :class:`ScenarioQuarantined` is raised for the
    search loop to record.
    """

    #: modelled seconds for classifying a fault and tearing the attempt down
    DEFAULT_RETRY_OVERHEAD = 0.05

    def __init__(self, ledger: CostLedger, max_retries: int = 2,
                 retry_overhead: Optional[float] = None) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.ledger = ledger
        self.max_retries = max_retries
        self.retry_overhead = (self.DEFAULT_RETRY_OVERHEAD
                               if retry_overhead is None else retry_overhead)
        self.stats = SupervisorStats()

    # -------------------------------------------------------- classification

    @staticmethod
    def is_transient(exc: BaseException) -> bool:
        return isinstance(exc, TRANSIENT_ERRORS)

    # ------------------------------------------------------------- recording

    def _record(self, kind: str, op: str, scenario: Optional[str],
                error: Exception, attempt: int) -> SupervisorEvent:
        event = SupervisorEvent(kind, op, scenario, str(error), attempt,
                                at=self.ledger.total())
        self.stats.events.append(event)
        return event

    # ------------------------------------------------------------ supervise

    def run(self, op: str, fn: Callable[[], object],
            rebuild: Optional[Callable[[], None]] = None,
            scenario: Optional[str] = None):
        """Run ``fn`` under supervision; return its result.

        Raises :class:`ScenarioQuarantined` once ``max_retries`` transient
        failures have been burned, and re-raises fatal errors immediately.
        ``rebuild`` failures (e.g. an injected boot fault) count as
        attempts too, so a fault plan cannot livelock the supervisor.
        """
        attempt = 0
        need_rebuild = False
        while True:
            try:
                if need_rebuild and rebuild is not None:
                    self.stats.rebuilds += 1
                    self._record(EVENT_REBUILD, op, scenario,
                                 Exception("rebuilding testbed"), attempt)
                    rebuild()
                need_rebuild = False
                return fn()
            except ScenarioQuarantined:
                raise
            except Exception as exc:
                if not self.is_transient(exc):
                    raise
                attempt += 1
                if isinstance(exc, WatchdogTimeout):
                    self.stats.watchdog_trips += 1
                    self._record(EVENT_WATCHDOG, op, scenario, exc, attempt)
                self.stats.retries += 1
                self.ledger.charge(RETRY, self.retry_overhead)
                self._record(EVENT_RETRY, op, scenario, exc, attempt)
                if attempt > self.max_retries:
                    self.stats.quarantines += 1
                    self._record(EVENT_QUARANTINE, op, scenario, exc, attempt)
                    raise ScenarioQuarantined(op, scenario, exc,
                                              attempt) from exc
                need_rebuild = True
