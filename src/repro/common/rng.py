"""Deterministic, named random streams.

Every source of randomness in the platform draws from a named stream derived
from a single experiment seed.  Two properties matter:

* **Reproducibility** — the same seed yields a byte-identical execution,
  which the controller relies on when comparing branched executions.
* **Independence** — consuming randomness in one component (say, the network
  emulator's jitter) must not perturb another (say, a lying strategy's random
  values).  Named streams give each component its own generator.

Streams are themselves snapshottable so that restoring an execution branch
restores the exact randomness that the original execution would have seen.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A named, snapshottable wrapper around :class:`random.Random`."""

    def __init__(self, root_seed: int, name: str) -> None:
        self.name = name
        self.root_seed = root_seed
        self._rng = random.Random(derive_seed(root_seed, name))

    def fork(self, label: str) -> "RandomStream":
        """Derive an independent child stream.

        The child is a pure function of ``(root_seed, name, label)``, so
        components that need private randomness (e.g. a platform fault-
        injection plan) can fork without perturbing the parent stream's
        sequence.
        """
        return RandomStream(self.root_seed, f"{self.name}/{label}")

    def random(self) -> float:
        return self._rng.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def getrandbits(self, bits: int) -> int:
        return self._rng.getrandbits(bits)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def bytes(self, n: int) -> bytes:
        return self._rng.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def save_state(self):
        return self._rng.getstate()

    def load_state(self, state) -> None:
        self._rng.setstate(state)


class RngRegistry:
    """Factory and snapshot point for all random streams of an experiment."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream called ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        created = RandomStream(self.root_seed, name)
        self._streams[name] = created
        return created

    def save_state(self) -> Dict[str, Tuple]:
        return {name: s.save_state() for name, s in self._streams.items()}

    def load_state(self, state: Dict[str, Tuple]) -> None:
        for name, stream_state in state.items():
            self.stream(name).load_state(stream_state)
