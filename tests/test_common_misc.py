"""Tests for ids, units, and the event log."""


from repro.common.ids import FlowId, NodeId, client, replica
from repro.common.logging import EventLog
from repro.common.units import (GIB, KIB, MIB, PAGE_SIZE, mbit_per_sec,
                                micros, millis, pages_for)


class TestIds:
    def test_roles(self):
        assert replica(3) == NodeId(3, "replica")
        assert client(0) == NodeId(0, "client")
        assert str(replica(2)) == "replica2"

    def test_ordering_total(self):
        nodes = [replica(1), client(1), replica(0), client(0)]
        ordered = sorted(nodes)
        assert ordered == sorted(ordered)
        assert replica(0) < replica(1)

    def test_hashable(self):
        assert len({replica(1), replica(1), client(1)}) == 2

    def test_flow_id(self):
        flow = FlowId(replica(0), replica(1))
        assert str(flow) == "replica0->replica1"


class TestUnits:
    def test_time_conversions(self):
        assert millis(1) == 0.001
        assert micros(1) == 1e-6

    def test_sizes(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB

    def test_bandwidth(self):
        assert mbit_per_sec(8) == 1_000_000

    def test_pages_for(self):
        assert pages_for(0) == 0
        assert pages_for(1) == 1
        assert pages_for(PAGE_SIZE) == 1
        assert pages_for(PAGE_SIZE + 1) == 2


class TestEventLog:
    def test_disabled_by_default(self):
        log = EventLog()
        log.emit("c", "e", x=1)
        assert log.records == []

    def test_records_with_clock(self):
        t = [0.0]
        log = EventLog(clock=lambda: t[0], enabled=True)
        log.emit("netem", "deliver", size=10)
        t[0] = 1.5
        log.emit("node", "crash")
        assert [r.time for r in log.records] == [0.0, 1.5]

    def test_select_filters(self):
        log = EventLog(enabled=True)
        log.emit("a", "x")
        log.emit("a", "y")
        log.emit("b", "x")
        assert len(log.select(component="a")) == 2
        assert len(log.select(event="x")) == 2
        assert len(log.select(component="a", event="x")) == 1

    def test_capacity_bound(self):
        log = EventLog(enabled=True, capacity=3)
        for i in range(5):
            log.emit("c", "e", i=i)
        assert len(log.records) == 3
        assert log.dropped == 2

    def test_clear(self):
        log = EventLog(enabled=True)
        log.emit("c", "e")
        log.clear()
        assert log.records == [] and log.dropped == 0

    def test_str_rendering(self):
        log = EventLog(enabled=True)
        log.emit("node", "send", dst="replica1")
        assert "node: send dst=replica1" in str(log.records[0])


class TestEventLogRing:
    def test_ring_cap_evicts_oldest(self):
        log = EventLog(enabled=True, max_records=16)
        for i in range(100):
            log.emit("c", "e", i=i)
        assert len(log.records) <= 16
        assert isinstance(log.records, list)
        # the newest record survived, the oldest were evicted
        assert log.records[-1].details["i"] == 99
        assert log.records[0].details["i"] > 0
        assert log.truncated == 100 - len(log.records)
        assert log.dropped == 0  # ring mode never drops new records

    def test_ring_takes_precedence_over_capacity(self):
        log = EventLog(enabled=True, capacity=4, max_records=8)
        for i in range(20):
            log.emit("c", "e", i=i)
        assert log.records[-1].details["i"] == 19
        assert log.dropped == 0

    def test_unbounded_by_default(self):
        log = EventLog(enabled=True)
        for i in range(10):
            log.emit("c", "e")
        assert len(log.records) == 10 and log.truncated == 0

    def test_clear_resets_truncation(self):
        log = EventLog(enabled=True, max_records=2)
        for __ in range(10):
            log.emit("c", "e")
        log.clear()
        assert log.records == [] and log.truncated == 0

    def test_world_plumbs_ring_cap(self):
        from repro.runtime.world import World
        from repro.wire.codec import ProtocolCodec
        from repro.wire.parser import parse_schema
        schema = parse_schema(
            "protocol p\nmessage M = 1 {\n    x: u32\n}\n")
        world = World(ProtocolCodec(schema), log_enabled=True,
                      log_max_records=7)
        assert world.log.max_records == 7
