"""Tests for delta (incremental) snapshots."""

import pytest

from repro.common.errors import SnapshotError
from repro.vm.ksm import KsmDaemon
from repro.vm.memory import GuestMemory, OsImage
from repro.vm.snapshots import SnapshotManager
from repro.vm.timing import VmTimingModel

SMALL = OsImage(name="tiny", resident_mb=2, unique_mb=1)


def setup(n=3):
    guests = [GuestMemory(f"vm{i}", SMALL) for i in range(n)]
    for g in guests:
        g.write_app_state(f"{g.vm_name}-gen0".encode() * 100)
        g.clear_dirty()
    manager = SnapshotManager(KsmDaemon(), VmTimingModel())
    return guests, manager


class TestDeltaSave:
    def test_unchanged_guests_produce_empty_delta(self):
        guests, manager = setup()
        base = manager.save(guests)
        delta = manager.save_delta(guests, base)
        assert delta.stored_bytes() == 0
        assert all(not d.changed and not d.removed for d in delta.vm_deltas)

    def test_delta_stores_only_changed_pages(self):
        guests, manager = setup()
        base = manager.save(guests)
        guests[0].write_app_state(b"vm0-gen1" * 100)
        delta = manager.save_delta(guests, base)
        changed = {d.vm_name: len(d.changed) for d in delta.vm_deltas}
        assert changed["vm0"] == 1  # one app page rewritten
        assert changed["vm1"] == 0
        assert delta.stored_bytes() < base.stored_bytes() / 100

    def test_delta_much_faster_to_save(self):
        # use the realistic image size: the saving scales with guest memory
        guests = [GuestMemory(f"vm{i}", OsImage()) for i in range(3)]
        manager = SnapshotManager(KsmDaemon(), VmTimingModel())
        base = manager.save(guests)
        guests[0].write_app_state(b"new" * 10)
        delta = manager.save_delta(guests, base)
        assert delta.save_time < base.save_time / 5

    def test_delta_tracks_removed_pages(self):
        guests, manager = setup()
        guests[0].write_app_state(b"x" * 4096 * 5)
        base = manager.save(guests)
        guests[0].write_app_state(b"x" * 4096)
        delta = manager.save_delta(guests, base)
        vm0 = next(d for d in delta.vm_deltas if d.vm_name == "vm0")
        assert len(vm0.removed) == 4

    def test_unknown_vm_rejected(self):
        guests, manager = setup()
        base = manager.save(guests)
        stranger = GuestMemory("other", SMALL)
        with pytest.raises(SnapshotError):
            manager.save_delta([stranger], base)


class TestDeltaRestore:
    def test_roundtrip_restores_exact_state(self):
        guests, manager = setup()
        base = manager.save(guests)
        guests[0].write_app_state(b"vm0-gen1" * 77)
        guests[2].write_app_state(b"vm2-gen1" * 33)
        expect = {g.vm_name: [p.digest for __, p in g.iter_pages()]
                  for g in guests}
        delta = manager.save_delta(guests, base)

        for g in guests:
            g.write_app_state(b"corrupted-later")
        manager.load_delta(delta, guests)
        for g in guests:
            assert [p.digest for __, p in g.iter_pages()] == expect[g.vm_name]

    def test_restore_after_shrink(self):
        guests, manager = setup()
        guests[1].write_app_state(b"y" * 4096 * 3)
        base = manager.save(guests)
        guests[1].write_app_state(b"z" * 100)
        delta = manager.save_delta(guests, base)
        guests[1].write_app_state(b"w" * 4096 * 8)
        manager.load_delta(delta, guests)
        assert guests[1].read_app_state().startswith(b"z" * 100)
        assert guests[1].app_page_count() == 1


class TestHarnessIntegration:
    def test_delta_branching_equals_full_branching(self):
        from repro.attacks.actions import DelayAction
        from repro.controller.harness import AttackHarness
        from repro.systems.paxos.testbed import paxos_testbed

        results = []
        for delta in (False, True):
            h = AttackHarness(paxos_testbed(warmup=1.0, window=1.5), seed=5,
                              delta_snapshots=delta)
            h.start_run()
            injection = h.run_to_injection("Accept")
            baseline = h.branch_measure(injection, None)
            attacked = h.branch_measure(injection, DelayAction(1.0))
            results.append((baseline.throughput, attacked.throughput,
                            injection.snapshot.save_cost))
        (b0, a0, cost_full), (b1, a1, cost_delta) = results
        assert b0 == b1 and a0 == a1      # identical measurements
        assert cost_delta < cost_full / 3  # much cheaper snapshots


class TestAtomicRestore:
    """A restore that fails mid-way (satellite of the staged two-phase
    rewrite) must leave every guest's memory exactly as it was — never a
    half-applied base with no delta on top."""

    def _digests(self, guests):
        return {g.vm_name: [p.digest for __, p in g.iter_pages()]
                for g in guests}

    def test_failed_delta_restore_leaves_memory_unchanged(self):
        guests, manager = setup()
        base = manager.save(guests)
        guests[0].write_app_state(b"vm0-gen1" * 50)
        delta = manager.save_delta(guests, base)
        guests[0].write_app_state(b"current-state" * 20)
        before = self._digests(guests)
        # vm2 is missing from the restore set: staging must fail before
        # any guest is touched
        with pytest.raises(SnapshotError):
            manager.load_delta(delta, guests[:2])
        assert self._digests(guests) == before

    def test_failed_full_restore_leaves_memory_unchanged(self):
        guests, manager = setup()
        snap = manager.save(guests)
        guests[1].write_app_state(b"newer" * 30)
        before = self._digests(guests)
        with pytest.raises(SnapshotError):
            manager.load(snap, guests[1:])  # vm0 missing
        assert self._digests(guests) == before

    def test_dangling_shared_ref_fails_before_commit(self):
        guests = [GuestMemory(f"vm{i}", SMALL) for i in range(3)]
        ksm = KsmDaemon()
        for g in guests:
            g.clear_dirty()
            ksm.register(g)
        ksm.scan()
        manager = SnapshotManager(ksm, VmTimingModel())
        shared = manager.save(guests, shared=True)
        assert shared.shared_map is not None
        shared.shared_map.pages.clear()  # corrupt the map
        guests[0].write_app_state(b"post-snapshot" * 10)
        before = self._digests(guests)
        with pytest.raises(SnapshotError):
            manager.load(shared, guests)
        assert self._digests(guests) == before
