"""Timeline analysis over an experiment's event log.

When the event log is enabled (``World(log_enabled=True)``), every send,
delivery, crash, and proxy action is recorded with its virtual timestamp.
:class:`Timeline` turns that stream into the questions an investigator asks
after a finding: when did nodes crash, what did the proxy do and when, how
did traffic evolve across the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.logging import EventLog, LogRecord


@dataclass(frozen=True)
class CrashEvent:
    time: float
    node: str
    reason: str
    #: ``"fault"`` for target-bug crashes, ``"injected"`` for chaos-layer
    #: crashes (mirrors ``World.crashed_node_summaries``).
    kind: str = "fault"


class Timeline:
    """Queries over one experiment's event log."""

    def __init__(self, log: EventLog) -> None:
        self.log = log

    # --------------------------------------------------------------- crashes

    def crashes(self) -> List[CrashEvent]:
        out = [CrashEvent(r.time, r.component, r.details.get("reason", ""),
                          "injected" if r.event == "crash_injected"
                          else "fault")
               for r in self.log.records
               if r.event in ("crash", "crash_injected")]
        out.sort(key=lambda c: c.time)
        return out

    def first_crash(self) -> Optional[CrashEvent]:
        crashes = self.crashes()
        return crashes[0] if crashes else None

    # ----------------------------------------------------------------- proxy

    def proxy_actions(self) -> List[LogRecord]:
        return [r for r in self.log.records
                if r.component == "netem"
                and r.event in ("proxy_drop", "proxy_hold")]

    # --------------------------------------------------------------- traffic

    def event_counts(self) -> Dict[Tuple[str, str], int]:
        counts: Dict[Tuple[str, str], int] = {}
        for r in self.log.records:
            key = (r.component, r.event)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def sends_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.log.records:
            if r.event == "send":
                mtype = r.details.get("type", "?")
                counts[mtype] = counts.get(mtype, 0) + 1
        return counts

    def deliveries_per_second(self, bucket: float = 1.0) -> List[Tuple[float, int]]:
        """Delivery counts bucketed by virtual time (a throughput sketch)."""
        if bucket <= 0:
            return []
        buckets: Dict[int, int] = {}
        for r in self.log.select(component="netem", event="deliver"):
            buckets[int(r.time / bucket)] = buckets.get(
                int(r.time / bucket), 0) + 1
        return [(i * bucket, n) for i, n in sorted(buckets.items())]

    # -------------------------------------------------------------- renderer

    def render(self, max_rows: int = 20) -> str:
        lines = [f"events recorded: {len(self.log.records)} "
                 f"(dropped {self.log.dropped})"]
        crashes = self.crashes()
        if crashes:
            lines.append("crashes:")
            for c in crashes:
                lines.append(f"  [{c.time:9.4f}] {c.node}: {c.reason}")
        top = sorted(self.event_counts().items(), key=lambda kv: -kv[1])
        lines.append("top events:")
        for (component, event), count in top[:max_rows]:
            lines.append(f"  {component}/{event}: {count}")
        return "\n".join(lines)
