#!/usr/bin/env python3
"""Durable hunts: kill -9 safety and bounded snapshot memory in one script.

``--checkpoint`` survives a polite Ctrl-C; the run store survives an
impolite ``kill -9`` mid-pass.  This example demonstrates the durability
layer end to end:

1. a plain PBFT hunt as the byte-identity reference;
2. the same hunt with a run store (``store_dir``) — probes are committed
   to a CRC32 write-ahead journal as they complete, and re-running with
   the same store replays them to the *byte-identical* report;
3. a hunt SIGKILLed mid-pass via the ``REPRO_STORE_CHAOS`` hook (in a
   subprocess — the chaos hook kills the whole process, that is the
   point), then resumed from its store to the same bytes;
4. a snapshot-budgeted hunt: the injection-point cache capped to one
   byte, so every admission evicts — the report is still byte-identical,
   with rebuild time charged to a side channel.

Run:  python examples/durable_hunt.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile

from repro.analysis.reports import hunt_result_to_dict
from repro.attacks.space import ActionSpaceConfig
from repro.search.hunt import hunt
from repro.systems.pbft import pbft_testbed

SPACE = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(0.5, 1.0),
                          duplicate_counts=(50,), include_divert=False,
                          include_lying=False)
FACTORY = pbft_testbed(malicious="primary", warmup=1.0, window=2.0)
KW = dict(seed=1, message_types=["PrePrepare"], space_config=SPACE,
          max_wait=5.0, max_passes=2)

CLI = ["hunt", "pbft", "--types", "PrePrepare", "--seed", "1", "--fast",
       "--no-lying", "--warmup", "1", "--window", "2", "--passes", "2",
       "--max-wait", "5", "--allow-empty"]


def hunt_json(result) -> str:
    return json.dumps(hunt_result_to_dict(result), sort_keys=True)


def run_cli(extra, chaos=None):
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    if chaos:
        env["REPRO_STORE_CHAOS"] = chaos
    return subprocess.run([sys.executable, "-m", "repro"] + CLI + extra,
                          env=env, capture_output=False)


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="durable-hunt-")

    print("=== 1. plain reference hunt ===")
    clean = hunt(FACTORY, **KW)
    print(clean.describe())

    print("\n=== 2. durable hunt + replay from the store ===")
    store = os.path.join(workdir, "store")
    stored = hunt(FACTORY, store_dir=store, **KW)
    assert hunt_json(stored) == hunt_json(clean), "store changed the bytes!"
    print(f"journal: {os.path.join(store, 'journal.jsonl')}")
    replayed = hunt(FACTORY, store_dir=store, **KW)
    assert hunt_json(replayed) == hunt_json(clean)
    print(replayed.store_report.one_line())
    print("-> replayed run is byte-identical to the uninterrupted one")

    print("\n=== 3. kill -9 mid-pass, resume from the store ===")
    crash_store = os.path.join(workdir, "crash-store")
    flag = os.path.join(workdir, "chaos-fired")
    ref = os.path.join(workdir, "ref.json")
    out = os.path.join(workdir, "resumed.json")
    run_cli(["--json", ref])
    killed = run_cli(["--store", crash_store], chaos=f"crash:3:{flag}")
    assert killed.returncode == -signal.SIGKILL, "chaos should SIGKILL"
    print("hunt SIGKILLed after the 3rd journal append; resuming...")
    resumed = run_cli(["--store", crash_store, "--json", out])
    assert resumed.returncode == 0
    with open(ref, "rb") as a, open(out, "rb") as b:
        assert a.read() == b.read(), "resume diverged!"
    print("-> SIGKILLed + resumed hunt wrote byte-identical JSON")

    print("\n=== 4. snapshot budget: evict everything, same bytes ===")
    # Two message types, a one-byte budget: the second admission always
    # evicts the first, so every revisit is a rebuild-on-miss.
    budget_kw = dict(KW, message_types=["PrePrepare", "Commit"])
    cached = hunt(FACTORY, injection_cache=True, **budget_kw)
    budgeted = hunt(FACTORY, injection_cache=True, snapshot_budget=1,
                    **budget_kw)
    assert hunt_json(budgeted) == hunt_json(cached), "budget changed bytes!"
    print(budgeted.store_report.one_line())
    counters = budgeted.store_report.counters
    print(f"-> {int(counters.get('snapshot.cache.evictions', 0))} evictions,"
          f" {counters.get('snapshot.cache.rebuild_platform_seconds', 0):.2f}s"
          " of rebuilds charged off the books; report byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
