"""Tests for the message-format DSL parser."""

import pytest

from repro.common.errors import SchemaParseError
from repro.wire.parser import format_schema, parse_schema

GOOD = """
protocol demo
# a comment
message Ping = 1 {
    seq: u32          # trailing comment
    when: f64
}
message Pong = 2 { seq: u32  data: varbytes<u16>  mac: bytes[16] }
"""


class TestParseGood:
    def test_protocol_name(self):
        assert parse_schema(GOOD).name == "demo"

    def test_message_names_and_ids(self):
        schema = parse_schema(GOOD)
        assert schema.message_names() == ["Ping", "Pong"]
        assert schema.message_named("Pong").type_id == 2

    def test_field_kinds(self):
        pong = parse_schema(GOOD).message_named("Pong")
        seq, data, mac = pong.fields
        assert seq.kind == "scalar" and seq.scalar.name == "u32"
        assert data.kind == "varbytes" and data.len_type.name == "u16"
        assert mac.kind == "bytes" and mac.fixed_len == 16

    def test_protocol_header_optional(self):
        schema = parse_schema("message M = 1 { x: u8 }")
        assert schema.name == "protocol"
        assert schema.message_names() == ["M"]

    def test_single_line_message(self):
        schema = parse_schema("message M = 3 { a: i64  b: bool }")
        assert [f.name for f in schema.message_named("M").fields] == ["a", "b"]

    def test_empty_message_body(self):
        schema = parse_schema("message Empty = 1 { }")
        assert schema.message_named("Empty").fields == ()


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "",
        "protocol x",
        "message = 1 { a: u8 }",
        "message M 1 { a: u8 }",
        "message M = { a: u8 }",
        "message M = 1 { a u8 }",
        "message M = 1 { a: u8 ",
        "message M = 1 { a: nosuchtype }",
        "message M = 1 { a: u8  a: u16 }",
        "message M = -1 { a: u8 }",
        "message M = 1 { a: bytes[0] }",
    ])
    def test_rejects(self, text):
        with pytest.raises(SchemaParseError):
            parse_schema(text)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(Exception):
            parse_schema("message A = 1 { x: u8 }\nmessage B = 1 { y: u8 }")

    def test_error_carries_line_number(self):
        text = "protocol p\n\nmessage M = 1 {\n  a: u8\n  b }\n"
        with pytest.raises(SchemaParseError) as excinfo:
            parse_schema(text)
        assert "line 5" in str(excinfo.value)

    def test_unexpected_character(self):
        with pytest.raises(SchemaParseError):
            parse_schema("message M = 1 { a: u8 @ }")


class TestFormatRoundTrip:
    def test_format_then_parse_preserves_schema(self):
        original = parse_schema(GOOD)
        reparsed = parse_schema(format_schema(original))
        assert reparsed.name == original.name
        assert reparsed.message_names() == original.message_names()
        for name in original.message_names():
            a = original.message_named(name)
            b = reparsed.message_named(name)
            assert a.type_id == b.type_id
            assert [(f.name, f.type_label()) for f in a.fields] == \
                   [(f.name, f.type_label()) for f in b.fields]

    def test_real_system_schemas_roundtrip(self):
        from repro.systems.pbft.schema import PBFT_SCHEMA
        from repro.systems.prime.schema import PRIME_SCHEMA
        from repro.systems.steward.schema import STEWARD_SCHEMA
        from repro.systems.zyzzyva.schema import ZYZZYVA_SCHEMA
        for schema in (PBFT_SCHEMA, PRIME_SCHEMA, STEWARD_SCHEMA,
                       ZYZZYVA_SCHEMA):
            reparsed = parse_schema(format_schema(schema))
            assert reparsed.message_names() == schema.message_names()
