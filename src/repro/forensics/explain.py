"""Turning findings into explanations.

:class:`ForensicRunner` owns a dedicated :class:`AttackHarness` — with its
own private :class:`CostLedger`, so forensic re-execution never pollutes
the search's deterministic cost accounting — and replays each finding's
injection point twice: once benign, once attacked, with a
:class:`~repro.forensics.causality.CausalRecorder` attached during each
branch.  The differential between the two branches becomes an
:class:`AttackExplanation`: injected action → first divergent message →
affected phases → perf delta, plus the raw material (chronologies,
timelines, crash chains) the report renderers consume.

Explanations are computed *after* a search or hunt completes — from its
finding list, post-merge — so a parallel hunt's explanations are
identical to a serial hunt's, and the search output itself is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.controller.costs import CostLedger
from repro.controller.harness import AttackHarness, TestbedFactory
from repro.controller.monitor import AttackThreshold, PerfSample
from repro.forensics.causality import CausalRecorder
from repro.forensics.differential import (DifferentialResult, Divergence,
                                          PerfTimeline, diff_branches,
                                          perf_timeline)
from repro.search.results import AttackFinding

#: buckets per observation window in the perf timelines
TIMELINE_BUCKETS = 6


def _sample_dict(sample: Optional[PerfSample]) -> Optional[dict]:
    if sample is None:
        return None
    return {
        "throughput": sample.throughput,
        "latency_avg": sample.latency_avg,
        "completed": sample.completed,
        "crashed_nodes": sample.crashed_nodes,
    }


@dataclass
class BranchObservation:
    """One forensic branch: its chronology, perf, and crash evidence."""

    recorder: CausalRecorder
    sample: PerfSample
    timeline: PerfTimeline
    crash_chain: List[str] = field(default_factory=list)


@dataclass
class AttackExplanation:
    """Why one confirmed finding degrades the system."""

    scenario: str                     # e.g. "Drop 100% PrePrepare"
    message_type: str
    action: str                       # the action's describe() text
    action_record: tuple
    injection_time: float
    window: float
    divergence: Divergence
    damage: float
    suppressed_types: List[str] = field(default_factory=list)
    delivery_deltas: List = field(default_factory=list)
    lost_descendants: int = 0
    proxy_notes: List[str] = field(default_factory=list)
    crash_chain: List[str] = field(default_factory=list)
    benign_sample: Optional[PerfSample] = None
    attack_sample: Optional[PerfSample] = None
    benign_timeline: Optional[PerfTimeline] = None
    attack_timeline: Optional[PerfTimeline] = None
    #: full branch observations (chronologies for the trace export);
    #: deliberately excluded from :meth:`to_dict`
    benign_branch: Optional[BranchObservation] = None
    attack_branch: Optional[BranchObservation] = None
    #: set when the injection point could not be reproduced
    unreproduced: bool = False

    # ------------------------------------------------------------ rendering

    def one_line(self) -> str:
        if self.unreproduced:
            return f"why {self.scenario}: injection point not reproduced"
        return f"why {self.scenario}: {self.divergence.describe()}"

    def narrative(self) -> str:
        """The investigator's summary, one clause per causal step."""
        if self.unreproduced:
            return (f"{self.scenario}: the injection point did not recur "
                    f"during forensic replay; no explanation available.")
        parts = [f"Injected {self.action} on {self.message_type} at "
                 f"t={self.injection_time:.2f}.",
                 f"First divergence from baseline: "
                 f"{self.divergence.describe()}."]
        if self.suppressed_types:
            parts.append("Suppressed protocol phases: "
                         + ", ".join(self.suppressed_types) + ".")
        if self.lost_descendants:
            parts.append(f"{self.lost_descendants} downstream messages "
                         f"induced by the diverged message in the baseline "
                         f"never materialised under attack.")
        if self.crash_chain:
            parts.append("Crash chain: " + " -> ".join(self.crash_chain)
                         + ".")
        if self.benign_sample is not None and self.attack_sample is not None:
            parts.append(
                f"Performance: {self.benign_sample.throughput:.2f} -> "
                f"{self.attack_sample.throughput:.2f} upd/s over the "
                f"{self.window:g}s window (damage {self.damage:.0%}).")
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "message_type": self.message_type,
            "action": self.action,
            "action_record": list(self.action_record),
            "injection_time": self.injection_time,
            "window": self.window,
            "unreproduced": self.unreproduced,
            "divergence": self.divergence.to_dict(),
            "damage": self.damage,
            "suppressed_types": list(self.suppressed_types),
            "delivery_deltas": [d.to_dict() for d in self.delivery_deltas],
            "lost_descendants": self.lost_descendants,
            "proxy_notes": list(self.proxy_notes),
            "crash_chain": list(self.crash_chain),
            "benign": _sample_dict(self.benign_sample),
            "attack": _sample_dict(self.attack_sample),
            "benign_timeline": (self.benign_timeline.to_dict()
                                if self.benign_timeline else None),
            "attack_timeline": (self.attack_timeline.to_dict()
                                if self.attack_timeline else None),
            "narrative": self.narrative(),
        }


class ForensicRunner:
    """Replays findings from their injection points and explains them."""

    def __init__(self, factory: TestbedFactory, seed: int = 0,
                 threshold: Optional[AttackThreshold] = None,
                 max_wait: Optional[float] = None,
                 fault_schedule=None,
                 shared_pages: bool = True,
                 delta_snapshots: bool = False,
                 watchdog_limit: Optional[int] = None) -> None:
        self.threshold = threshold or AttackThreshold()
        self.max_wait = max_wait
        #: private ledger: forensic replay cost never reaches search reports
        self.ledger = CostLedger()
        self.harness = AttackHarness(
            factory, seed=seed, threshold=self.threshold,
            shared_pages=shared_pages, delta_snapshots=delta_snapshots,
            ledger=self.ledger, fault_schedule=fault_schedule,
            watchdog_limit=watchdog_limit,
            # Full event-log retention: the crash chain comes from here.
            log_events=True,
            # One warm testbed serves every finding; each message type's
            # injection point is sought once and memoized.
            injection_cache=True)
        self._started = False

    # -------------------------------------------------------------- branches

    def _branch(self, point, action) -> BranchObservation:
        world = self.harness.world
        recorder = CausalRecorder(world.codec, lambda: world.kernel.now)
        log_mark = len(world.log.records)
        world.emulator.causal_tap = recorder
        try:
            sample = self.harness.branch_measure(point, action)
        finally:
            world.emulator.causal_tap = None
        crash_chain = [
            f"{r.component}[{'injected' if r.event == 'crash_injected' else 'fault'}]"
            f"@{r.time:.3f}"
            for r in world.log.records[log_mark:]
            if r.event in ("crash", "crash_injected")]
        window = self.harness.instance.window
        timeline = perf_timeline(world.metrics, point.time,
                                 point.time + window,
                                 buckets=TIMELINE_BUCKETS)
        return BranchObservation(recorder, sample, timeline, crash_chain)

    # --------------------------------------------------------------- explain

    def explain(self, finding: AttackFinding) -> AttackExplanation:
        if not self._started:
            self.harness.start_run()
            self._started = True
        scenario = finding.scenario
        point = self.harness.cached_injection(scenario.message_type)
        if point is None:
            self.harness.restore(self.harness.warm_snapshot)
            point = self.harness.run_to_injection(scenario.message_type,
                                                  self.max_wait)
        if point is None:
            return AttackExplanation(
                scenario=scenario.describe(),
                message_type=scenario.message_type,
                action=scenario.action.describe(),
                action_record=scenario.action.to_record(),
                injection_time=-1.0, window=self.harness.instance.window,
                divergence=Divergence("none"), damage=0.0,
                unreproduced=True)
        benign = self._branch(point, None)
        attack = self._branch(point, scenario.action)
        diff: DifferentialResult = diff_branches(benign.recorder,
                                                 attack.recorder)
        notes = sorted(
            {note for notes in attack.recorder.proxy_notes.values()
             for note in notes})
        return AttackExplanation(
            scenario=scenario.describe(),
            message_type=scenario.message_type,
            action=scenario.action.describe(),
            action_record=scenario.action.to_record(),
            injection_time=point.time,
            window=self.harness.instance.window,
            divergence=diff.divergence,
            damage=self.threshold.damage(benign.sample, attack.sample),
            suppressed_types=diff.suppressed_types,
            delivery_deltas=diff.delivery_deltas,
            lost_descendants=diff.lost_descendants,
            proxy_notes=notes,
            crash_chain=attack.crash_chain,
            benign_sample=benign.sample,
            attack_sample=attack.sample,
            benign_timeline=benign.timeline,
            attack_timeline=attack.timeline,
            benign_branch=benign,
            attack_branch=attack)


def explain_findings(factory: TestbedFactory,
                     findings: List[AttackFinding], *,
                     seed: int = 0,
                     threshold: Optional[AttackThreshold] = None,
                     max_wait: Optional[float] = None,
                     fault_schedule=None,
                     shared_pages: bool = True,
                     delta_snapshots: bool = False,
                     watchdog_limit: Optional[int] = None
                     ) -> List[AttackExplanation]:
    """Explain every finding, in finding order, on one warm testbed.

    Deterministic: the runner's world is seeded like the search's, the
    branches replay from snapshots, and nothing here consults wall-clock
    time — two calls with the same findings produce identical
    explanations, regardless of how many workers found them.
    """
    runner = ForensicRunner(
        factory, seed=seed, threshold=threshold, max_wait=max_wait,
        fault_schedule=fault_schedule, shared_pages=shared_pages,
        delta_snapshots=delta_snapshots, watchdog_limit=watchdog_limit)
    return [runner.explain(finding) for finding in findings]
