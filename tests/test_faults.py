"""Tests for the chaos layer: fault models, schedules, and the injector.

Determinism is the property under test throughout: every fault decision is
drawn from seeded streams in a fixed order, the injector's progress is a
prefix count, and all fault state rides in the world snapshot — so two
fresh worlds given the same seed and schedule must produce byte-identical
executions, and a snapshot taken mid-flap must resume exactly.
"""

import hashlib
import json
import pickle
from types import SimpleNamespace

import pytest

from repro.common.errors import ConfigError
from repro.common.ids import replica
from repro.common.rng import RandomStream
from repro.controller.harness import AttackHarness
from repro.faults.injector import FaultInjector
from repro.faults.models import (ANY_PATH, GilbertElliott, LinkFaultBank,
                                 PathFaults, path_key)
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.runtime.app import Application
from repro.runtime.world import World
from repro.systems.paxos.testbed import paxos_testbed
from repro.wire.codec import Message, ProtocolCodec
from repro.wire.schema import ProtocolSchema, make_message

SCHEMA = ProtocolSchema("chaos", (make_message("Ping", 1, [("n", "u32")]),))
CODEC = ProtocolCodec(SCHEMA)


class PingApp(Application):
    """Sends a Ping to every peer twice per emulated second."""

    def __init__(self):
        super().__init__()
        self.received = 0
        self.sent = 0

    def on_start(self):
        self.set_timer("tick", 0.5, periodic=True)

    def on_timer(self, name):
        self.sent += 1
        self.broadcast(Message("Ping", {"n": self.sent}))

    def on_message(self, src, message):
        self.received += 1

    def snapshot_state(self):
        return {"received": self.received, "sent": self.sent}

    def restore_state(self, state):
        self.received = state["received"]
        self.sent = state["sent"]


def ping_world(n=3, seed=7, log_enabled=False):
    world = World(CODEC, seed=seed, log_enabled=log_enabled)
    for i in range(n):
        world.add_node(replica(i), PingApp(), app_factory=PingApp)
    world.set_peer_groups([replica(i) for i in range(n)])
    world.boot()
    return world


def world_digest(world):
    h = hashlib.blake2b(digest_size=16)
    for node_id in sorted(world.nodes):
        h.update(pickle.dumps(world.nodes[node_id].snapshot_state(),
                              protocol=4))
    h.update(repr(world.kernel.now).encode())
    h.update(pickle.dumps(world.emulator.save_state(), protocol=4))
    return h.digest()


# ------------------------------------------------------------- fault models

class TestGilbertElliott:
    def test_same_seed_same_pattern(self):
        a = GilbertElliott(0.2, 0.3)
        b = GilbertElliott(0.2, 0.3)
        ra, rb = RandomStream(5, "ge"), RandomStream(5, "ge")
        pattern_a = [a.step(ra) for __ in range(200)]
        pattern_b = [b.step(rb) for __ in range(200)]
        assert pattern_a == pattern_b
        assert any(pattern_a)      # the chain does enter the bad state
        assert not all(pattern_a)  # and leaves it again

    def test_state_roundtrip_resumes_mid_burst(self):
        model = GilbertElliott(0.3, 0.2)
        rng = RandomStream(5, "ge")
        for __ in range(50):
            model.step(rng)
        rng_state = rng.save_state()
        state = model.save_state()
        tail = [model.step(rng) for __ in range(100)]

        clone = GilbertElliott.from_state(state)
        rng.load_state(rng_state)
        assert [clone.step(rng) for __ in range(100)] == tail

    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            GilbertElliott(1.5, 0.2)
        with pytest.raises(ConfigError):
            GilbertElliott(0.1, 0.2, loss_bad=-0.1)


class TestPathFaults:
    def test_draw_count_independent_of_chain_state(self):
        # Two identical configurations, one mid-burst: after evaluating a
        # packet through each, both streams must sit at the same position.
        good = PathFaults(loss=GilbertElliott(0.5, 0.5, bad=False),
                          corrupt_rate=0.5, jitter=0.001)
        bad = PathFaults(loss=GilbertElliott(0.5, 0.5, bad=True),
                         corrupt_rate=0.5, jitter=0.001)
        ra, rb = RandomStream(9, "pf"), RandomStream(9, "pf")
        good.evaluate(ra)
        bad.evaluate(rb)
        assert ra.save_state() == rb.save_state()

    def test_lost_packet_gets_no_delay(self):
        faults = PathFaults(loss=GilbertElliott(1.0, 0.0, loss_bad=1.0),
                            jitter=1.0)
        lost, corrupted, extra = faults.evaluate(RandomStream(1, "pf"))
        assert lost and not corrupted and extra == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            PathFaults(corrupt_rate=2.0)
        with pytest.raises(ConfigError):
            PathFaults(jitter=-1.0)


class TestLinkFaultBank:
    def test_specific_and_wildcard_compose(self):
        bank = LinkFaultBank()
        assert not bank.active
        bank.set_path(path_key("a", "b"), PathFaults(corrupt_rate=1.0))
        bank.set_path(ANY_PATH, PathFaults(jitter=0.01))
        assert bank.active
        rng = RandomStream(3, "bank")
        lost, corrupted, extra = bank.evaluate("a", "b", rng)
        assert corrupted and extra > 0.0
        # A path with no specific entry still sees the wildcard jitter.
        __, corrupted2, extra2 = bank.evaluate("b", "a", rng)
        assert not corrupted2 and extra2 > 0.0

    def test_state_roundtrip(self):
        bank = LinkFaultBank()
        bank.set_path(path_key("a", "b"),
                      PathFaults(loss=GilbertElliott(0.1, 0.4, bad=True),
                                 corrupt_rate=0.02, jitter=0.003))
        bank.set_path(ANY_PATH, PathFaults(corrupt_rate=0.5))
        clone = LinkFaultBank()
        clone.load_state(bank.save_state())
        assert clone.save_state() == bank.save_state()
        bank.clear_path(path_key("a", "b"))
        assert bank.get(path_key("a", "b")) is None
        bank.clear()
        assert not bank.active


# ---------------------------------------------------------------- schedules

class TestFaultSchedule:
    def test_json_roundtrip(self, tmp_path):
        schedule = FaultSchedule(seed=42)
        schedule.add("loss", 0.5, path="*", p_enter_bad=0.01, p_exit_bad=0.4)
        schedule.add("flap", 1.0, a="replica0", b="replica1", down_for=0.5)
        schedule.add("partition", 2.0,
                     groups=[["replica0"], ["replica1", "replica2"]],
                     heal_after=1.0)
        schedule.add("crash", 3.0, node="replica1", restart_after=1.0,
                     recovery="snapshot")
        schedule.add("slow", 4.0, node="replica2", factor=3.0, duration=1.0)
        path = tmp_path / "chaos.json"
        schedule.save(str(path))
        loaded = FaultSchedule.from_file(str(path))
        assert loaded.to_dict() == schedule.to_dict()
        assert loaded.seed == 42
        assert "flap" in loaded.describe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent("meteor", 1.0)
        with pytest.raises(ConfigError):
            FaultEvent("crash", -1.0)
        with pytest.raises(ConfigError):
            FaultEvent("crash", 1.0, {"node": "replica0",
                                      "recovery": "prayer"})

    def test_version_check(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_dict({"version": 99, "events": []})

    def test_perturbation_is_seed_determined(self):
        a = FaultSchedule.perturbation(11)
        b = FaultSchedule.perturbation(11)
        c = FaultSchedule.perturbation(12)
        assert a.to_dict() == b.to_dict()
        assert a.to_dict() != c.to_dict()
        assert json.loads(a.to_json())["seed"] == 11


# ----------------------------------------------------- topology connectivity

class TestTopologyLinkState:
    def test_down_link_blocks_both_directions(self):
        world = ping_world()
        topo = world.emulator.topology
        assert topo.blocked("replica0", "replica1") is None
        topo.set_link_down("replica0", "replica1")
        assert topo.blocked("replica0", "replica1") == "down"
        assert topo.blocked("replica1", "replica0") == "down"
        assert topo.blocked("replica0", "replica2") is None
        topo.set_link_up("replica0", "replica1")
        assert topo.blocked("replica0", "replica1") is None

    def test_partition_blocks_across_groups_only(self):
        world = ping_world()
        topo = world.emulator.topology
        topo.set_partition([["replica0", "replica1"], ["replica2"]])
        assert topo.blocked("replica0", "replica1") is None
        assert topo.blocked("replica0", "replica2") == "partition"
        assert topo.blocked("replica2", "replica1") == "partition"
        # loopback is never blocked
        assert topo.blocked("replica2", "replica2") is None
        topo.heal_partition()
        assert topo.blocked("replica0", "replica2") is None

    def test_link_state_roundtrip(self):
        world = ping_world()
        topo = world.emulator.topology
        topo.set_link_down("replica0", "replica1")
        topo.set_partition([["replica0"], ["replica1", "replica2"]])
        state = topo.save_link_state()
        topo.set_link_up("replica0", "replica1")
        topo.heal_partition()
        topo.load_link_state(state)
        assert topo.blocked("replica0", "replica1") == "down"
        assert topo.blocked("replica0", "replica2") == "partition"


# ----------------------------------------------------------------- injector

class TestFaultInjector:
    def test_composite_events_expand_in_order(self):
        schedule = FaultSchedule()
        schedule.add("flap", 1.0, a="x", b="y", down_for=0.5)
        schedule.add("crash", 0.5, node="x", restart_after=2.0)
        actions = FaultInjector._expand(schedule)
        assert [(at, kind) for at, kind, __ in actions] == [
            (0.5, "crash"), (1.0, "link_down"), (1.5, "link_up"),
            (2.5, "restart")]

    def test_crash_and_fresh_restart(self):
        world = ping_world()
        schedule = FaultSchedule()
        schedule.add("crash", 1.0, node="replica1", restart_after=1.0)
        injector = FaultInjector(world, schedule)
        world.install_fault_injector(injector)
        injector.arm()
        world.run_for(1.5)
        assert world.crashed_nodes() == [replica(1)]
        summary = world.crashed_node_summaries()[0]
        assert summary.startswith("replica1 [injected]")
        world.run_for(1.0)
        assert world.crashed_nodes() == []
        # fresh-boot recovery: the app restarted from its factory
        assert world.app(replica(1)).sent > 0
        assert injector.pending == 0

    def test_snapshot_recovery_restores_app_state(self):
        world = ping_world()
        schedule = FaultSchedule()
        schedule.add("crash", 2.0, node="replica1", restart_after=1.0,
                     recovery="snapshot")
        injector = FaultInjector(world, schedule)
        world.install_fault_injector(injector)
        injector.arm()
        world.run_for(1.9)
        sent_before = world.app(replica(1)).sent
        assert sent_before > 0
        world.run_for(1.5)
        # the restarted app kept (at least) its pre-crash counters
        assert world.app(replica(1)).sent >= sent_before

    def test_slow_node_scales_cpu(self):
        world = ping_world()
        schedule = FaultSchedule()
        schedule.add("slow", 0.5, node="replica0", factor=4.0, duration=1.0)
        injector = FaultInjector(world, schedule)
        world.install_fault_injector(injector)
        injector.arm()
        world.run_for(1.0)
        assert world.node(replica(0)).cpu.scale == 4.0
        world.run_for(1.0)
        assert world.node(replica(0)).cpu.scale == 1.0

    def test_flap_stops_traffic_then_recovers(self):
        world = ping_world(n=2)
        schedule = FaultSchedule()
        schedule.add("flap", 1.0, a="replica0", b="replica1", down_for=2.0)
        injector = FaultInjector(world, schedule)
        world.install_fault_injector(injector)
        injector.arm()
        world.run_for(2.0)  # mid-flap
        dropped_mid = world.emulator.stats.packets_dropped_down
        received_mid = world.app(replica(1)).received
        assert dropped_mid > 0
        world.run_for(0.4)
        assert world.app(replica(1)).received == received_mid
        world.run_for(2.0)  # link back up at t=3.0
        assert world.app(replica(1)).received > received_mid
        assert world.emulator.stats.packets_dropped_overflow == 0

    def test_unknown_node_rejected(self):
        world = ping_world()
        schedule = FaultSchedule().add("crash", 0.1, node="replica9")
        injector = FaultInjector(world, schedule)
        world.install_fault_injector(injector)
        injector.arm()
        with pytest.raises(ConfigError):
            world.run_for(0.5)


class TestCorruption:
    def test_corruption_counted_distinctly_from_overflow(self):
        world = ping_world(n=2)
        schedule = FaultSchedule().add("corrupt", 0.0, path="*", rate=1.0)
        injector = FaultInjector(world, schedule)
        world.install_fault_injector(injector)
        injector.arm()
        world.run_for(2.0)
        stats = world.emulator.stats
        assert stats.packets_dropped_corrupt > 0
        assert stats.packets_dropped_overflow == 0
        assert stats.packets_dropped_loss == 0
        # every corrupted packet crossed the wire before being dropped
        assert stats.packets_forwarded >= stats.packets_dropped_corrupt
        assert world.app(replica(1)).received == 0

    def test_bursty_loss_counted(self):
        world = ping_world(n=2)
        schedule = FaultSchedule().add(
            "loss", 0.0, path="*", p_enter_bad=1.0, p_exit_bad=0.0,
            loss_good=0.0, loss_bad=1.0)
        injector = FaultInjector(world, schedule)
        world.install_fault_injector(injector)
        injector.arm()
        world.run_for(2.0)
        stats = world.emulator.stats
        assert stats.packets_dropped_loss > 0
        assert stats.packets_dropped_corrupt == 0
        assert world.app(replica(1)).received == 0


# ------------------------------------------------------------- determinism

def chaos_schedule():
    schedule = FaultSchedule(seed=21)
    schedule.add("loss", 0.0, path="*", p_enter_bad=0.05, p_exit_bad=0.4)
    schedule.add("jitter", 0.0, path="*", jitter=0.002)
    schedule.add("corrupt", 0.0, path="*", rate=0.05)
    schedule.add("flap", 1.0, a="replica0", b="replica1", down_for=0.7)
    schedule.add("crash", 1.5, node="replica2", restart_after=0.8)
    schedule.add("slow", 0.5, node="replica1", factor=2.0, duration=1.0)
    return schedule


class TestDeterminism:
    def test_two_fresh_worlds_identical(self):
        digests, streams, stats = [], [], []
        for __ in range(2):
            world = ping_world(seed=13, log_enabled=True)
            injector = FaultInjector(world, chaos_schedule())
            world.install_fault_injector(injector)
            injector.arm()
            world.run_for(4.0)
            digests.append(world_digest(world))
            streams.append([(r.time, r.component, r.event, tuple(
                sorted(r.details.items()))) for r in world.log.records])
            stats.append(world.emulator.stats.as_tuple())
        assert digests[0] == digests[1]
        assert streams[0] == streams[1]
        assert stats[0] == stats[1]
        # the chaos events actually happened in both runs
        fault_events = [r for r in streams[0] if r[1] == "faults"]
        assert len(fault_events) >= 7  # 6 schedule events + composites

    def test_distinct_schedule_seeds_diverge(self):
        digests = []
        for seed in (1, 2):
            world = ping_world(seed=13)
            injector = FaultInjector(
                world, FaultSchedule.perturbation(seed, intensity=30.0))
            world.install_fault_injector(injector)
            injector.arm()
            world.run_for(4.0)
            digests.append(world_digest(world))
        assert digests[0] != digests[1]


class TestSnapshotBranching:
    @pytest.mark.parametrize("snapshot_at", [1.2, 1.7])
    def test_branch_mid_fault_replays_exactly(self, snapshot_at):
        """A snapshot mid-flap / mid-crash-window branches identically."""
        world = ping_world(seed=13)
        injector = FaultInjector(world, chaos_schedule())
        world.install_fault_injector(injector)
        injector.arm()
        world.run_for(snapshot_at)
        state = pickle.loads(pickle.dumps(world.save_component_states()))
        apps = {n: world.nodes[n].snapshot_state() for n in world.nodes}

        runs = []
        for __ in range(2):
            world.load_component_states(pickle.loads(pickle.dumps(state)))
            for n, app_state in apps.items():
                world.nodes[n].restore_state(app_state)
            world.run_for(4.0 - snapshot_at)
            runs.append((world_digest(world),
                         world.emulator.stats.as_tuple(),
                         injector.pending))
        assert runs[0] == runs[1]
        assert runs[0][2] == 0  # the remaining schedule suffix fired

    def test_harness_branch_mid_partition(self):
        schedule = FaultSchedule(seed=5)
        schedule.add("partition", 0.3,
                     groups=[["replica0", "client0"],
                             ["replica1", "replica2"]],
                     heal_after=1.0)
        harness = AttackHarness(
            paxos_testbed(malicious_index=0, warmup=1.0, window=1.0),
            seed=13, fault_schedule=schedule)
        harness.start_run()
        world = harness.world
        assert world.emulator.topology.blocked(
            "replica0", "replica1") == "partition"
        snapshot = harness.take_snapshot()
        digests, parted = [], []
        for __ in range(2):
            harness.restore(snapshot)
            world.run_for(1.5)  # crosses the heal event
            digests.append(world_digest(world))
            parted.append(world.emulator.stats.packets_dropped_partition)
        assert digests[0] == digests[1]
        assert parted[0] == parted[1] > 0
        assert world.emulator.topology.blocked("replica0", "replica1") is None


# ------------------------------------------------------- end-to-end plumbing

SPACE_KW = dict(delays=(1.0,), drop_probabilities=(1.0,),
                duplicate_counts=(50,), include_divert=False,
                include_lying=False)


class TestHuntUnderFaults:
    def test_hunt_result_byte_identical_across_runs(self):
        from repro.analysis.reports import hunt_result_to_dict
        from repro.attacks.space import ActionSpaceConfig
        from repro.search.hunt import hunt

        factory = paxos_testbed(malicious_index=0, warmup=1.0, window=2.0)
        # Jitter-only: the classroom Paxos stalls permanently under real
        # packet loss (a lost Accept is never re-proposed), so a lossless
        # perturbation keeps the hunt productive while still exercising
        # the whole chaos pipeline.
        schedule = FaultSchedule(seed=11).add(
            "jitter", 0.0, path="*", jitter=0.0005)

        def run_once():
            result = hunt(factory, seed=3, message_types=["Accept"],
                          space_config=ActionSpaceConfig(**SPACE_KW),
                          max_passes=1, max_wait=5.0,
                          fault_schedule=schedule)
            assert result.findings  # the hunt worked under perturbation
            return json.dumps(hunt_result_to_dict(result), sort_keys=True)

        assert run_once() == run_once()

    def test_search_under_lossy_faults_still_finds_attacks(self):
        # PBFT retransmits (Status) and survives the lossy perturbation,
        # so the real protocol attack must still be discoverable in it.
        from repro.attacks.space import ActionSpaceConfig
        from repro.search.weighted import WeightedGreedySearch
        from repro.systems.pbft.testbed import pbft_testbed

        factory = pbft_testbed(warmup=1.0, window=2.0)
        search = WeightedGreedySearch(
            factory, seed=1, space_config=ActionSpaceConfig(**SPACE_KW),
            max_wait=5.0, fault_schedule=FaultSchedule.perturbation(11))
        report = search.run(message_types=["PrePrepare"])
        assert "Delay 1s PrePrepare" in report.attack_names()


class TestFindingLike:
    def test_scenario_record_roundtrip_for_validation(self):
        from repro.attacks.actions import DelayAction
        from repro.attacks.actions import AttackScenario
        scenario = AttackScenario("Accept", DelayAction(1.0))
        clone = AttackScenario.from_record(scenario.to_record())
        assert clone.describe() == scenario.describe()
        assert SimpleNamespace(scenario=scenario).scenario is scenario
