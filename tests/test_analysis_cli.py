"""Tests for the analysis tooling, the system registry, and the CLI."""

import json

import pytest

from repro.analysis.reports import (excluded_scenarios, load_report,
                                    render_markdown, report_from_dict,
                                    report_to_dict, save_report)
from repro.analysis.traffic import TrafficTap
from repro.attacks.actions import (AttackScenario, DelayAction, DropAction,
                                   DuplicateAction, DivertAction, LyingAction)
from repro.attacks.strategies import LyingStrategy
from repro.cli import main, parse_action
from repro.common.errors import ConfigError
from repro.controller.costs import CostLedger
from repro.controller.monitor import PerfSample
from repro.search.results import AttackFinding, SearchReport
from repro.systems.registry import get_system, registry, system_names


def make_report():
    sample_a = PerfSample(0.0, 6.0, 120.0, 0.008, 0.008, 0.009, 0)
    sample_b = PerfSample(0.0, 6.0, 1.0, 0.5, 0.6, 0.7, 2)
    finding = AttackFinding(
        AttackScenario("PrePrepare",
                       LyingAction("big_reqs", LyingStrategy("min"))),
        sample_a, sample_b, damage=0.99, crashes=2, found_at=42.0,
        confirmations=2)
    ledger = CostLedger()
    ledger.charge("boot", 8.0)
    ledger.charge("execution", 30.0)
    return SearchReport("weighted-greedy", "pbft", findings=[finding],
                        ledger=ledger, scenarios_evaluated=5,
                        injection_points=1,
                        types_without_injection=["ViewChange"])


class TestReportPersistence:
    def test_dict_roundtrip(self):
        report = make_report()
        clone = report_from_dict(report_to_dict(report))
        assert clone.algorithm == report.algorithm
        assert clone.attack_names() == report.attack_names()
        assert clone.findings[0].scenario == report.findings[0].scenario
        assert clone.findings[0].baseline == report.findings[0].baseline
        assert clone.total_time == report.total_time
        assert clone.types_without_injection == ["ViewChange"]

    def test_json_file_roundtrip(self, tmp_path):
        report = make_report()
        path = str(tmp_path / "report.json")
        save_report(report, path)
        with open(path) as fh:
            json.load(fh)  # valid JSON on disk
        clone = load_report(path)
        assert clone.attack_names() == report.attack_names()

    def test_excluded_scenarios(self):
        report = make_report()
        exclude = excluded_scenarios(report)
        assert report.findings[0].scenario.to_record() in exclude

    def test_markdown_rendering(self):
        text = render_markdown(make_report())
        assert "weighted-greedy" in text
        assert "Lie big_reqs=min PrePrepare" in text
        assert "99%" in text
        assert "ViewChange" in text

    def test_markdown_empty_report(self):
        empty = SearchReport("greedy", "pbft")
        assert "No attacks found" in render_markdown(empty)


class TestTrafficTap:
    def test_counts_by_type(self):
        from repro.controller.harness import AttackHarness
        from repro.systems.pbft.testbed import pbft_testbed
        h = AttackHarness(pbft_testbed(warmup=0.5, window=1.0), seed=1)
        inst = h.start_run(take_warm_snapshot=False)
        tap = TrafficTap(inst.world.emulator, inst.world.codec)
        h.measure_window()
        active = tap.active_types()
        for expected in ("PrePrepare", "Prepare", "Commit", "Reply",
                         "Request", "Status"):
            assert expected in active
        assert "ViewChange" not in active
        assert tap.total_sent() > 100
        rendered = tap.render()
        assert "PrePrepare" in rendered


class StubEmulator:
    """Observer-registration surface TrafficTap needs, nothing more."""

    def __init__(self):
        self.observers = []

    def add_observer(self, observer):
        self.observers.append(observer)

    def notify(self, event, envelope):
        for observer in self.observers:
            observer(event, envelope)


class TestTrafficTapDirect:
    def _tap(self):
        from repro.wire.codec import ProtocolCodec
        from repro.wire.parser import parse_schema
        emulator = StubEmulator()
        schema = parse_schema("protocol p\nmessage M = 1 {\n    x: u32\n}\n")
        codec = ProtocolCodec(schema)
        return emulator, codec, TrafficTap(emulator, codec)

    def _envelope(self, codec, mtype, **fields):
        from repro.common.ids import replica
        from repro.netem.packets import MessageEnvelope
        from repro.wire.codec import Message
        payload = codec.encode(Message(mtype, fields))
        return MessageEnvelope(1, replica(0), replica(1), "udp", payload)

    def test_per_type_aggregation(self):
        emulator, codec, tap = self._tap()
        msg = self._envelope(codec, "M", x=1)
        for __ in range(3):
            emulator.notify("sent", msg)
        emulator.notify("delivered", msg)
        stats = tap.by_type["M"]
        assert stats.sent == 3 and stats.delivered == 1
        assert stats.bytes_sent == 3 * msg.size
        assert tap.total_sent() == 3
        assert tap.active_types() == ["M"]
        assert tap.active_types(min_sent=4) == []

    def test_unknown_payload_counted_separately(self):
        emulator, __, tap = self._tap()
        from repro.common.ids import replica
        from repro.netem.packets import MessageEnvelope
        bogus = MessageEnvelope(1, replica(0), replica(1), "udp", b"")
        emulator.notify("sent", bogus)
        assert tap.unknown.sent == 1
        assert tap.active_types() == []
        assert "<unknown>" in tap.render()


class TestTimelineDirect:
    """Timeline queries over hand-built logs, including the edge cases."""

    def _log(self, records=()):
        from repro.common.logging import EventLog
        t = [0.0]
        log = EventLog(clock=lambda: t[0], enabled=True)
        for time, component, event, details in records:
            t[0] = time
            log.emit(component, event, **details)
        return log

    def test_empty_log_queries_return_empty(self):
        from repro.analysis.timeline import Timeline
        timeline = Timeline(self._log())
        assert timeline.crashes() == []
        assert timeline.first_crash() is None
        assert timeline.proxy_actions() == []
        assert timeline.event_counts() == {}
        assert timeline.sends_by_type() == {}
        assert timeline.deliveries_per_second() == []
        assert "events recorded: 0" in timeline.render()

    def test_zero_bucket_returns_empty_instead_of_raising(self):
        from repro.analysis.timeline import Timeline
        log = self._log([(1.0, "netem", "deliver", {"msg": 1})])
        timeline = Timeline(log)
        assert timeline.deliveries_per_second(bucket=0.0) == []
        assert timeline.deliveries_per_second(bucket=-1.0) == []
        assert timeline.deliveries_per_second(bucket=1.0) == [(1.0, 1)]

    def test_injected_crashes_included_with_kind(self):
        from repro.analysis.timeline import Timeline
        log = self._log([
            (2.0, "replica1", "crash_injected", {"reason": "chaos"}),
            (1.0, "replica0", "crash", {"reason": "SegmentationFault"}),
        ])
        crashes = Timeline(log).crashes()
        assert [(c.node, c.kind) for c in crashes] == \
            [("replica0", "fault"), ("replica1", "injected")]
        assert crashes[0].time == 1.0  # sorted by time

    def test_proxy_actions_query(self):
        from repro.analysis.timeline import Timeline
        log = self._log([
            (1.0, "netem", "proxy_drop", {"msg": 5}),
            (1.5, "netem", "deliver", {"msg": 6}),
            (2.0, "netem", "proxy_hold", {"msg": 7, "tag": "injection:1"}),
        ])
        actions = Timeline(log).proxy_actions()
        assert [r.event for r in actions] == ["proxy_drop", "proxy_hold"]


class TestRegistry:
    def test_all_systems_present(self):
        assert system_names() == ["aardvark", "byzgen", "paxos", "pbft",
                                  "prime", "steward", "tom", "zyzzyva"]

    def test_unknown_system(self):
        with pytest.raises(ConfigError):
            get_system("raft")

    def test_entries_have_valid_schemas(self):
        for name in system_names():
            entry = registry()[name]
            assert entry.schema.message_names()
            assert entry.default_role in entry.roles

    def test_factories_build(self):
        entry = get_system("pbft")
        factory = entry.build("backup", 1.0, 2.0)
        instance = factory(0)
        assert instance.schema is entry.schema


class TestParseAction:
    @pytest.mark.parametrize("spec,expected", [
        ("drop", DropAction(1.0)),
        ("drop:0.5", DropAction(0.5)),
        ("delay:1.0", DelayAction(1.0)),
        ("dup:50", DuplicateAction(50)),
        ("divert", DivertAction()),
        ("lie:seq:min", LyingAction("seq", LyingStrategy("min"))),
        ("lie:seq:mul:2", LyingAction("seq", LyingStrategy("mul", 2))),
    ])
    def test_good_specs(self, spec, expected):
        assert parse_action(spec) == expected

    @pytest.mark.parametrize("spec", ["teleport", "delay", "dup:x",
                                      "lie:seq"])
    def test_bad_specs(self, spec):
        with pytest.raises(SystemExit):
            parse_action(spec)


class TestCli:
    def test_systems_command(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in system_names():
            assert name in out

    def test_schema_command(self, capsys):
        assert main(["schema", "pbft"]) == 0
        out = capsys.readouterr().out
        assert "protocol pbft" in out
        assert "message PrePrepare" in out

    def test_baseline_command(self, capsys):
        assert main(["baseline", "paxos", "--warmup", "0.5",
                     "--window", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "upd/s" in out

    def test_attack_command(self, capsys):
        assert main(["attack", "paxos", "--type", "Accept",
                     "--action", "delay:1.0", "--warmup", "0.5",
                     "--window", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "ATTACK" in out

    def test_attack_command_benign_action(self, capsys):
        assert main(["attack", "paxos", "--type", "Heartbeat",
                     "--action", "dup:2", "--warmup", "0.5",
                     "--window", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "no attack" in out

    def test_bad_role_rejected(self):
        with pytest.raises(SystemExit):
            main(["baseline", "pbft", "--malicious", "nonsense",
                  "--warmup", "0.5", "--window", "1.0"])

    def test_search_command_with_json(self, capsys, tmp_path):
        path = str(tmp_path / "out.json")
        code = main(["search", "paxos", "--types", "Accept", "--fast",
                     "--no-lying", "--warmup", "0.5", "--window", "1.5",
                     "--max-wait", "5", "--json", path])
        assert code == 0
        report = load_report(path)
        assert report.findings
        out = capsys.readouterr().out
        assert "weighted-greedy" in out

    def test_search_exclude_from(self, capsys, tmp_path):
        path = str(tmp_path / "pass1.json")
        main(["search", "paxos", "--types", "Accept", "--fast", "--no-lying",
              "--warmup", "0.5", "--window", "1.5", "--max-wait", "5",
              "--json", path])
        first = load_report(path).attack_names()
        code = main(["search", "paxos", "--types", "Accept", "--fast",
                     "--no-lying", "--warmup", "0.5", "--window", "1.5",
                     "--max-wait", "5", "--exclude-from", path,
                     "--allow-empty"])
        assert code == 0
        out = capsys.readouterr().out
        for name in first:
            assert name not in out.split("\n")[-3:]  # not re-found


class TestTimeline:
    def _world_with_log(self):
        from repro.attacks.actions import LyingAction
        from repro.attacks.strategies import LyingStrategy
        from repro.controller.harness import AttackHarness
        from repro.systems.pbft.testbed import pbft_testbed

        def factory(seed):
            instance = pbft_testbed(warmup=0.5, window=1.0)(seed)
            instance.world.log.enabled = True
            return instance

        h = AttackHarness(factory, seed=1)
        inst = h.start_run(take_warm_snapshot=False)
        inst.proxy.set_policy(
            "PrePrepare", LyingAction("big_reqs", LyingStrategy("min")))
        h.measure_window()
        return inst.world

    def test_crashes_extracted(self):
        from repro.analysis.timeline import Timeline
        world = self._world_with_log()
        timeline = Timeline(world.log)
        crashes = timeline.crashes()
        assert len(crashes) == 3
        assert all("SegmentationFault" in c.reason for c in crashes)
        assert timeline.first_crash().time <= crashes[-1].time

    def test_sends_and_counts(self):
        from repro.analysis.timeline import Timeline
        world = self._world_with_log()
        timeline = Timeline(world.log)
        sends = timeline.sends_by_type()
        assert sends.get("PrePrepare", 0) > 0
        counts = timeline.event_counts()
        assert counts[("netem", "deliver")] > 0
        buckets = timeline.deliveries_per_second()
        assert buckets and all(n > 0 for __, n in buckets)

    def test_render(self):
        from repro.analysis.timeline import Timeline
        world = self._world_with_log()
        text = Timeline(world.log).render()
        assert "crashes:" in text
        assert "top events:" in text
