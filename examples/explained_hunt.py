#!/usr/bin/env python3
"""Attack forensics end to end: hunt, then explain every finding.

A hunt verdict is a number ("damage 100%"); a forensic explanation is a
story: the exact message the attack perturbed, the protocol phases that
starved downstream of it, which nodes stopped delivering what, and how
throughput collapsed across the window.  This example demonstrates the
full pipeline:

1. a PBFT hunt with ``explain=True`` — each finding's benign and attack
   branches are re-executed from the same injection-point snapshot with
   causal recorders attached, and the two chronologies are aligned to
   find the **first divergence**;
2. the explanation anatomy: divergence kind (absent / mutated / delayed
   / extra), suppressed message types, per-node delivery deltas, lost
   causal descendants, and the per-branch throughput timeline;
3. the side-channel guarantee: the serialized hunt report is
   byte-identical with forensics on or off, and the explanations
   themselves are identical for any worker count;
4. the forensics bundle: JSON + markdown + one Chrome trace per finding
   (benign run as pid 1, attack as pid 2 — load it in
   https://ui.perfetto.dev and follow the flow arrows).

Run:  python examples/explained_hunt.py
"""

import json
import tempfile

from repro.analysis.reports import hunt_result_to_dict
from repro.attacks.space import ActionSpaceConfig
from repro.forensics.report import write_forensics
from repro.search.hunt import hunt
from repro.systems.pbft import pbft_testbed

SPACE = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(1.0,),
                          duplicate_counts=(50,), include_divert=False,
                          include_lying=False)
FACTORY = pbft_testbed(malicious="primary", warmup=1.0, window=2.0)
KW = dict(seed=3, message_types=["PrePrepare"], space_config=SPACE,
          max_wait=5.0, max_passes=1)


def main() -> int:
    print("=== 1. hunt with forensics attached ===")
    result = hunt(FACTORY, explain=True, **KW)
    print(result.describe())
    assert result.findings and result.explanations

    print("\n=== 2. anatomy of an explanation ===")
    for exp in result.explanations:
        divergence = exp.divergence
        print(f"scenario:        {exp.scenario}")
        print(f"first divergence: {divergence.describe()}")
        print(f"  kind={divergence.kind} seq={divergence.msg_seq} "
              f"{divergence.src}->{divergence.dst}")
        print(f"suppressed phases: {', '.join(exp.suppressed_types) or '-'}")
        print(f"delivery deltas:   {len(exp.delivery_deltas)} (node, type) "
              f"pairs changed")
        print(f"lost descendants:  {exp.lost_descendants} benign messages "
              f"never materialized under attack")
        print("full narrative:")
        for line in exp.narrative().splitlines():
            print(f"  {line}")

    print("\n=== 3. explanations never perturb the report ===")
    plain = hunt(FACTORY, explain=False, **KW)
    a = json.dumps(hunt_result_to_dict(result), sort_keys=True)
    b = json.dumps(hunt_result_to_dict(plain), sort_keys=True)
    assert a == b, "forensics must stay out of the deterministic report"
    print(f"-> report JSON byte-identical with forensics on/off "
          f"({len(a)} bytes)")

    parallel = hunt(FACTORY, explain=True, workers=2, **KW)
    ours = [e.to_dict() for e in result.explanations]
    theirs = [e.to_dict() for e in parallel.explanations]
    assert json.dumps(ours, sort_keys=True) == \
        json.dumps(theirs, sort_keys=True)
    print("-> explanations identical for workers=1 and workers=2")

    print("\n=== 4. the forensics bundle ===")
    with tempfile.TemporaryDirectory() as tmp:
        paths = write_forensics(tmp, result.explanations)
        for path in paths:
            print(f"-> {path.split('/')[-1]}")
        with open(paths[0]) as fh:
            bundle = json.load(fh)
        assert bundle["explanations"][0]["divergence"]["message_type"]
    print("(the same bundle: --explain --forensics DIR on the CLI)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
