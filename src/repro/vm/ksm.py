"""KSM: kernel samepage merging across VMs.

The paper modifies KSM to "expose shared page information by adding an
interface that verifies if a page is shared or not", which the modified KVM
save path then queries.  This module reproduces that daemon: it scans the
registered guests' memory, merges stable identical pages into a shared-page
table, and answers :meth:`is_shared` queries from the snapshot manager.

Like the real KSM we skip *volatile* pages: a page dirtied since the last
scan is not merged, because merging pages that are about to diverge again
only causes copy-on-write churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.vm.memory import GuestMemory, Page


@dataclass
class SharedPageEntry:
    """One merged page: its digest and every (vm, pfn) mapping it backs."""

    digest: bytes
    content: Optional[bytes]
    mappings: Set[Tuple[str, int]] = field(default_factory=set)

    @property
    def share_count(self) -> int:
        return len(self.mappings)


@dataclass
class KsmStats:
    scans: int = 0
    pages_shared: int = 0      # distinct merged pages
    pages_sharing: int = 0     # guest mappings backed by merged pages
    pages_volatile: int = 0    # skipped because dirtied since last scan


class KsmDaemon:
    """Content-based page merger over a set of guests."""

    def __init__(self, min_share_count: int = 2) -> None:
        self.min_share_count = min_share_count
        self._guests: Dict[str, GuestMemory] = {}
        self._table: Dict[bytes, SharedPageEntry] = {}
        self.stats = KsmStats()

    def register(self, memory: GuestMemory) -> None:
        self._guests[memory.vm_name] = memory

    def unregister(self, vm_name: str) -> None:
        self._guests.pop(vm_name, None)
        for entry in self._table.values():
            entry.mappings = {m for m in entry.mappings if m[0] != vm_name}
        self._prune()

    def _prune(self) -> None:
        self._table = {d: e for d, e in self._table.items()
                       if e.share_count >= self.min_share_count}

    # ------------------------------------------------------------------ scan

    def scan(self) -> KsmStats:
        """One full scan pass: rebuild the shared-page table.

        Real KSM scans incrementally; a full rebuild per pass is equivalent
        for our purposes (the table state after a pass over a quiescent
        system is identical) and much simpler to reason about.
        """
        candidates: Dict[bytes, SharedPageEntry] = {}
        volatile = 0
        for memory in self._guests.values():
            dirty = memory.dirty_pfns()
            for pfn, page in memory.iter_pages():
                if pfn in dirty:
                    volatile += 1
                    continue
                entry = candidates.get(page.digest)
                if entry is None:
                    entry = SharedPageEntry(page.digest, page.content)
                    candidates[entry.digest] = entry
                entry.mappings.add((memory.vm_name, pfn))
            memory.clear_dirty()

        self._table = {d: e for d, e in candidates.items()
                       if e.share_count >= self.min_share_count}
        self.stats = KsmStats(
            scans=self.stats.scans + 1,
            pages_shared=len(self._table),
            pages_sharing=sum(e.share_count for e in self._table.values()),
            pages_volatile=volatile,
        )
        return self.stats

    # ------------------------------------------------- interface added by us
    # (the paper's KSM modification: "an interface that verifies if a page
    # is shared or not")

    def is_shared(self, vm_name: str, pfn: int, page: Page) -> bool:
        entry = self._table.get(page.digest)
        return entry is not None and (vm_name, pfn) in entry.mappings

    def shared_entry(self, digest: bytes) -> Optional[SharedPageEntry]:
        return self._table.get(digest)

    def shared_digests(self) -> List[bytes]:
        return list(self._table.keys())

    def sharing_ratio(self) -> float:
        """Fraction of resident guest pages backed by a merged page."""
        total = sum(m.resident_pages() for m in self._guests.values())
        if total == 0:
            return 0.0
        return self.stats.pages_sharing / total
