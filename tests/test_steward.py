"""Protocol-level tests for the Steward implementation."""

import pytest

from repro.attacks.actions import (DelayAction, DropAction, DuplicateAction,
                                   LyingAction)
from repro.attacks.strategies import LyingStrategy
from repro.common.ids import replica
from repro.controller.harness import AttackHarness
from repro.systems.steward.replica import StewardConfig
from repro.systems.steward.testbed import steward_testbed


def run_steward(malicious="leader", mtype=None, action=None, warmup=2.0,
                window=4.0, seed=1):
    h = AttackHarness(steward_testbed(malicious=malicious, warmup=warmup,
                                      window=window), seed=seed)
    inst = h.start_run(take_warm_snapshot=False)
    if mtype:
        inst.proxy.set_policy(mtype, action)
    return h.measure_window(), inst


class TestConfig:
    def test_sizing(self):
        cfg = StewardConfig(sites=2, site_f=1)
        assert cfg.site_n == 4
        assert cfg.n == 8
        assert cfg.site_quorum == 3
        assert cfg.accept_majority == 1
        assert cfg.site_of(5) == 1
        assert cfg.rep_of_site(1) == 4
        assert cfg.site_members(1) == [4, 5, 6, 7]

    def test_needs_two_sites(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            StewardConfig(sites=1)


class TestNormalCase:
    def test_wide_area_baseline(self):
        sample, inst = run_steward()
        # WAN round trips dominate: ~17-20 upd/s (paper: 19.6)
        assert 13 < sample.throughput < 25
        assert inst.world.crashed_nodes() == []

    def test_latency_dominated_by_wan(self):
        sample, __ = run_steward()
        assert sample.latency_avg > 0.040

    def test_remote_site_participates(self):
        __, inst = run_steward()
        rep = inst.world.app(replica(4))
        assert any(e["accept_sent"] for e in rep.remote.values())


class TestDeliveryAttacks:
    def test_delay_preprepare(self):
        attacked, __ = run_steward(mtype="PrePrepare",
                                   action=DelayAction(1.0))
        assert attacked.throughput < 2.0  # paper: 19.6 -> 0.9

    def test_delay_proposal(self):
        attacked, __ = run_steward(mtype="Proposal", action=DelayAction(1.0))
        assert attacked.throughput < 2.0

    def test_delay_accept(self):
        attacked, __ = run_steward(malicious="remote_rep", mtype="Accept",
                                   action=DelayAction(1.0))
        assert attacked.throughput < 2.0

    def test_drop_accept_masked_not_recovered(self):
        attacked, inst = run_steward(malicious="remote_rep", mtype="Accept",
                                     action=DropAction(1.0), window=8.0)
        # fault masking: progress continues at the retransmission rate
        # (paper: 0.4 upd/s) with no view change
        assert 0.1 < attacked.throughput < 1.5
        assert all(inst.world.app(replica(i)).global_view == 0
                   for i in range(8))

    def test_dup_gvc_devastates(self):
        baseline, __ = run_steward()
        attacked, __ = run_steward(malicious="remote_rep",
                                   mtype="GlobalViewChange",
                                   action=DuplicateAction(50))
        assert attacked.throughput < baseline.throughput * 0.2

    def test_dup_ccsunion_devastates(self):
        baseline, __ = run_steward()
        attacked, __ = run_steward(malicious="remote_backup",
                                   mtype="CCSUnion",
                                   action=DuplicateAction(50))
        assert attacked.throughput < baseline.throughput * 0.4


class TestLyingAttacks:
    def test_lie_status_crashes_site_peers(self):
        sample, inst = run_steward(malicious="remote_backup", mtype="Status",
                                   action=LyingAction("nmsgs",
                                                      LyingStrategy("min")))
        assert sample.crashed_nodes >= 3

    def test_lie_gvc_view_number_crashes(self):
        sample, inst = run_steward(malicious="remote_rep",
                                   mtype="GlobalViewChange",
                                   action=LyingAction("global_view",
                                                      LyingStrategy("max")))
        assert sample.crashed_nodes >= 1
        # the crashed node includes the global leader: progress dies
        assert replica(0) in inst.world.crashed_nodes()


class TestStateRoundTrip:
    def test_leader_and_remote_snapshot_roundtrip(self):
        __, inst = run_steward(window=2.0)
        import pickle
        for idx in (0, 4, 5):
            app = inst.world.app(replica(idx))
            state = app.snapshot_state()
            app.restore_state(pickle.loads(pickle.dumps(state)))
            assert app.snapshot_state() == state
