"""Steward wire protocol description.

Steward (Amir et al.) is a hierarchical Byzantine-resilient replication
system for wide-area networks: each site runs a local BFT protocol and
threshold-signs site-level messages; a Paxos-like protocol runs between site
representatives across the WAN.

Message types relevant to the paper's attacks: ``PrePrepare`` (intra-site
ordering at the leader site), ``Proposal`` (threshold-signed site proposal
sent across the WAN), ``Accept`` (remote site's threshold-signed agreement),
``GlobalViewChange`` and ``CCSUnion`` (global view maintenance and threshold
share combination — duplicating either is expensive because every copy pays
threshold-cryptography verification), and ``Status``.
"""

from __future__ import annotations

from repro.wire import ProtocolCodec, ProtocolSchema, parse_schema

STEWARD_SCHEMA_TEXT = """
protocol steward

message Request = 1 {
    client:    u16
    timestamp: u64
    payload:   varbytes<u32>
    sig:       bytes[16]
}

message PrePrepare = 2 {
    view:      u32
    seq:       i32
    digest:    bytes[32]
    timestamp: u64
    client:    u16
    payload:   varbytes<u32>
    sig:       bytes[16]
}

message Prepare = 3 {
    view:    u32
    seq:     i32
    digest:  bytes[32]
    replica: u16
    sig:     bytes[16]
}

message Proposal = 4 {
    global_view: u32
    seq:         i32
    digest:      bytes[32]
    timestamp:   u64
    client:      u16
    payload:     varbytes<u32>
    site:        u16
    sig:         bytes[16]
}

message Accept = 5 {
    global_view: u32
    seq:         i32
    digest:      bytes[32]
    site:        u16
    sig:         bytes[16]
}

message GlobalOrder = 6 {
    global_view: u32
    seq:         i32
    digest:      bytes[32]
    timestamp:   u64
    client:      u16
    payload:     varbytes<u32>
    sig:         bytes[16]
}

message Reply = 7 {
    timestamp: u64
    client:    u16
    replica:   u16
    result:    varbytes<u16>
    sig:       bytes[16]
}

message GlobalViewChange = 8 {
    global_view: u32
    site:        u16
    nproofs:     i32
    sig:         bytes[16]
}

message CCSUnion = 9 {
    global_view: u32
    seq:         i32
    share_idx:   u16
    nshares:     i32
    share:       bytes[32]
    sig:         bytes[16]
}

message Status = 10 {
    replica:   u16
    view:      u32
    last_exec: i32
    nmsgs:     i32
    sig:       bytes[16]
}
"""

STEWARD_SCHEMA: ProtocolSchema = parse_schema(STEWARD_SCHEMA_TEXT)
STEWARD_CODEC = ProtocolCodec(STEWARD_SCHEMA)
