"""Tests for the three attack-finding algorithms.

These use trimmed action spaces and short windows so a search completes in
seconds of real time while still exercising injection points, branching,
early stopping, and cost accounting.
"""

import pytest

from repro.attacks.space import ActionSpaceConfig
from repro.attacks.actions import (CLUSTER_DELAY, CLUSTER_DUPLICATE,
                                   DelayAction, DuplicateAction)
from repro.search.brute import BruteForceSearch
from repro.search.greedy import GreedySearch
from repro.search.weighted import (DEFAULT_WEIGHTS, ClusterWeights,
                                   WeightedGreedySearch)
from repro.systems.pbft.testbed import pbft_testbed

TINY_SPACE = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(0.5,),
                               duplicate_counts=(50,), include_divert=False,
                               include_lying=False)
FACTORY = pbft_testbed(malicious="primary", warmup=1.0, window=2.0)


class TestWeightedGreedy:
    def test_finds_delay_preprepare_first(self):
        search = WeightedGreedySearch(FACTORY, seed=1,
                                      space_config=TINY_SPACE)
        report = search.run(message_types=["PrePrepare"])
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.name == "Delay 1s PrePrepare"
        assert finding.damage > 0.9
        # early stop: only the first (highest-weight) action was evaluated
        assert report.scenarios_evaluated == 1

    def test_weight_bumped_on_success(self):
        weights = ClusterWeights()
        before = weights.weight(CLUSTER_DELAY)
        search = WeightedGreedySearch(FACTORY, seed=1,
                                      space_config=TINY_SPACE,
                                      weights=weights)
        search.run(message_types=["PrePrepare"])
        assert weights.weight(CLUSTER_DELAY) > before

    def test_exclude_forces_next_action(self):
        from repro.attacks.actions import AttackScenario
        excluded = {AttackScenario("PrePrepare", DelayAction(1.0)).to_record()}
        search = WeightedGreedySearch(FACTORY, seed=1,
                                      space_config=TINY_SPACE)
        report = search.run(message_types=["PrePrepare"], exclude=excluded)
        assert report.findings
        assert report.findings[0].name != "Delay 1s PrePrepare"

    def test_type_without_injection_reported(self):
        search = WeightedGreedySearch(FACTORY, seed=1,
                                      space_config=TINY_SPACE, max_wait=2.0)
        report = search.run(message_types=["ViewChange"])
        assert report.types_without_injection == ["ViewChange"]
        assert report.findings == []

    def test_cost_ledger_populated(self):
        search = WeightedGreedySearch(FACTORY, seed=1,
                                      space_config=TINY_SPACE)
        report = search.run(message_types=["PrePrepare"])
        assert report.total_time > 0
        assert report.ledger.get("boot") > 0
        assert report.findings[0].found_at <= report.total_time

    def test_ordering_respects_weights(self):
        weights = ClusterWeights({CLUSTER_DUPLICATE: 5.0,
                                  CLUSTER_DELAY: 0.1})
        actions = [DelayAction(1.0), DuplicateAction(50)]
        ordered = weights.order_actions(actions)
        assert isinstance(ordered[0], DuplicateAction)

    def test_default_weights_prefer_delay(self):
        assert DEFAULT_WEIGHTS[CLUSTER_DELAY] == max(DEFAULT_WEIGHTS.values())


class TestGreedy:
    def test_evaluates_all_actions_each_round(self):
        search = GreedySearch(FACTORY, seed=1, space_config=TINY_SPACE,
                              rounds=2, confirmations=2)
        report = search.run(message_types=["PrePrepare"])
        # 3 actions x 2 rounds
        assert report.scenarios_evaluated == 6
        assert report.injection_points == 2

    def test_confirms_strongest_attack(self):
        search = GreedySearch(FACTORY, seed=1, space_config=TINY_SPACE,
                              rounds=2, confirmations=2)
        report = search.run(message_types=["PrePrepare"])
        assert len(report.findings) == 1
        assert report.findings[0].name == "Delay 1s PrePrepare"
        assert report.findings[0].confirmations == 2

    def test_greedy_slower_than_weighted(self):
        greedy = GreedySearch(FACTORY, seed=1, space_config=TINY_SPACE,
                              rounds=2, confirmations=2)
        greedy_report = greedy.run(message_types=["PrePrepare"])
        weighted = WeightedGreedySearch(FACTORY, seed=1,
                                        space_config=TINY_SPACE)
        weighted_report = weighted.run(message_types=["PrePrepare"])
        assert weighted_report.total_time < greedy_report.total_time * 0.6

    def test_confirmations_validated(self):
        with pytest.raises(ValueError):
            GreedySearch(FACTORY, rounds=1, confirmations=2)


class TestBruteForce:
    def test_finds_attack_with_full_reexecution(self):
        space = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(),
                                  duplicate_counts=(), include_divert=False,
                                  include_lying=False)
        search = BruteForceSearch(FACTORY, seed=1, space_config=space,
                                  max_wait=5.0)
        report = search.run(message_types=["PrePrepare"])
        assert [f.name for f in report.findings] == ["Delay 1s PrePrepare"]
        # brute force re-boots for every scenario: boot charged twice
        # (baseline + 1 scenario)
        assert report.ledger.get("boot") >= 16.0
        assert report.ledger.get("snapshot_save") == 0.0

    def test_wasted_execution_charged_for_absent_type(self):
        space = ActionSpaceConfig(delays=(1.0,), drop_probabilities=(),
                                  duplicate_counts=(), include_divert=False,
                                  include_lying=False)
        search = BruteForceSearch(FACTORY, seed=1, space_config=space,
                                  max_wait=3.0)
        report = search.run(message_types=["ViewChange"])
        assert report.findings == []
        assert "ViewChange" in report.types_without_injection
        assert report.ledger.get("execution") >= 3.0


class TestReportShape:
    def test_report_describe(self):
        search = WeightedGreedySearch(FACTORY, seed=1,
                                      space_config=TINY_SPACE)
        report = search.run(message_types=["PrePrepare"])
        text = report.describe()
        assert "weighted-greedy" in text
        assert "Delay 1s PrePrepare" in text
        assert report.finding_named("Delay 1s PrePrepare") is not None
        assert report.finding_named("nope") is None
        assert report.attack_names() == ["Delay 1s PrePrepare"]
