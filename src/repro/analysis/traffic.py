"""Traffic observation: per-message-type statistics of a live world.

A :class:`TrafficTap` subscribes to the emulator's message observers and
aggregates counts and bytes per (message type, sender role).  This is how a
user answers "which message types does my system actually exercise?" before
pointing the search at them — the paper's searches only make sense for
types the execution sends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.netem.emulator import NetworkEmulator
from repro.netem.packets import MessageEnvelope
from repro.wire.codec import ProtocolCodec


@dataclass
class TypeStats:
    sent: int = 0
    delivered: int = 0
    bytes_sent: int = 0

    def row(self) -> Tuple[int, int, int]:
        return (self.sent, self.delivered, self.bytes_sent)


class TrafficTap:
    """Counts live traffic by message type."""

    def __init__(self, emulator: NetworkEmulator,
                 codec: ProtocolCodec) -> None:
        self.codec = codec
        self.by_type: Dict[str, TypeStats] = {}
        self.unknown = TypeStats()
        emulator.add_observer(self._observe)

    def _classify(self, envelope: MessageEnvelope) -> TypeStats:
        spec = self.codec.peek_type(envelope.payload)
        if spec is None:
            return self.unknown
        return self.by_type.setdefault(spec.name, TypeStats())

    def _observe(self, event: str, envelope: MessageEnvelope) -> None:
        stats = self._classify(envelope)
        if event == "sent":
            stats.sent += 1
            stats.bytes_sent += envelope.size
        elif event == "delivered":
            stats.delivered += 1

    # ----------------------------------------------------------------- query

    def active_types(self, min_sent: int = 1) -> List[str]:
        """Message types the execution actually sends (search candidates)."""
        return sorted(t for t, s in self.by_type.items()
                      if s.sent >= min_sent)

    def total_sent(self) -> int:
        return sum(s.sent for s in self.by_type.values()) + self.unknown.sent

    def summary(self) -> List[Tuple[str, int, int, int]]:
        rows = [(name,) + stats.row()
                for name, stats in sorted(self.by_type.items())]
        if self.unknown.sent:
            rows.append(("<unknown>",) + self.unknown.row())
        return rows

    def render(self) -> str:
        lines = [f"{'type':<20} {'sent':>8} {'delivered':>10} {'bytes':>12}"]
        for name, sent, delivered, nbytes in self.summary():
            lines.append(f"{name:<20} {sent:>8} {delivered:>10} {nbytes:>12}")
        return "\n".join(lines)
