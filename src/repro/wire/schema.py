"""Schema objects produced by the message-format compiler.

A :class:`ProtocolSchema` is the only description of a target system that
Turret requires from the user (Section I: "Turret requires only a description
of the external API of the service, i.e., the message protocol").  It lists
message types and their typed fields; the malicious proxy uses it to identify
message types on the wire and the lying strategies use it to enumerate
mutable fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import WireFormatError
from repro.wire.types import ScalarType, scalar_type

KIND_SCALAR = "scalar"
KIND_BYTES = "bytes"        # fixed-length byte string
KIND_VARBYTES = "varbytes"  # length-prefixed byte string


@dataclass(frozen=True)
class FieldSpec:
    """One field of a message."""

    name: str
    kind: str
    scalar: Optional[ScalarType] = None   # for KIND_SCALAR
    fixed_len: int = 0                    # for KIND_BYTES
    len_type: Optional[ScalarType] = None  # for KIND_VARBYTES

    def __post_init__(self) -> None:
        if self.kind == KIND_SCALAR and self.scalar is None:
            raise WireFormatError(f"field {self.name}: scalar kind needs a type")
        if self.kind == KIND_BYTES and self.fixed_len <= 0:
            raise WireFormatError(f"field {self.name}: bytes length must be > 0")
        if self.kind == KIND_VARBYTES and self.len_type is None:
            raise WireFormatError(f"field {self.name}: varbytes needs a length type")

    @property
    def is_mutable_scalar(self) -> bool:
        """Whether lying strategies may target this field."""
        return self.kind == KIND_SCALAR

    def type_label(self) -> str:
        if self.kind == KIND_SCALAR:
            return self.scalar.name
        if self.kind == KIND_BYTES:
            return f"bytes[{self.fixed_len}]"
        return f"varbytes<{self.len_type.name}>"


@dataclass(frozen=True)
class MessageSpec:
    """One message type: a numeric wire tag plus an ordered field list."""

    name: str
    type_id: int
    fields: Tuple[FieldSpec, ...]

    def field_named(self, name: str) -> FieldSpec:
        for f in self.fields:
            if f.name == name:
                return f
        raise WireFormatError(f"message {self.name} has no field {name!r}")

    def scalar_fields(self) -> List[FieldSpec]:
        return [f for f in self.fields if f.is_mutable_scalar]

    def default_values(self) -> Dict[str, object]:
        """A zero-valued instance of this message, useful in tests."""
        values: Dict[str, object] = {}
        for f in self.fields:
            if f.kind == KIND_SCALAR:
                values[f.name] = False if f.scalar.is_bool else (
                    0.0 if f.scalar.is_float else 0)
            elif f.kind == KIND_BYTES:
                values[f.name] = b"\x00" * f.fixed_len
            else:
                values[f.name] = b""
        return values


@dataclass
class ProtocolSchema:
    """A named collection of message types for one target system."""

    name: str
    messages: Tuple[MessageSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        by_id: Dict[int, str] = {}
        by_name: Dict[str, int] = {}
        for m in self.messages:
            if not 0 <= m.type_id <= 0xFFFF:
                raise WireFormatError(
                    f"message {m.name}: type id {m.type_id} out of u16 range")
            if m.type_id in by_id:
                raise WireFormatError(
                    f"duplicate type id {m.type_id} ({by_id[m.type_id]} vs {m.name})")
            if m.name in by_name:
                raise WireFormatError(f"duplicate message name {m.name}")
            by_id[m.type_id] = m.name
            by_name[m.name] = m.type_id
        self._by_id = {m.type_id: m for m in self.messages}
        self._by_name = {m.name: m for m in self.messages}

    def message_named(self, name: str) -> MessageSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise WireFormatError(
                f"schema {self.name} has no message {name!r}") from None

    def message_by_id(self, type_id: int) -> MessageSpec:
        try:
            return self._by_id[type_id]
        except KeyError:
            raise WireFormatError(
                f"schema {self.name} has no message with id {type_id}") from None

    def has_message_id(self, type_id: int) -> bool:
        return type_id in self._by_id

    def message_names(self) -> List[str]:
        return [m.name for m in self.messages]


def make_field(name: str, type_label: str) -> FieldSpec:
    """Build a :class:`FieldSpec` from a type label like ``u32`` or ``bytes[8]``.

    This is the programmatic twin of the DSL parser, used by target systems
    that define their schemas in code.
    """
    label = type_label.strip()
    if label.startswith("bytes[") and label.endswith("]"):
        try:
            length = int(label[len("bytes["):-1])
        except ValueError:
            raise WireFormatError(f"bad bytes length in {type_label!r}") from None
        return FieldSpec(name, KIND_BYTES, fixed_len=length)
    if label.startswith("varbytes<") and label.endswith(">"):
        inner = label[len("varbytes<"):-1]
        return FieldSpec(name, KIND_VARBYTES, len_type=scalar_type(inner))
    return FieldSpec(name, KIND_SCALAR, scalar=scalar_type(label))


def make_message(name: str, type_id: int, fields: List[Tuple[str, str]]) -> MessageSpec:
    """Build a :class:`MessageSpec` from ``(field_name, type_label)`` pairs."""
    seen = set()
    specs = []
    for fname, flabel in fields:
        if fname in seen:
            raise WireFormatError(f"message {name}: duplicate field {fname!r}")
        seen.add(fname)
        specs.append(make_field(fname, flabel))
    return MessageSpec(name, type_id, tuple(specs))
